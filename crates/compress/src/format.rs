//! Compact shared-index storage — the on-device format of Section V-A.
//!
//! After coarse-grained pruning, all output neurons inside a block group
//! share the same connection topology, so one synapse index (one bit per
//! input position) serves a whole group of `B_out` outputs — in hardware,
//! the 16 PEs fed by the shared NSM. Weights are stored compactly (only
//! surviving synapses) as quantized dictionary indices, with a per-group
//! codebook that the PE's Weight Decoder Module (WDM) holds as a LUT.
//!
//! Convolutional layers lower to the same structure: each output-map
//! group shares an index over the `(n_fin, kx, ky)` window positions, and
//! one "output" here is one output feature map evaluated at a spatial
//! position (exactly how the accelerator time-shares its PEs).

use cs_quant::{kmeans_1d, Codebook};
use cs_sparsity::structured::{satisfies_pattern, survivors_per_lane};
use cs_sparsity::Mask;
use cs_tensor::{Shape, Tensor, TensorError};

use crate::CompressError;

/// One group of output neurons sharing a synapse index.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputGroup {
    /// Shared synapse index: one bit per input position, `true` when the
    /// connection survives (broadcast by the NSM).
    pub index: Vec<bool>,
    /// Per output neuron: quantized weights for the surviving positions,
    /// in input order. All rows have length `index.count_ones()`.
    pub weights: Vec<Vec<u16>>,
    /// The group's weight codebook (the WDM LUT contents).
    pub codebook: Codebook,
}

impl OutputGroup {
    /// Surviving synapses per output neuron.
    pub fn survivors(&self) -> usize {
        self.index.iter().filter(|b| **b).count()
    }
}

/// A layer stored in the accelerator's compact shared-index format.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedIndexLayer {
    /// Layer name.
    pub name: String,
    /// Input positions per output computation (FC: `n_in`; conv:
    /// `n_fin · kx · ky`).
    pub n_in: usize,
    /// Total output neurons (FC) or output feature maps (conv).
    pub n_out: usize,
    /// Outputs per shared index (`B_out`; the hardware shares across
    /// `T_n = 16` PEs).
    pub group_size: usize,
    /// Dictionary width in bits (decoded by the WDM).
    pub quant_bits: u8,
    /// The output groups in order.
    pub groups: Vec<OutputGroup>,
}

impl SharedIndexLayer {
    /// Builds the format from a fully-connected weight matrix
    /// `(n_in, n_out)` and its block-aligned mask.
    ///
    /// # Errors
    ///
    /// Returns an error when the mask is not shared within each output
    /// group (i.e. pruning was not coarse over `group_size` outputs) or
    /// shapes disagree.
    pub fn from_fc(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        group_size: usize,
        quant_bits: u8,
    ) -> Result<Self, CompressError> {
        if weights.shape().rank() != 2 {
            return Err(CompressError::Tensor(TensorError::RankMismatch {
                expected: 2,
                actual: weights.shape().rank(),
                op: "shared-index fc",
            }));
        }
        let (n_in, n_out) = (weights.shape().dim(0), weights.shape().dim(1));
        let get_mask = |i: usize, o: usize| mask.bits()[i * n_out + o];
        let get_w = |i: usize, o: usize| weights.as_slice()[i * n_out + o];
        Self::build(
            name.into(),
            n_in,
            n_out,
            group_size,
            quant_bits,
            get_mask,
            get_w,
        )
    }

    /// Builds the format from convolutional weights
    /// `(n_fin, n_fout, kx, ky)` and a mask that is coarse over
    /// `group_size` output maps (the paper's `(1, N, 1, 1)` blocks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedIndexLayer::from_fc`].
    pub fn from_conv(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        group_size: usize,
        quant_bits: u8,
    ) -> Result<Self, CompressError> {
        if weights.shape().rank() != 4 {
            return Err(CompressError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: weights.shape().rank(),
                op: "shared-index conv",
            }));
        }
        let (fi, fo, kx, ky) = (
            weights.shape().dim(0),
            weights.shape().dim(1),
            weights.shape().dim(2),
            weights.shape().dim(3),
        );
        let n_in = fi * kx * ky;
        // Input position p = (f * kx + x) * ky + y.
        let get_mask = move |p: usize, o: usize| {
            let f = p / (kx * ky);
            let rem = p % (kx * ky);
            mask.bits()[((f * fo + o) * kx + rem / ky) * ky + rem % ky]
        };
        let get_w = move |p: usize, o: usize| {
            let f = p / (kx * ky);
            let rem = p % (kx * ky);
            weights.as_slice()[((f * fo + o) * kx + rem / ky) * ky + rem % ky]
        };
        Self::build(
            name.into(),
            n_in,
            fo,
            group_size,
            quant_bits,
            get_mask,
            get_w,
        )
    }

    fn build(
        name: String,
        n_in: usize,
        n_out: usize,
        group_size: usize,
        quant_bits: u8,
        get_mask: impl Fn(usize, usize) -> bool,
        get_w: impl Fn(usize, usize) -> f32,
    ) -> Result<Self, CompressError> {
        let group_size = group_size.max(1).min(n_out);
        let mut groups = Vec::with_capacity(n_out.div_ceil(group_size));
        for g0 in (0..n_out).step_by(group_size) {
            let g1 = (g0 + group_size).min(n_out);
            // Shared index from the first output; verify the rest agree.
            let index: Vec<bool> = (0..n_in).map(|i| get_mask(i, g0)).collect();
            for o in g0 + 1..g1 {
                for (i, bit) in index.iter().enumerate() {
                    if get_mask(i, o) != *bit {
                        return Err(CompressError::Coding(cs_coding::CodingError::InvalidInput(
                            format!("mask not shared within output group at ({i}, {o})"),
                        )));
                    }
                }
            }
            // Gather surviving weights for the group and quantize with a
            // per-group codebook (local quantization at group scope).
            let mut all: Vec<f32> = Vec::new();
            for o in g0..g1 {
                for (i, bit) in index.iter().enumerate() {
                    if *bit {
                        all.push(get_w(i, o));
                    }
                }
            }
            if all.is_empty() {
                // Fully-pruned group: keep an empty codebook.
                groups.push(OutputGroup {
                    index,
                    weights: vec![Vec::new(); g1 - g0],
                    codebook: Codebook::new(vec![0.0]),
                });
                continue;
            }
            let k = 1usize << quant_bits.min(12);
            let km = kmeans_1d(&all, k, 20);
            let codebook = Codebook::new(km.centroids);
            let per_out = all.len() / (g1 - g0);
            let weights: Vec<Vec<u16>> = (0..g1 - g0)
                .map(|oi| km.assignments[oi * per_out..(oi + 1) * per_out].to_vec())
                .collect();
            groups.push(OutputGroup {
                index,
                weights,
                codebook,
            });
        }
        Ok(SharedIndexLayer {
            name,
            n_in,
            n_out,
            group_size,
            quant_bits,
            groups,
        })
    }

    /// Fraction of surviving synapses.
    pub fn density(&self) -> f64 {
        let total = self.n_in * self.n_out;
        if total == 0 {
            return 0.0;
        }
        let surv: usize = self
            .groups
            .iter()
            .map(|g| g.survivors() * g.weights.len())
            .sum();
        surv as f64 / total as f64
    }

    /// Total surviving synapse count.
    pub fn surviving(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.survivors() * g.weights.len())
            .sum()
    }

    /// Index storage in bits: one bit per input position per *group*
    /// (shared across the group's outputs).
    pub fn index_bits(&self) -> usize {
        self.groups.len() * self.n_in
    }

    /// Compact weight storage in bytes at the dictionary width, plus the
    /// codebook LUTs (2 bytes per entry).
    pub fn weight_bytes(&self) -> usize {
        let dict_bits: usize = self.surviving() * usize::from(self.quant_bits);
        let luts: usize = self.groups.iter().map(|g| g.codebook.byte_size()).sum();
        dict_bits.div_ceil(8) + luts
    }

    /// Decodes the weight for `(group, lane, pos)` through the group's
    /// codebook — what the WDM does in hardware.
    pub fn decode_weight(&self, group: usize, lane: usize, pos: usize) -> f32 {
        let g = &self.groups[group];
        g.codebook.value(g.weights[lane][pos])
    }

    /// Reference computation: dense input (length `n_in`) to all outputs,
    /// using only surviving synapses. This is the functional ground truth
    /// the accelerator simulator is validated against.
    ///
    /// # Panics
    ///
    /// Panics when `input.len() != n_in`.
    pub fn output(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        let mut out = Vec::with_capacity(self.n_out);
        for g in &self.groups {
            let selected: Vec<usize> = g
                .index
                .iter()
                .enumerate()
                .filter(|(_, b)| **b)
                .map(|(i, _)| i)
                .collect();
            for lane in &g.weights {
                let mut acc = 0.0f32;
                for (pos, &i) in selected.iter().enumerate() {
                    acc += g.codebook.value(lane[pos]) * input[i];
                }
                out.push(acc);
            }
        }
        out
    }
}

/// Validates a 2-D FC weight/mask pair against a `(bank, k)` structured
/// pattern and returns `(n_in, n_out)`.
fn check_structured_fc(
    weights: &Tensor,
    mask: &Mask,
    bank: usize,
    k: usize,
    what: &str,
) -> Result<(usize, usize), CompressError> {
    if weights.shape().rank() != 2 {
        return Err(CompressError::Tensor(TensorError::RankMismatch {
            expected: 2,
            actual: weights.shape().rank(),
            op: "structured fc",
        }));
    }
    if mask.shape() != weights.shape() {
        return Err(CompressError::Tensor(TensorError::ShapeMismatch {
            left: mask.shape().clone(),
            right: weights.shape().clone(),
            op: "structured fc",
        }));
    }
    if !satisfies_pattern(mask, bank, k) {
        return Err(CompressError::Coding(cs_coding::CodingError::InvalidInput(
            format!("mask does not satisfy the {what} pattern (bank {bank}, k {k})"),
        )));
    }
    Ok((weights.shape().dim(0), weights.shape().dim(1)))
}

/// Gathers the surviving `(offset-in-bank, value)` pairs of one output
/// lane, ascending by input position.
fn gather_lane(
    weights: &Tensor,
    mask: &Mask,
    o: usize,
    bank: usize,
    offsets: &mut Vec<u8>,
    values: &mut Vec<f32>,
) {
    let (n_in, n_out) = (weights.shape().dim(0), weights.shape().dim(1));
    let (w, bits) = (weights.as_slice(), mask.bits());
    for i in 0..n_in {
        if bits[i * n_out + o] {
            offsets.push((i % bank) as u8);
            values.push(w[i * n_out + o]);
        }
    }
}

/// Exact-codebook group-size-1 [`SharedIndexLayer`] bridge shared by the
/// structured formats: one group per output lane whose codebook *is* the
/// lane's surviving values (identity dictionary, no quantization loss),
/// so the simulator path executes the same weights the engine does.
fn shared_from_lanes(
    name: &str,
    n_in: usize,
    n_out: usize,
    lane_index: impl Fn(usize) -> Vec<bool>,
    lane_values: impl Fn(usize) -> Vec<f32>,
) -> SharedIndexLayer {
    let groups = (0..n_out)
        .map(|o| {
            let vals = lane_values(o);
            let lane: Vec<u16> = (0..vals.len() as u16).collect();
            OutputGroup {
                index: lane_index(o),
                weights: vec![lane],
                codebook: if vals.is_empty() {
                    Codebook::new(vec![0.0])
                } else {
                    Codebook::new(vals)
                },
            }
        })
        .collect();
    SharedIndexLayer {
        name: name.to_string(),
        n_in,
        n_out,
        group_size: 1,
        quant_bits: 16,
        groups,
    }
}

/// A layer stored in the 2:4 semi-structured format: every group of 4
/// input positions keeps exactly 2 survivors per output lane, so the
/// value array is exactly half the dense width and each survivor's
/// position fits in a 2-bit in-group offset.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoFourFcLayer {
    /// Layer name.
    pub name: String,
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Packed 2-bit offsets: byte `o * n_groups + g` holds the group's
    /// two in-group positions as `off0 | off1 << 2` (a ragged tail
    /// keeping one survivor uses only `off0`).
    pub meta: Vec<u8>,
    /// Surviving values, lane-major in ascending input order; each lane
    /// has exactly [`TwoFourFcLayer::stride`] entries.
    pub values: Vec<f32>,
}

impl TwoFourFcLayer {
    /// Builds the format from a weight matrix `(n_in, n_out)` and a mask
    /// produced by [`cs_sparsity::structured::two_four_mask`].
    ///
    /// # Errors
    ///
    /// Returns an error when shapes disagree or the mask does not keep
    /// exactly `min(2, group)` survivors in every group of 4.
    pub fn from_fc(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
    ) -> Result<Self, CompressError> {
        let (n_in, n_out) = check_structured_fc(weights, mask, 4, 2, "2:4")?;
        let n_groups = n_in.div_ceil(4);
        let stride = survivors_per_lane(n_in, 4, 2);
        let mut meta = vec![0u8; n_out * n_groups];
        let mut values = Vec::with_capacity(n_out * stride);
        let mut offsets = Vec::with_capacity(stride);
        for o in 0..n_out {
            offsets.clear();
            gather_lane(weights, mask, o, 4, &mut offsets, &mut values);
            // Two consecutive survivors per full group; the ragged tail
            // may contribute a single trailing offset.
            for (g, pair) in offsets.chunks(2).enumerate() {
                let packed = match pair {
                    [a, b] => a | (b << 2),
                    [a] => *a,
                    _ => 0,
                };
                meta[o * n_groups + g] = packed;
            }
        }
        Ok(TwoFourFcLayer {
            name: name.into(),
            n_in,
            n_out,
            meta,
            values,
        })
    }

    /// Survivors per output lane (exactly `n_in / 2` when `n_in % 4 == 0`).
    pub fn stride(&self) -> usize {
        survivors_per_lane(self.n_in, 4, 2)
    }

    /// Number of 4-wide input groups (the tail may be ragged).
    pub fn n_groups(&self) -> usize {
        self.n_in.div_ceil(4)
    }

    /// Absolute surviving input positions of lane `o`, ascending —
    /// unpacked from the 2-bit metadata.
    pub fn lane_positions(&self, o: usize) -> Vec<u32> {
        let n_groups = self.n_groups();
        let mut pos = Vec::with_capacity(self.stride());
        for g in 0..n_groups {
            let base = (g * 4) as u32;
            let keep = (self.n_in - g * 4).min(2);
            let byte = self.meta[o * n_groups + g];
            pos.push(base + u32::from(byte & 0b11));
            if keep == 2 {
                pos.push(base + u32::from((byte >> 2) & 0b11));
            }
        }
        pos
    }

    /// Surviving values of lane `o`, ascending by input position.
    pub fn lane_values(&self, o: usize) -> &[f32] {
        let s = self.stride();
        &self.values[o * s..(o + 1) * s]
    }

    /// Total surviving synapses.
    pub fn surviving(&self) -> usize {
        self.values.len()
    }

    /// Exact pattern density (0.5 when `n_in % 4 == 0`).
    pub fn density(&self) -> f64 {
        if self.n_in == 0 {
            return 0.0;
        }
        self.stride() as f64 / self.n_in as f64
    }

    /// Position metadata in bits: 2 per survivor.
    pub fn index_bits(&self) -> usize {
        self.surviving() * 2
    }

    /// Compact weight storage in bytes (fp32 values + packed metadata).
    pub fn weight_bytes(&self) -> usize {
        self.values.len() * 4 + self.index_bits().div_ceil(8)
    }

    /// Densifies back to `(n_in, n_out)` — zeros at pruned positions.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = vec![0.0f32; self.n_in * self.n_out];
        for o in 0..self.n_out {
            for (p, v) in self.lane_positions(o).iter().zip(self.lane_values(o)) {
                dense[*p as usize * self.n_out + o] = *v;
            }
        }
        Tensor::from_vec(Shape::d2(self.n_in, self.n_out), dense)
            .unwrap_or_else(|_| Tensor::zeros(Shape::d2(self.n_in, self.n_out)))
    }

    /// Exact-codebook simulator bridge (see [`FcLayerFormat::to_shared`]).
    pub fn to_shared(&self) -> SharedIndexLayer {
        shared_from_lanes(
            &self.name,
            self.n_in,
            self.n_out,
            |o| {
                let mut index = vec![false; self.n_in];
                for p in self.lane_positions(o) {
                    index[p as usize] = true;
                }
                index
            },
            |o| self.lane_values(o).to_vec(),
        )
    }
}

/// A layer stored in the bank-balanced format: every bank of `bank`
/// input positions keeps exactly `k` survivors per lane (micro-range
/// balanced sparsity), giving every lane the same fixed fan-in.
#[derive(Debug, Clone, PartialEq)]
pub struct BankBalancedFcLayer {
    /// Layer name.
    pub name: String,
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Bank width along the input dimension (≤ 256 so offsets fit a byte).
    pub bank: usize,
    /// Survivors per bank.
    pub k: usize,
    /// In-bank offsets, one byte per survivor, lane-major ascending.
    pub offsets: Vec<u8>,
    /// Surviving values, same layout as `offsets`.
    pub values: Vec<f32>,
}

impl BankBalancedFcLayer {
    /// Builds the format from a weight matrix `(n_in, n_out)` and a mask
    /// produced by [`cs_sparsity::structured::bank_balanced_mask`].
    ///
    /// Degenerate geometry is normalized first: a bank wider than the
    /// row clamps to the row width and `k` clamps to the (effective)
    /// bank, which selects exactly the same mask — the stored `bank`/`k`
    /// are the effective values.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes disagree, the effective bank exceeds
    /// 256, or the mask does not keep exactly `min(k, bank_len)`
    /// survivors in every bank.
    pub fn from_fc(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        bank: usize,
        k: usize,
    ) -> Result<Self, CompressError> {
        let rows = if weights.shape().rank() == 2 {
            weights.shape().dim(0)
        } else {
            0
        };
        let bank = if rows > 0 { bank.min(rows) } else { bank };
        let k = k.min(bank.max(1));
        if bank > 256 {
            return Err(CompressError::Tensor(TensorError::InvalidGeometry(
                format!("bank {bank} exceeds the byte-offset limit of 256"),
            )));
        }
        let (n_in, n_out) = check_structured_fc(weights, mask, bank, k, "bank-balanced")?;
        let stride = survivors_per_lane(n_in, bank, k);
        let mut offsets = Vec::with_capacity(n_out * stride);
        let mut values = Vec::with_capacity(n_out * stride);
        for o in 0..n_out {
            gather_lane(weights, mask, o, bank, &mut offsets, &mut values);
        }
        Ok(BankBalancedFcLayer {
            name: name.into(),
            n_in,
            n_out,
            bank,
            k,
            offsets,
            values,
        })
    }

    /// Survivors per output lane (`k` per full bank, `min(k, tail)` for
    /// the ragged tail).
    pub fn stride(&self) -> usize {
        survivors_per_lane(self.n_in, self.bank, self.k)
    }

    /// Absolute surviving input positions of lane `o`, ascending.
    pub fn lane_positions(&self, o: usize) -> Vec<u32> {
        let s = self.stride();
        let lane = &self.offsets[o * s..(o + 1) * s];
        let mut pos = Vec::with_capacity(s);
        let mut bank_idx = 0usize;
        let mut taken = 0usize;
        for &off in lane {
            // Fixed fan-in: `min(k, bank_len)` offsets belong to each
            // bank in order.
            let bank_len = (self.n_in - bank_idx * self.bank).min(self.bank);
            pos.push((bank_idx * self.bank) as u32 + u32::from(off));
            taken += 1;
            if taken == self.k.min(bank_len) {
                bank_idx += 1;
                taken = 0;
            }
        }
        pos
    }

    /// Surviving values of lane `o`, ascending by input position.
    pub fn lane_values(&self, o: usize) -> &[f32] {
        let s = self.stride();
        &self.values[o * s..(o + 1) * s]
    }

    /// Total surviving synapses.
    pub fn surviving(&self) -> usize {
        self.values.len()
    }

    /// Exact pattern density (`k / bank` on bank-aligned widths).
    pub fn density(&self) -> f64 {
        if self.n_in == 0 {
            return 0.0;
        }
        self.stride() as f64 / self.n_in as f64
    }

    /// Position metadata in bits: `ceil(log2(bank))` per survivor.
    pub fn index_bits(&self) -> usize {
        let offset_bits = usize::BITS as usize - (self.bank - 1).leading_zeros() as usize;
        self.surviving() * offset_bits
    }

    /// Compact weight storage in bytes (fp32 values + offset metadata).
    pub fn weight_bytes(&self) -> usize {
        self.values.len() * 4 + self.index_bits().div_ceil(8)
    }

    /// Densifies back to `(n_in, n_out)` — zeros at pruned positions.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = vec![0.0f32; self.n_in * self.n_out];
        for o in 0..self.n_out {
            for (p, v) in self.lane_positions(o).iter().zip(self.lane_values(o)) {
                dense[*p as usize * self.n_out + o] = *v;
            }
        }
        Tensor::from_vec(Shape::d2(self.n_in, self.n_out), dense)
            .unwrap_or_else(|_| Tensor::zeros(Shape::d2(self.n_in, self.n_out)))
    }

    /// Exact-codebook simulator bridge (see [`FcLayerFormat::to_shared`]).
    pub fn to_shared(&self) -> SharedIndexLayer {
        shared_from_lanes(
            &self.name,
            self.n_in,
            self.n_out,
            |o| {
                let mut index = vec![false; self.n_in];
                for p in self.lane_positions(o) {
                    index[p as usize] = true;
                }
                index
            },
            |o| self.lane_values(o).to_vec(),
        )
    }
}

/// Any of the compiled FC storage formats, as the serving stack carries
/// them: the paper's shared-index format for coarse pruning, or one of
/// the structured fixed-fan-in formats.
#[derive(Debug, Clone, PartialEq)]
pub enum FcLayerFormat {
    /// Coarse shared-index storage ([`SharedIndexLayer`]).
    Shared(SharedIndexLayer),
    /// 2:4 semi-structured storage.
    TwoFour(TwoFourFcLayer),
    /// Bank-balanced storage.
    BankBalanced(BankBalancedFcLayer),
}

impl FcLayerFormat {
    /// Layer name.
    pub fn name(&self) -> &str {
        match self {
            FcLayerFormat::Shared(l) => &l.name,
            FcLayerFormat::TwoFour(l) => &l.name,
            FcLayerFormat::BankBalanced(l) => &l.name,
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        match self {
            FcLayerFormat::Shared(l) => l.n_in,
            FcLayerFormat::TwoFour(l) => l.n_in,
            FcLayerFormat::BankBalanced(l) => l.n_in,
        }
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        match self {
            FcLayerFormat::Shared(l) => l.n_out,
            FcLayerFormat::TwoFour(l) => l.n_out,
            FcLayerFormat::BankBalanced(l) => l.n_out,
        }
    }

    /// Fraction of surviving synapses (exact pattern densities for the
    /// structured formats).
    pub fn density(&self) -> f64 {
        match self {
            FcLayerFormat::Shared(l) => l.density(),
            FcLayerFormat::TwoFour(l) => l.density(),
            FcLayerFormat::BankBalanced(l) => l.density(),
        }
    }

    /// Total surviving synapses.
    pub fn surviving(&self) -> usize {
        match self {
            FcLayerFormat::Shared(l) => l.surviving(),
            FcLayerFormat::TwoFour(l) => l.surviving(),
            FcLayerFormat::BankBalanced(l) => l.surviving(),
        }
    }

    /// Index/metadata storage in bits.
    pub fn index_bits(&self) -> usize {
        match self {
            FcLayerFormat::Shared(l) => l.index_bits(),
            FcLayerFormat::TwoFour(l) => l.index_bits(),
            FcLayerFormat::BankBalanced(l) => l.index_bits(),
        }
    }

    /// Compact weight storage in bytes (values plus per-format metadata;
    /// the resident-memory figure the serving registry budgets against).
    pub fn weight_bytes(&self) -> usize {
        match self {
            FcLayerFormat::Shared(l) => l.weight_bytes() + l.index_bits().div_ceil(8),
            FcLayerFormat::TwoFour(l) => l.weight_bytes(),
            FcLayerFormat::BankBalanced(l) => l.weight_bytes(),
        }
    }

    /// The short pattern label used in telemetry and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            FcLayerFormat::Shared(_) => "sparse",
            FcLayerFormat::TwoFour(_) => "two_four",
            FcLayerFormat::BankBalanced(_) => "bank_balanced",
        }
    }

    /// A [`SharedIndexLayer`] view for the accelerator simulator, which
    /// only speaks the shared-index format. `Shared` layers are returned
    /// as-is; structured layers convert to group-size-1 layers whose
    /// per-lane codebook is the lane's surviving values verbatim (a
    /// 1-wide group trivially satisfies index sharing, and the identity
    /// dictionary adds no quantization error).
    pub fn to_shared(&self) -> SharedIndexLayer {
        match self {
            FcLayerFormat::Shared(l) => l.clone(),
            FcLayerFormat::TwoFour(l) => l.to_shared(),
            FcLayerFormat::BankBalanced(l) => l.to_shared(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};
    use cs_sparsity::structured;

    fn fc_layer(n_in: usize, n_out: usize, group: usize, density: f64) -> (Tensor, Mask) {
        let w = local_convergence(
            Shape::d2(n_in, n_out),
            &ConvergenceProfile::with_target_density(density).with_block(group),
            3,
        );
        let cfg = CoarseConfig::fc(group, group, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        (w, mask)
    }

    #[test]
    fn fc_roundtrip_matches_dense_reference() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let mut pruned = w.clone();
        mask.apply(&mut pruned);
        let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 8).unwrap();
        let input: Vec<f32> = (0..64).map(|i| ((i * 13) % 7) as f32 * 0.1).collect();
        let got = sil.output(&input);
        // Dense reference with pruned weights (quantization adds error).
        for (o, got_o) in got.iter().enumerate() {
            let mut want = 0.0f32;
            for (i, x) in input.iter().enumerate() {
                want += pruned.as_slice()[i * 32 + o] * x;
            }
            let tolerance = 0.05 * want.abs().max(0.5);
            assert!(
                (got_o - want).abs() < tolerance,
                "output {o}: got {got_o} want {want}"
            );
        }
    }

    #[test]
    fn group_shares_index() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 4).unwrap();
        assert_eq!(sil.groups.len(), 2);
        for g in &sil.groups {
            assert_eq!(g.weights.len(), 16);
            for lane in &g.weights {
                assert_eq!(lane.len(), g.survivors());
            }
        }
        // Index bits: 2 groups x 64 inputs, vs fine-grained 64x32.
        assert_eq!(sil.index_bits(), 128);
    }

    #[test]
    fn unshared_mask_rejected() {
        let w = Tensor::full(Shape::d2(8, 8), 1.0);
        // A mask that differs within an 8-wide output group.
        let mut bits = vec![true; 64];
        bits[3] = false; // (0,3) pruned but (0,0) kept
        let mask = Mask::from_bits(Shape::d2(8, 8), bits).unwrap();
        assert!(SharedIndexLayer::from_fc("bad", &w, &mask, 8, 4).is_err());
    }

    #[test]
    fn conv_lowering_matches_mask() {
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            9,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let sil = SharedIndexLayer::from_conv("conv", &w, &mask, 16, 8).unwrap();
        assert_eq!(sil.n_in, 2 * 9);
        assert_eq!(sil.n_out, 32);
        assert_eq!(sil.groups.len(), 2);
        assert!((sil.density() - mask.density()).abs() < 1e-9);
    }

    #[test]
    fn density_and_sizes() {
        let (w, mask) = fc_layer(128, 64, 16, 0.125);
        let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 4).unwrap();
        assert!((sil.density() - mask.density()).abs() < 1e-9);
        assert!(sil.weight_bytes() < 128 * 64 * 2 / 4);
    }

    #[test]
    fn fully_pruned_group_is_empty_but_valid() {
        let w = Tensor::full(Shape::d2(4, 4), 1.0);
        let mask = Mask::zeros_like(Shape::d2(4, 4));
        let sil = SharedIndexLayer::from_fc("empty", &w, &mask, 4, 4).unwrap();
        assert_eq!(sil.surviving(), 0);
        let out = sil.output(&[1.0; 4]);
        assert_eq!(out, vec![0.0; 4]);
    }

    fn rand_w(n_in: usize, n_out: usize, seed: u64) -> Tensor {
        let mut x = seed | 1;
        Tensor::from_fn(Shape::d2(n_in, n_out), |_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn two_four_roundtrips_through_packed_metadata() {
        for n_in in [16usize, 17, 5, 7] {
            let w = rand_w(n_in, 6, n_in as u64);
            let mask = structured::two_four_mask(&w).unwrap();
            let tf = TwoFourFcLayer::from_fc("tf", &w, &mask).unwrap();
            // Densify: survivors carry original values, everything else 0.
            let dense = tf.to_dense();
            for i in 0..n_in {
                for o in 0..6 {
                    let want = if mask.bits()[i * 6 + o] {
                        w.as_slice()[i * 6 + o]
                    } else {
                        0.0
                    };
                    assert_eq!(dense.as_slice()[i * 6 + o], want, "n_in {n_in} ({i},{o})");
                }
            }
            assert_eq!(tf.surviving(), mask.ones());
            assert_eq!(tf.index_bits(), mask.ones() * 2);
            assert!((tf.density() - mask.density()).abs() < 1e-12);
        }
    }

    #[test]
    fn bank_balanced_roundtrips_through_offsets() {
        for (bank, k) in [(8usize, 2usize), (3, 2), (16, 5), (1, 1)] {
            let w = rand_w(21, 5, (bank * 7 + k) as u64);
            let mask = structured::bank_balanced_mask(&w, bank, k).unwrap();
            let bb = BankBalancedFcLayer::from_fc("bb", &w, &mask, bank, k).unwrap();
            let dense = bb.to_dense();
            for i in 0..21 {
                for o in 0..5 {
                    let want = if mask.bits()[i * 5 + o] {
                        w.as_slice()[i * 5 + o]
                    } else {
                        0.0
                    };
                    assert_eq!(dense.as_slice()[i * 5 + o], want, "bank {bank} k {k}");
                }
            }
            assert_eq!(bb.surviving(), mask.ones());
        }
    }

    #[test]
    fn structured_formats_reject_wrong_masks() {
        let w = rand_w(16, 4, 3);
        // A coarse mask is (generically) not 2:4.
        let cfg = CoarseConfig::fc(4, 4, PruneMetric::Average);
        let coarse_mask = coarse::prune_to_density(&w, &cfg, 0.5).unwrap();
        assert!(TwoFourFcLayer::from_fc("bad", &w, &coarse_mask).is_err());
        assert!(BankBalancedFcLayer::from_fc("bad", &w, &coarse_mask, 8, 3).is_err());
        // Bank too wide for byte offsets even after clamping to the row.
        let tall = rand_w(300, 2, 5);
        let m = structured::bank_balanced_mask(&tall, 300, 4).unwrap();
        assert!(BankBalancedFcLayer::from_fc("bad", &tall, &m, 300, 4).is_err());
    }

    #[test]
    fn bank_balanced_degenerate_geometry_normalizes() {
        let w = rand_w(8, 3, 11);
        // k >= bank keeps everything; bank wider than the row collapses
        // to one ragged bank. The stored geometry is the effective one.
        for (bank, k) in [(4usize, 9usize), (100, 100), (100, 3)] {
            let mask = structured::bank_balanced_mask(&w, bank, k).unwrap();
            let bb = BankBalancedFcLayer::from_fc("bb", &w, &mask, bank, k).unwrap();
            assert!(bb.bank <= 8, "bank {bank} k {k}");
            assert!(bb.k <= bb.bank, "bank {bank} k {k}");
            assert_eq!(bb.surviving(), mask.ones(), "bank {bank} k {k}");
            let dense = bb.to_dense();
            for i in 0..8 {
                for o in 0..3 {
                    let want = if mask.bits()[i * 3 + o] {
                        w.as_slice()[i * 3 + o]
                    } else {
                        0.0
                    };
                    assert_eq!(dense.as_slice()[i * 3 + o], want, "bank {bank} k {k}");
                }
            }
        }
        // Fully-degenerate geometry is a full mask end to end.
        let mask = structured::bank_balanced_mask(&w, 100, 100).unwrap();
        assert_eq!(mask.ones(), 8 * 3);
    }

    #[test]
    fn to_shared_bridge_is_exact() {
        let w = rand_w(20, 8, 11);
        let mask = structured::two_four_mask(&w).unwrap();
        let tf = TwoFourFcLayer::from_fc("tf", &w, &mask).unwrap();
        let sil = tf.to_shared();
        assert_eq!(sil.group_size, 1);
        assert_eq!(sil.groups.len(), 8);
        // The identity codebook decodes the original values exactly, so
        // the shared-index reference output equals a dense product with
        // the densified weights (up to its own accumulation order).
        let input: Vec<f32> = (0..20).map(|i| (i as f32 * 0.3).sin()).collect();
        let got = sil.output(&input);
        let dense = tf.to_dense();
        for (o, g) in got.iter().enumerate() {
            let mut want = 0.0f32;
            for (i, x) in input.iter().enumerate() {
                // Skipped terms are exact zeros, so serial accumulation
                // in ascending order matches the bridge's gather.
                if mask.bits()[i * 8 + o] {
                    want += dense.as_slice()[i * 8 + o] * x;
                }
            }
            assert_eq!(*g, want, "lane {o}");
        }

        let bb_mask = structured::bank_balanced_mask(&w, 5, 2).unwrap();
        let bb = BankBalancedFcLayer::from_fc("bb", &w, &bb_mask, 5, 2).unwrap();
        let sb = bb.to_shared();
        assert_eq!(sb.group_size, 1);
        assert!((sb.density() - bb.density()).abs() < 1e-12);
    }

    #[test]
    fn format_enum_delegates() {
        let w = rand_w(16, 4, 21);
        let mask = structured::two_four_mask(&w).unwrap();
        let tf = FcLayerFormat::TwoFour(TwoFourFcLayer::from_fc("tf", &w, &mask).unwrap());
        assert_eq!(tf.kind(), "two_four");
        assert_eq!(tf.n_in(), 16);
        assert_eq!(tf.n_out(), 4);
        assert_eq!(tf.density(), 0.5);
        assert_eq!(tf.surviving(), 32);
        assert_eq!(tf.index_bits(), 64);

        let bbm = structured::bank_balanced_mask(&w, 8, 2).unwrap();
        let bb = FcLayerFormat::BankBalanced(
            BankBalancedFcLayer::from_fc("bb", &w, &bbm, 8, 2).unwrap(),
        );
        assert_eq!(bb.kind(), "bank_balanced");
        assert_eq!(bb.density(), 0.25);

        let (cw, cmask) = fc_layer(64, 32, 16, 0.25);
        let sil = SharedIndexLayer::from_fc("fc", &cw, &cmask, 16, 8).unwrap();
        let sh = FcLayerFormat::Shared(sil.clone());
        assert_eq!(sh.kind(), "sparse");
        assert_eq!(sh.to_shared(), sil);
    }
}
