//! The compression pipeline: prune → quantize → entropy-code, with the
//! size accounting of the paper's Tables II, IV and V.
//!
//! Layers are processed one at a time — weights are materialized from the
//! network spec, compressed, measured and dropped — so even the full-scale
//! networks never need to be wholly resident.

use cs_coding::{arith, bilevel, huffman};
use cs_nn::init::{self, ConvergenceProfile};
use cs_nn::spec::{LayerClass, LayerSpec, Model, NetworkSpec};
use cs_quant::{quantize_local, QuantizedLayer};
use cs_sparsity::coarse::{self, CoarseConfig};
use cs_sparsity::{fine, stats, structured, Mask};
use cs_tensor::Tensor;

use crate::config::{EntropyCoder, LayerCompressionConfig, ModelCompressionConfig};
use crate::CompressError;

/// Bytes per dense weight (fp32, the baseline the paper's compression
/// ratios are computed against).
pub const DENSE_WEIGHT_BYTES: usize = 4;

/// Bytes per pruned-but-unquantized weight (`W_p` stage, still fp32).
pub const PRUNED_WEIGHT_BYTES: usize = 4;

/// Size accounting for one compressed layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Layer class (conv / fc / lstm).
    pub class: LayerClass,
    /// Dense synapse count.
    pub weight_count: usize,
    /// Surviving synapse count after pruning.
    pub surviving: usize,
    /// Post-pruning density (remaining / total).
    pub density: f64,
    /// Static neuron sparsity of the pruned layer.
    pub sns: f64,
    /// Dense size in bytes.
    pub dense_bytes: usize,
    /// `W_p`: pruned weights at fp32, in bytes.
    pub wp_bytes: usize,
    /// Coarse (block-level) index size in bits.
    pub coarse_index_bits: usize,
    /// Fine-grained (per-synapse) index size in bits, for comparison.
    pub fine_index_bits: usize,
    /// `W_q`: quantized weights (dictionary + codebooks), in bytes.
    pub wq_bytes: usize,
    /// `W_c`: entropy-coded weights, in bytes.
    pub wc_bytes: usize,
    /// Entropy-coded coarse index, in bytes.
    pub ic_bytes: usize,
    /// Entropy-coded fine-grained index at the same density, in bytes
    /// (the `JBIG(I_f)` term of the irregularity metric).
    pub if_bytes: usize,
    /// Quantization dictionary width in bits.
    pub quant_bits: u8,
}

impl LayerReport {
    /// Coarse index size in bytes (rounded up).
    pub fn coarse_index_bytes(&self) -> usize {
        self.coarse_index_bits.div_ceil(8)
    }
}

/// Full network compression report (one Table IV row).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Which model was compressed.
    pub model: Model,
    /// Per-layer accounting.
    pub layers: Vec<LayerReport>,
}

impl ModelReport {
    fn sum(&self, f: impl Fn(&LayerReport) -> usize) -> usize {
        self.layers.iter().map(f).sum()
    }

    /// Total dense bytes.
    pub fn dense_bytes(&self) -> usize {
        self.sum(|l| l.dense_bytes)
    }

    /// Total `W_p` bytes.
    pub fn wp_bytes(&self) -> usize {
        self.sum(|l| l.wp_bytes)
    }

    /// Total coarse index bytes (pre-entropy-coding).
    pub fn index_bytes(&self) -> usize {
        self.sum(LayerReport::coarse_index_bytes)
    }

    /// Total `W_q` bytes.
    pub fn wq_bytes(&self) -> usize {
        self.sum(|l| l.wq_bytes)
    }

    /// Total `W_c` bytes.
    pub fn wc_bytes(&self) -> usize {
        self.sum(|l| l.wc_bytes)
    }

    /// Total entropy-coded index bytes.
    pub fn ic_bytes(&self) -> usize {
        self.sum(|l| l.ic_bytes)
    }

    /// Total entropy-coded fine-grained index bytes.
    pub fn if_bytes(&self) -> usize {
        self.sum(|l| l.if_bytes)
    }

    /// `r_p`: compression from pruning alone.
    pub fn pruning_ratio(&self) -> f64 {
        self.dense_bytes() as f64 / (self.wp_bytes() + self.index_bytes()).max(1) as f64
    }

    /// `r_q`: compression from pruning + local quantization.
    pub fn quantized_ratio(&self) -> f64 {
        self.dense_bytes() as f64 / (self.wq_bytes() + self.index_bytes()).max(1) as f64
    }

    /// `r_c`: overall compression ratio after entropy coding.
    pub fn overall_ratio(&self) -> f64 {
        self.dense_bytes() as f64 / (self.wc_bytes() + self.ic_bytes()).max(1) as f64
    }

    /// `R(Irr)`: reduced irregularity (Eq. 1) — fine-grained index
    /// compressed size over coarse-grained index compressed size.
    pub fn reduced_irregularity(&self) -> f64 {
        self.if_bytes() as f64 / self.ic_bytes().max(1) as f64
    }

    /// Mean density over layers of a class, weighted by synapse count
    /// (the per-class "sparsity" percentages of Table IV).
    pub fn class_density(&self, class: LayerClass) -> Option<f64> {
        let layers: Vec<&LayerReport> = self.layers.iter().filter(|l| l.class == class).collect();
        if layers.is_empty() {
            return None;
        }
        let total: usize = layers.iter().map(|l| l.weight_count).sum();
        let surv: usize = layers.iter().map(|l| l.surviving).sum();
        Some(surv as f64 / total.max(1) as f64)
    }
}

/// Prunes a layer according to `cfg.mode`: the configured coarse block
/// to the target density, or a structured fixed-fan-in pattern (2:4 /
/// bank-balanced, FC layers only) whose density is set by its geometry.
///
/// # Errors
///
/// Propagates invalid-density errors, and rank/geometry errors for
/// structured modes on non-FC weights.
pub fn prune_layer(weights: &Tensor, cfg: &LayerCompressionConfig) -> Result<Mask, CompressError> {
    if cfg.mode.is_structured() {
        return Ok(structured::structured_mask(weights, &cfg.mode)?);
    }
    if cfg.target_density >= 1.0 {
        return Ok(Mask::ones_like(weights.shape().clone()));
    }
    Ok(coarse::prune_to_density(
        weights,
        &cfg.coarse,
        cfg.target_density,
    )?)
}

/// Parallel [`prune_layer`]: block (or lane) scoring fans out over the
/// pool and the result is bit-identical to the serial version.
///
/// # Errors
///
/// Same conditions as [`prune_layer`].
pub fn prune_layer_pooled(
    weights: &Tensor,
    cfg: &LayerCompressionConfig,
    pool: &cs_parallel::ThreadPool,
) -> Result<Mask, CompressError> {
    if cfg.mode.is_structured() {
        return Ok(structured::structured_mask_pooled(
            weights, &cfg.mode, pool,
        )?);
    }
    if cfg.target_density >= 1.0 {
        return Ok(Mask::ones_like(weights.shape().clone()));
    }
    Ok(coarse::prune_to_density_pooled(
        weights,
        &cfg.coarse,
        cfg.target_density,
        pool,
    )?)
}

/// Runs the full flow on one layer's weights, returning the report and
/// the quantized layer artifact.
///
/// # Errors
///
/// Returns [`CompressError`] when pruning removes everything or a
/// sub-codec fails.
pub fn compress_layer(
    layer: &LayerSpec,
    weights: &Tensor,
    cfg: &LayerCompressionConfig,
) -> Result<(LayerReport, Mask, QuantizedLayer), CompressError> {
    let mask = prune_layer(weights, cfg)?;
    let surviving_values = mask.compact_values(weights);
    if surviving_values.is_empty() {
        return Err(CompressError::EmptyLayer(layer.name().to_string()));
    }

    // Local quantization: one codebook per ~region_values weights.
    let regions = surviving_values.len().div_ceil(cfg.region_values).max(1);
    let quant = quantize_local(&surviving_values, cfg.quant_bits, regions)?;
    finish_layer(layer, weights, cfg, mask, surviving_values, quant)
}

/// Parallel [`compress_layer`]: block scoring and per-region k-means fan
/// out over the pool; the entropy-coding stages are unchanged. Produces
/// a report identical to the serial version.
///
/// # Errors
///
/// Same conditions as [`compress_layer`].
pub fn compress_layer_pooled(
    layer: &LayerSpec,
    weights: &Tensor,
    cfg: &LayerCompressionConfig,
    pool: &cs_parallel::ThreadPool,
) -> Result<(LayerReport, Mask, QuantizedLayer), CompressError> {
    let mask = prune_layer_pooled(weights, cfg, pool)?;
    let surviving_values = mask.compact_values(weights);
    if surviving_values.is_empty() {
        return Err(CompressError::EmptyLayer(layer.name().to_string()));
    }
    let regions = surviving_values.len().div_ceil(cfg.region_values).max(1);
    let quant = cs_quant::quantize_local_pooled(&surviving_values, cfg.quant_bits, regions, pool)?;
    finish_layer(layer, weights, cfg, mask, surviving_values, quant)
}

fn finish_layer(
    layer: &LayerSpec,
    weights: &Tensor,
    cfg: &LayerCompressionConfig,
    mask: Mask,
    surviving_values: Vec<f32>,
    quant: QuantizedLayer,
) -> Result<(LayerReport, Mask, QuantizedLayer), CompressError> {
    // Entropy-code the dictionary (Huffman or adaptive arithmetic, per
    // config) and the indexes (bilevel).
    let dict_bytes = match cfg.entropy {
        EntropyCoder::Huffman => huffman::encode(quant.indices())?.payload_bits.div_ceil(8),
        EntropyCoder::Arithmetic => arith::encode_symbols(quant.indices(), cfg.quant_bits).len(),
    };
    let wc_bytes = dict_bytes + quant.codebook_bytes();

    // Index accounting. Coarse mode carries a block-level keep bitmap
    // that goes through the bilevel coder; structured modes carry packed
    // position metadata (2-bit offsets for 2:4, ceil(log2(bank))-bit
    // offsets for bank-balanced) that already *is* the index — there is
    // no entropy stage to run on it.
    let (coarse_index_bits, ic_bytes) = if let Some((bank, k)) = cfg.mode.geometry() {
        let bits = structured::metadata_bits(weights.shape(), bank, k);
        (bits, bits.div_ceil(8))
    } else {
        let bk = coarse::block_keep(&mask, &cfg.coarse);
        let (_rows, cols) = bk.as_2d();
        let coarse_img = bilevel::BiLevelImage::from_bits(&bk.keep, cols.max(1))?;
        (bk.keep.len(), bilevel::compressed_size(&coarse_img))
    };

    // Fine-grained comparison mask at the same density.
    let fine_mask = fine::prune_to_density(weights, mask.density().max(1e-6))?;
    let (_, fcols) = mask_2d_dims(weights);
    let fine_img = bilevel::BiLevelImage::from_bits(fine_mask.bits(), fcols)?;
    let if_bytes = bilevel::compressed_size(&fine_img);

    let report = LayerReport {
        name: layer.name().to_string(),
        class: layer.class(),
        weight_count: weights.len(),
        surviving: surviving_values.len(),
        density: stats::mode_synapse_sparsity(&cfg.mode, &mask),
        sns: stats::static_neuron_sparsity(&mask),
        dense_bytes: weights.len() * DENSE_WEIGHT_BYTES,
        wp_bytes: surviving_values.len() * PRUNED_WEIGHT_BYTES,
        coarse_index_bits,
        fine_index_bits: weights.len(),
        wq_bytes: quant.byte_size(),
        wc_bytes,
        ic_bytes,
        if_bytes,
        quant_bits: cfg.quant_bits,
    };
    Ok((report, mask, quant))
}

/// Compresses a whole network spec, materializing each layer's weights
/// with the local-convergence generator calibrated to the layer's target
/// density.
///
/// # Errors
///
/// Propagates per-layer failures.
pub fn compress_model(
    spec: &NetworkSpec,
    cfg: &ModelCompressionConfig,
    seed: u64,
) -> Result<ModelReport, CompressError> {
    let mut layers = Vec::new();
    for layer in spec.weighted_layers() {
        let lc = cfg.for_layer(layer);
        let profile = ConvergenceProfile::with_target_density(profile_density(lc))
            .with_block(dominant_block(&lc.coarse));
        let weights = init::materialize(layer, &profile, seed);
        let (report, _, _) = compress_layer(layer, &weights, lc)?;
        layers.push(report);
    }
    Ok(ModelReport {
        model: spec.model_id(),
        layers,
    })
}

/// Parallel [`compress_model`]: per-layer pruning and quantization fan
/// out over the pool via [`compress_layer_pooled`]. Produces a report
/// identical to the serial version.
///
/// # Errors
///
/// Propagates per-layer failures.
pub fn compress_model_pooled(
    spec: &NetworkSpec,
    cfg: &ModelCompressionConfig,
    seed: u64,
    pool: &cs_parallel::ThreadPool,
) -> Result<ModelReport, CompressError> {
    let mut layers = Vec::new();
    for layer in spec.weighted_layers() {
        let lc = cfg.for_layer(layer);
        let profile = ConvergenceProfile::with_target_density(profile_density(lc))
            .with_block(dominant_block(&lc.coarse));
        let weights = init::materialize(layer, &profile, seed);
        let (report, _, _) = compress_layer_pooled(layer, &weights, lc, pool)?;
        layers.push(report);
    }
    Ok(ModelReport {
        model: spec.model_id(),
        layers,
    })
}

/// The 2-D view used when compressing a full-resolution mask as an image.
fn mask_2d_dims(weights: &Tensor) -> (usize, usize) {
    let s = weights.shape();
    match s.rank() {
        2 => (s.dim(0), s.dim(1)),
        4 => (s.dim(0) * s.dim(2) * s.dim(3), s.dim(1)),
        _ => (1, weights.len()),
    }
}

/// Density the weight generator should assume: the geometric pattern
/// density for structured modes, the configured target otherwise.
fn profile_density(cfg: &LayerCompressionConfig) -> f64 {
    match cfg.mode.geometry() {
        Some((bank, k)) => k as f64 / bank as f64,
        None => cfg.target_density,
    }
}

fn dominant_block(cfg: &CoarseConfig) -> usize {
    cfg.block().iter().copied().max().unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::spec::Scale;

    #[test]
    fn mlp_compression_report_has_paper_shape() {
        let spec = NetworkSpec::model(Model::Mlp, Scale::Full);
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        let report = compress_model(&spec, &cfg, 7).unwrap();
        assert_eq!(report.layers.len(), 3);
        // Density close to the 9.87% target.
        let d = report.class_density(LayerClass::FullyConnected).unwrap();
        assert!((d - 0.0987).abs() < 0.02, "density {d}");
        // Ratios ordered rp < rq <= rc-ish, all substantial.
        let rp = report.pruning_ratio();
        let rq = report.quantized_ratio();
        let rc = report.overall_ratio();
        assert!(rp > 5.0 && rp < 15.0, "rp {rp}");
        assert!(rq > 3.0 * rp, "rq {rq} vs rp {rp}");
        assert!(rc > rq * 0.8, "rc {rc} vs rq {rq}");
        // Irregularity reduced.
        assert!(report.reduced_irregularity() > 2.0);
    }

    #[test]
    fn lenet_compression_runs() {
        let spec = NetworkSpec::model(Model::LeNet5, Scale::Full);
        let cfg = ModelCompressionConfig::paper(Model::LeNet5);
        let report = compress_model(&spec, &cfg, 3).unwrap();
        assert_eq!(report.layers.len(), 4);
        assert!(report.overall_ratio() > 20.0);
    }

    #[test]
    fn coarse_index_far_smaller_than_fine() {
        let spec = NetworkSpec::model(Model::Mlp, Scale::Full);
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        let report = compress_model(&spec, &cfg, 7).unwrap();
        let coarse: usize = report.layers.iter().map(|l| l.coarse_index_bits).sum();
        let fine: usize = report.layers.iter().map(|l| l.fine_index_bits).sum();
        // Blocks are 16x16 => ~256x reduction (edge blocks round up).
        let ratio = fine / coarse;
        assert!((200..=256).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dense_layer_passthrough() {
        // density 1.0 -> everything survives, index all-ones.
        let spec = NetworkSpec::model(Model::Lstm, Scale::Reduced(8));
        let mut cfg = ModelCompressionConfig::paper(Model::Lstm);
        cfg.lstm.target_density = 1.0;
        let report = compress_model(&spec, &cfg, 1).unwrap();
        assert_eq!(report.layers[0].surviving, report.layers[0].weight_count);
    }

    #[test]
    fn compress_layer_returns_block_aligned_mask() {
        let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        let layer = spec.weighted_layers().next().unwrap();
        let lc = cfg.for_layer(layer);
        let w = init::materialize(
            layer,
            &ConvergenceProfile::with_target_density(lc.target_density),
            5,
        );
        let (report, mask, quant) = compress_layer(layer, &w, lc).unwrap();
        assert!(coarse::is_block_aligned(&mask, &lc.coarse));
        assert_eq!(quant.len(), report.surviving);
        assert_eq!(quant.bits(), 6);
    }

    #[test]
    fn pooled_pipeline_produces_identical_reports() {
        let pool = cs_parallel::ThreadPool::new(4);
        let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        let serial = compress_model(&spec, &cfg, 7).unwrap();
        let pooled = compress_model_pooled(&spec, &cfg, 7, &pool).unwrap();
        assert_eq!(serial, pooled);

        // Layer-level equality including mask and quantization artifacts.
        let layer = spec.weighted_layers().next().unwrap();
        let lc = cfg.for_layer(layer);
        let w = init::materialize(
            layer,
            &ConvergenceProfile::with_target_density(lc.target_density),
            5,
        );
        let (sr, sm, sq) = compress_layer(layer, &w, lc).unwrap();
        let (pr, pm, pq) = compress_layer_pooled(layer, &w, lc, &pool).unwrap();
        assert_eq!(sr, pr);
        assert_eq!(sm, pm);
        assert_eq!(sq, pq);
    }

    #[test]
    fn two_four_mode_flows_end_to_end() {
        use cs_sparsity::structured;

        let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        let layer = spec.weighted_layers().next().unwrap();
        // target_density 1.0 would disable coarse pruning; structured
        // modes ignore it and prune to the pattern anyway.
        let lc = cfg.for_layer(layer).clone().with_density(1.0).two_four();
        let w = init::materialize(layer, &ConvergenceProfile::with_target_density(0.5), 5);
        let (report, mask, quant) = compress_layer(layer, &w, &lc).unwrap();
        assert!(structured::satisfies_pattern(&mask, 4, 2));
        assert_eq!(
            report.coarse_index_bits,
            structured::metadata_bits(w.shape(), 4, 2)
        );
        assert_eq!(report.ic_bytes, report.coarse_index_bits.div_ceil(8));
        assert_eq!(
            report.density,
            stats::pattern_density(&lc.mode, w.shape()).unwrap()
        );
        assert_eq!(quant.len(), report.surviving);

        let pool = cs_parallel::ThreadPool::new(4);
        let (pr, pm, pq) = compress_layer_pooled(layer, &w, &lc, &pool).unwrap();
        assert_eq!(report, pr);
        assert_eq!(mask, pm);
        assert_eq!(quant, pq);
    }

    #[test]
    fn bank_balanced_mode_flows_end_to_end() {
        use cs_sparsity::structured;

        let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        let layer = spec.weighted_layers().next().unwrap();
        let lc = cfg.for_layer(layer).clone().bank_balanced(8, 2);
        let w = init::materialize(layer, &ConvergenceProfile::with_target_density(0.25), 11);
        let (report, mask, _) = compress_layer(layer, &w, &lc).unwrap();
        assert!(structured::satisfies_pattern(&mask, 8, 2));
        assert_eq!(
            report.coarse_index_bits,
            structured::metadata_bits(w.shape(), 8, 2)
        );
        assert_eq!(report.ic_bytes, report.coarse_index_bits.div_ceil(8));
        assert_eq!(
            report.density,
            stats::pattern_density(&lc.mode, w.shape()).unwrap()
        );
    }

    #[test]
    fn structured_modes_reject_conv_weights() {
        let spec = NetworkSpec::model(Model::LeNet5, Scale::Reduced(4));
        let cfg = ModelCompressionConfig::paper(Model::LeNet5);
        let layer = spec
            .weighted_layers()
            .find(|l| l.class() == LayerClass::Convolutional)
            .unwrap();
        let lc = cfg.for_layer(layer).clone().two_four();
        let w = init::materialize(layer, &ConvergenceProfile::with_target_density(0.5), 3);
        assert!(compress_layer(layer, &w, &lc).is_err());
    }

    #[test]
    fn quantization_shrinks_and_coding_shrinks_further() {
        let spec = NetworkSpec::model(Model::Cifar10Quick, Scale::Reduced(2));
        let cfg = ModelCompressionConfig::paper(Model::Cifar10Quick);
        let report = compress_model(&spec, &cfg, 9).unwrap();
        for l in &report.layers {
            assert!(l.wq_bytes < l.wp_bytes, "layer {}", l.name);
            // Entropy coding may add codebook overhead on tiny layers but
            // should never be dramatically worse.
            assert!(l.wc_bytes <= l.wq_bytes + 64, "layer {}", l.name);
        }
    }
}
