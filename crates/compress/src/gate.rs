//! Dynamic activation sparsity: prescan-and-skip gating.
//!
//! Cambricon-S exploits neuron (activation) sparsity in hardware — the
//! NSM gates zero activations so the PE array never multiplies through
//! them. This module is the software twin of that gate: a cheap
//! *prescan* over the input vector produces a per-block occupancy
//! bitmap ([`PrescanBitmap`]), and the gated kernels in
//! [`crate::engine`] consult it to skip every surviving weight whose
//! input block is entirely zero.
//!
//! # Skip eligibility: `bits == +0.0` only
//!
//! A block is skippable **iff every element's bit pattern is exactly
//! `+0.0`** (`f32::to_bits() == 0`). `-0.0`, NaN, and inf blocks are
//! *never* skipped. This is what keeps the gated kernels inside the
//! repo-wide bit-identity contract (`engine` module docs):
//!
//! * a skipped term is exactly `+0.0 * w = ±0.0` for finite `w`, and
//!   adding `±0.0` to any accumulator value `a` returns `a` bit-exactly
//!   — except `a == -0.0`, which the engine's accumulators can never
//!   be (they start at `+0.0` and a sum seeded with `+0.0` cannot round
//!   to `-0.0` under round-to-nearest);
//! * `-0.0` must stay occupied because `-0.0 * w = ∓0.0` has the
//!   *opposite* zero sign — dropping it is still bit-neutral for the
//!   accumulator, but keeping the rule "skipped inputs are `+0.0`"
//!   means eligibility is a pure bit test (`to_bits() == 0`), one
//!   integer compare per element, with no sign/NaN case analysis in the
//!   hot prescan loop;
//! * NaN/inf must stay occupied because `0.0 * NaN = NaN` — the dense
//!   reference would poison the output, so the gated kernel must
//!   multiply through them exactly like the ungated one.
//!
//! # Benefit model
//!
//! Gating is not free: the prescan touches every input element and the
//! gated inner loops carry a per-block branch. [`plan_fc`] /
//! [`plan_structured`] decide per layer — from geometry
//! (`n_in × n_out × density`) and the (optionally measured) prescan and
//! MAC costs in [`GateCostModel`] — whether gating can pay at all, and
//! if so which block size to prescan at. Tiny layers opt out entirely:
//! the work one skipped input saves must be a healthy multiple of the
//! compare spent classifying it.

use std::time::Instant;

/// Per-layer gating policy, carried by
/// `cs_compress::config::LayerCompressionConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatePolicy {
    /// Let the benefit model decide (gate when geometry says it pays,
    /// with an automatically chosen block size).
    #[default]
    Auto,
    /// Never gate this layer.
    Off,
    /// Always gate, prescanning at the given block size (clamped to the
    /// layer's input width; structured kernels gate at their bank width
    /// regardless). Used by benches and tests that need the gated path
    /// exercised deterministically.
    Force {
        /// Prescan block size in input elements.
        block: usize,
    },
}

/// The benefit model's verdict for one layer: gate, prescanning at
/// `block` input elements per occupancy bit. `None` from the planning
/// functions means "run ungated".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatePlan {
    /// Prescan block size in input elements.
    pub block: usize,
}

/// Per-block input occupancy, produced by one prescan pass.
///
/// Bit `g` is set iff block `g` (input elements
/// `[g * block, (g + 1) * block)`, the last block possibly shorter)
/// contains at least one element whose bits are not exactly `+0.0`.
/// Blocks with a clear bit are skip-eligible under the contract above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrescanBitmap {
    block: usize,
    blocks: usize,
    words: Vec<u64>,
    zero_blocks: usize,
}

impl PrescanBitmap {
    /// Scans `input` at `block` elements per occupancy bit.
    pub fn scan(input: &[f32], block: usize) -> PrescanBitmap {
        let block = block.max(1);
        let blocks = input.len().div_ceil(block);
        let mut words = vec![0u64; blocks.div_ceil(64)];
        let mut zero_blocks = 0usize;
        for g in 0..blocks {
            let s = g * block;
            let e = (s + block).min(input.len());
            // Occupied iff any element is not bit-exact +0.0: -0.0
            // (bits 0x8000_0000), NaN, and inf all count as occupied.
            if input[s..e].iter().any(|v| v.to_bits() != 0) {
                words[g / 64] |= 1u64 << (g % 64);
            } else {
                zero_blocks += 1;
            }
        }
        PrescanBitmap {
            block,
            blocks,
            words,
            zero_blocks,
        }
    }

    /// Block size the scan ran at.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of blocks covered.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Whether block `g` must be executed. Out-of-range blocks report
    /// occupied — the gate may only skip what the prescan proved zero.
    #[inline]
    pub fn occupied(&self, g: usize) -> bool {
        if g >= self.blocks {
            return true;
        }
        self.words[g / 64] & (1u64 << (g % 64)) != 0
    }

    /// Whether no block is skippable (the gated kernels fall through to
    /// their ungated inner loops).
    pub fn all_occupied(&self) -> bool {
        self.zero_blocks == 0
    }

    /// The skip counters this scan contributes, independent of which
    /// kernel consumes the bitmap (and therefore identical at any pool
    /// width).
    pub fn stats(&self) -> GateStats {
        GateStats {
            blocks: self.blocks,
            zero_blocks: self.zero_blocks,
        }
    }
}

/// Gate outcome counters for one forward pass: how many input blocks
/// the prescan saw, and how many it proved skippable. Derived from the
/// bitmap alone, so serial, pooled, and vectorized consumers report the
/// same numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateStats {
    /// Input blocks the prescan covered.
    pub blocks: usize,
    /// Blocks proven all-`+0.0` (skipped by the gated kernels).
    pub zero_blocks: usize,
}

impl GateStats {
    /// Blocks that had to execute.
    pub fn occupied_blocks(&self) -> usize {
        self.blocks - self.zero_blocks
    }

    /// Fraction of blocks skipped (0 when nothing was scanned).
    pub fn skip_fraction(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.zero_blocks as f64 / self.blocks as f64
        }
    }

    /// Accumulates another pass's counters (per-layer totals over a
    /// batch or a whole network).
    pub fn merge(&mut self, other: GateStats) {
        self.blocks += other.blocks;
        self.zero_blocks += other.zero_blocks;
    }
}

/// Cost constants the benefit model weighs: nanoseconds per prescanned
/// input element, per dense MAC, and fixed per-block bookkeeping. The
/// defaults are conservative compile-time estimates; [`Self::measure`]
/// replaces them with numbers timed on the running host (used by the
/// benches, where the plan should reflect the machine being measured).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateCostModel {
    /// Cost of classifying one input element (`to_bits` + compare).
    pub prescan_ns: f64,
    /// Cost of one multiply-accumulate in the ungated inner loop.
    pub mac_ns: f64,
    /// Fixed per-block cost (bitmap word update, gate branch).
    pub block_overhead_ns: f64,
}

impl Default for GateCostModel {
    fn default() -> Self {
        GateCostModel {
            prescan_ns: 0.5,
            mac_ns: 1.0,
            block_overhead_ns: 2.0,
        }
    }
}

/// A layer must save at least this many prescan-compare-equivalents
/// per skipped input element, or `Auto` opts out.
const MIN_SKIP_RATIO: f64 = 8.0;
/// `Auto` opts out below this many weights outright: the prescan and
/// the per-block branches would be a measurable fraction of the whole
/// forward no matter the block size.
const TINY_LAYER_LIMIT: usize = 4096;
/// The prescan may cost at most this share of the work a fully-zero
/// block would skip.
const MAX_PRESCAN_SHARE: f64 = 0.25;
/// Block sizes `Auto` chooses among, finest first.
const BLOCK_CANDIDATES: [usize; 4] = [8, 16, 32, 64];

impl GateCostModel {
    /// Times the prescan compare and a dense MAC row on the running
    /// host. Deterministic planning paths (config, serving lanes) use
    /// [`Default`]; benches use this so the plan reflects the measured
    /// machine.
    pub fn measure() -> GateCostModel {
        const N: usize = 4096;
        const REPS: usize = 64;
        let input: Vec<f32> = (0..N).map(|i| (i as f32 * 0.37).sin()).collect();
        let weights: Vec<f32> = (0..N).map(|i| (i as f32 * 0.73).cos()).collect();

        let t0 = Instant::now();
        let mut occupied = 0usize;
        for _ in 0..REPS {
            occupied += input.iter().filter(|v| v.to_bits() != 0).count();
        }
        std::hint::black_box(occupied);
        let prescan_ns = t0.elapsed().as_nanos() as f64 / (N * REPS) as f64;

        let t1 = Instant::now();
        let mut acc = 0.0f32;
        for _ in 0..REPS {
            for (x, w) in input.iter().zip(&weights) {
                acc += x * w;
            }
        }
        std::hint::black_box(acc);
        let mac_ns = t1.elapsed().as_nanos() as f64 / (N * REPS) as f64;

        let d = GateCostModel::default();
        GateCostModel {
            // Floor at tiny positive values so degenerate timer
            // readings (coarse clocks) cannot produce a zero-cost plan.
            prescan_ns: prescan_ns.max(0.01),
            mac_ns: mac_ns.max(0.01),
            block_overhead_ns: d.block_overhead_ns,
        }
    }
}

/// Benefit model for the block-CSR FC and conv kernels, with explicit
/// costs. `density` is the layer's surviving-weight fraction: one
/// skipped input element saves `density * n_out` MACs on average.
pub fn plan_fc_with(
    model: &GateCostModel,
    policy: GatePolicy,
    n_in: usize,
    n_out: usize,
    density: f64,
) -> Option<GatePlan> {
    match policy {
        GatePolicy::Off => None,
        GatePolicy::Force { block } => Some(GatePlan {
            block: block.clamp(1, n_in.max(1)),
        }),
        GatePolicy::Auto => {
            if n_in * n_out < TINY_LAYER_LIMIT {
                return None;
            }
            // ns of inner-loop work one skipped input element saves.
            let skip_ns = density * n_out as f64 * model.mac_ns;
            if skip_ns < MIN_SKIP_RATIO * model.prescan_ns {
                return None;
            }
            // Finest block whose prescan + bookkeeping stays under the
            // share cap of the work a zero block saves; granularity is
            // free below the cap, and finer blocks skip more at partial
            // activation sparsity.
            let block = BLOCK_CANDIDATES
                .iter()
                .copied()
                .find(|&b| {
                    let cost = b as f64 * model.prescan_ns + model.block_overhead_ns;
                    cost <= MAX_PRESCAN_SHARE * b as f64 * skip_ns
                })?
                .min(n_in.max(1));
            Some(GatePlan { block })
        }
    }
}

/// [`plan_fc_with`] under the default cost model — the deterministic
/// path config and the serving lanes use.
pub fn plan_fc(policy: GatePolicy, n_in: usize, n_out: usize, density: f64) -> Option<GatePlan> {
    plan_fc_with(&GateCostModel::default(), policy, n_in, n_out, density)
}

/// Benefit model for the structured kernels, with explicit costs. The
/// skip granularity is the pattern's bank (a skipped bank saves exactly
/// `k * n_out` MACs), so the only decision is gate-or-not; the plan's
/// block is always `bank`.
pub fn plan_structured_with(
    model: &GateCostModel,
    policy: GatePolicy,
    n_in: usize,
    n_out: usize,
    bank: usize,
    k: usize,
) -> Option<GatePlan> {
    let bank = bank.max(1);
    match policy {
        GatePolicy::Off => None,
        GatePolicy::Force { .. } => Some(GatePlan { block: bank }),
        GatePolicy::Auto => {
            if n_in * n_out < TINY_LAYER_LIMIT {
                return None;
            }
            let skip_ns = k as f64 * n_out as f64 * model.mac_ns;
            let cost_ns = bank as f64 * model.prescan_ns + model.block_overhead_ns;
            (cost_ns <= MAX_PRESCAN_SHARE * skip_ns).then_some(GatePlan { block: bank })
        }
    }
}

/// [`plan_structured_with`] under the default cost model.
pub fn plan_structured(
    policy: GatePolicy,
    n_in: usize,
    n_out: usize,
    bank: usize,
    k: usize,
) -> Option<GatePlan> {
    plan_structured_with(&GateCostModel::default(), policy, n_in, n_out, bank, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prescan_marks_exactly_the_nonzero_blocks() {
        // Blocks of 4: [+0 run] [has value] [-0.0] [NaN] [short +0 tail]
        let mut input = vec![0.0f32; 18];
        input[5] = 1.5;
        input[8] = -0.0;
        input[13] = f32::NAN;
        let bm = PrescanBitmap::scan(&input, 4);
        assert_eq!(bm.blocks(), 5);
        assert!(!bm.occupied(0), "all +0.0 block must be skippable");
        assert!(bm.occupied(1));
        assert!(bm.occupied(2), "-0.0 is never skippable");
        assert!(bm.occupied(3), "NaN is never skippable");
        assert!(!bm.occupied(4), "short +0.0 tail block is skippable");
        assert!(bm.occupied(99), "out-of-range blocks report occupied");
        assert_eq!(
            bm.stats(),
            GateStats {
                blocks: 5,
                zero_blocks: 2
            }
        );
        assert!(!bm.all_occupied());
        assert!((bm.stats().skip_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn inf_and_negative_zero_keep_blocks_occupied() {
        for poison in [f32::INFINITY, f32::NEG_INFINITY, -0.0f32] {
            let input = vec![0.0, 0.0, poison, 0.0];
            let bm = PrescanBitmap::scan(&input, 4);
            assert!(bm.occupied(0), "{poison} must not be skipped");
        }
        let clean = PrescanBitmap::scan(&[0.0; 4], 4);
        assert!(!clean.occupied(0));
        assert!(clean.stats().skip_fraction() == 1.0);
    }

    #[test]
    fn empty_and_oversized_block_scans_are_well_formed() {
        let empty = PrescanBitmap::scan(&[], 8);
        assert_eq!(empty.blocks(), 0);
        assert!(empty.all_occupied());
        assert_eq!(empty.stats().skip_fraction(), 0.0);
        // A block wider than the input collapses to one block.
        let one = PrescanBitmap::scan(&[0.0, 1.0], 64);
        assert_eq!(one.blocks(), 1);
        assert!(one.occupied(0));
    }

    #[test]
    fn auto_opts_out_of_tiny_layers_and_gates_big_ones() {
        assert_eq!(plan_fc(GatePolicy::Auto, 16, 16, 1.0), None);
        let plan = plan_fc(GatePolicy::Auto, 1024, 1024, 0.25).expect("big layer gates");
        assert!(BLOCK_CANDIDATES.contains(&plan.block));
        // Near-empty layers save too little per skipped element.
        assert_eq!(plan_fc(GatePolicy::Auto, 4096, 4096, 0.0), None);
    }

    #[test]
    fn off_and_force_policies_are_respected() {
        assert_eq!(plan_fc(GatePolicy::Off, 1024, 1024, 0.25), None);
        assert_eq!(
            plan_fc(GatePolicy::Force { block: 8 }, 1024, 1024, 0.25),
            Some(GatePlan { block: 8 })
        );
        // Forced blocks clamp to the input width.
        assert_eq!(
            plan_fc(GatePolicy::Force { block: 512 }, 20, 4, 1.0),
            Some(GatePlan { block: 20 })
        );
        assert_eq!(
            plan_structured(GatePolicy::Force { block: 999 }, 64, 64, 16, 8),
            Some(GatePlan { block: 16 }),
            "structured gating is always bank-granular"
        );
        assert_eq!(plan_structured(GatePolicy::Off, 512, 512, 16, 8), None);
    }

    #[test]
    fn structured_auto_weighs_bank_against_fan_in() {
        // 16:8 over a wide layer clearly pays.
        assert_eq!(
            plan_structured(GatePolicy::Auto, 512, 512, 16, 8),
            Some(GatePlan { block: 16 })
        );
        // Tiny layer opts out even with a favorable pattern.
        assert_eq!(plan_structured(GatePolicy::Auto, 16, 16, 4, 2), None);
    }

    #[test]
    fn measured_cost_model_is_positive_and_usable() {
        let m = GateCostModel::measure();
        assert!(m.prescan_ns > 0.0 && m.mac_ns > 0.0);
        // Whatever the host measured, a big sparse layer must gate.
        assert!(plan_fc_with(&m, GatePolicy::Auto, 4096, 4096, 0.25).is_some());
    }
}
