//! Compression configuration with the paper's published settings.

use crate::gate::GatePolicy;
use cs_nn::spec::{LayerClass, LayerSpec, Model};
use cs_sparsity::coarse::{CoarseConfig, PruneMetric};
use cs_sparsity::PruneMode;

/// Which entropy coder the final stage uses (the paper discusses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyCoder {
    /// Canonical Huffman coding (the paper's implementation).
    #[default]
    Huffman,
    /// Adaptive arithmetic coding (bit-tree contexts).
    Arithmetic,
}

/// Settings applied to one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCompressionConfig {
    /// Pruning pattern: the paper's coarse blocks (default), or one of
    /// the structured fixed-fan-in modes (FC layers only). Structured
    /// modes ignore `coarse` and `target_density` — their density is
    /// fixed by the pattern geometry.
    pub mode: PruneMode,
    /// Coarse-grained pruning block and metric.
    pub coarse: CoarseConfig,
    /// Target post-pruning density (the paper's "sparsity": remaining /
    /// total). `1.0` disables pruning (ResNet-152 FC layers).
    pub target_density: f64,
    /// Bits per quantized-weight dictionary index.
    pub quant_bits: u8,
    /// Approximate number of surviving weights per local-quantization
    /// region (one codebook per region).
    pub region_values: usize,
    /// Entropy coder used on the quantized dictionary.
    pub entropy: EntropyCoder,
    /// Dynamic activation gating for the compiled execution engine:
    /// whether the forward kernels prescan the input and skip
    /// all-`+0.0` blocks (see [`crate::gate`]). `Auto` (the default)
    /// lets the per-layer benefit model decide.
    pub gate: GatePolicy,
}

impl LayerCompressionConfig {
    /// The paper's convolutional-layer defaults: block `(1, 16, 1, 1)`,
    /// average pruning, 8-bit local quantization.
    pub fn paper_conv(density: f64) -> Self {
        LayerCompressionConfig {
            mode: PruneMode::Coarse,
            coarse: CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average),
            target_density: density,
            quant_bits: 8,
            region_values: 16_384,
            entropy: EntropyCoder::Huffman,
            gate: GatePolicy::Auto,
        }
    }

    /// The paper's fully-connected defaults: block `(B, B)`, average
    /// pruning, 4-bit local quantization.
    pub fn paper_fc(density: f64, block: usize) -> Self {
        LayerCompressionConfig {
            mode: PruneMode::Coarse,
            coarse: CoarseConfig::fc(block, block, PruneMetric::Average),
            target_density: density,
            quant_bits: 4,
            region_values: 16_384,
            entropy: EntropyCoder::Huffman,
            gate: GatePolicy::Auto,
        }
    }

    /// Switches the entropy-coding stage.
    pub fn with_entropy(mut self, entropy: EntropyCoder) -> Self {
        self.entropy = entropy;
        self
    }

    /// Overrides the quantization bit width.
    pub fn with_bits(mut self, bits: u8) -> Self {
        self.quant_bits = bits;
        self
    }

    /// Overrides the target density.
    pub fn with_density(mut self, density: f64) -> Self {
        self.target_density = density;
        self
    }

    /// Overrides the pruning mode.
    pub fn with_mode(mut self, mode: PruneMode) -> Self {
        self.mode = mode;
        self
    }

    /// Overrides the activation-gating policy.
    pub fn with_gate(mut self, gate: GatePolicy) -> Self {
        self.gate = gate;
        self
    }

    /// 2:4 semi-structured pruning (FC layers): top-2 of every group of
    /// 4 inputs per output lane, 2-bit position metadata.
    pub fn two_four(self) -> Self {
        self.with_mode(PruneMode::TwoFour)
    }

    /// Bank-balanced pruning (FC layers): exactly `k` survivors per bank
    /// of `bank` inputs in every output lane.
    pub fn bank_balanced(self, bank: usize, k: usize) -> Self {
        self.with_mode(PruneMode::BankBalanced { bank, k })
    }
}

/// Per-class settings for one network, with optional per-layer overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCompressionConfig {
    /// Settings for convolutional layers.
    pub conv: LayerCompressionConfig,
    /// Settings for fully-connected layers.
    pub fc: LayerCompressionConfig,
    /// Settings for LSTM layers.
    pub lstm: LayerCompressionConfig,
    /// `(layer-name, config)` overrides (e.g. AlexNet's fc8 uses a 16×16
    /// block where fc6/fc7 use 32×32).
    pub overrides: Vec<(String, LayerCompressionConfig)>,
}

impl ModelCompressionConfig {
    /// Resolves the config for a specific layer.
    pub fn for_layer(&self, layer: &LayerSpec) -> &LayerCompressionConfig {
        if let Some((_, cfg)) = self.overrides.iter().find(|(name, _)| name == layer.name()) {
            return cfg;
        }
        match layer.class() {
            LayerClass::Convolutional => &self.conv,
            LayerClass::FullyConnected => &self.fc,
            LayerClass::Lstm => &self.lstm,
            LayerClass::Pooling => &self.conv, // unused; pools carry no weights
        }
    }

    /// The paper's published per-network settings (Table IV sparsities,
    /// Section III block sizes, Section V quantization bit widths).
    pub fn paper(model: Model) -> Self {
        let lstm_default = LayerCompressionConfig {
            mode: PruneMode::Coarse,
            coarse: CoarseConfig::fc(16, 16, PruneMetric::Average),
            target_density: 0.1256,
            quant_bits: 4,
            region_values: 16_384,
            entropy: EntropyCoder::Huffman,
            gate: GatePolicy::Auto,
        };
        match model {
            Model::AlexNet => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(0.3525),
                fc: LayerCompressionConfig::paper_fc(0.1007, 32),
                lstm: lstm_default,
                overrides: vec![(
                    "fc8".to_string(),
                    LayerCompressionConfig::paper_fc(0.1007, 16),
                )],
            },
            Model::Vgg16 => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(0.3517),
                fc: LayerCompressionConfig::paper_fc(0.0484, 32),
                lstm: lstm_default,
                overrides: vec![(
                    "fc8".to_string(),
                    LayerCompressionConfig::paper_fc(0.0484, 16),
                )],
            },
            Model::LeNet5 => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(0.1102).with_bits(4),
                fc: LayerCompressionConfig::paper_fc(0.0853, 16),
                lstm: lstm_default,
                overrides: Vec::new(),
            },
            Model::Mlp => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(1.0),
                fc: LayerCompressionConfig::paper_fc(0.0987, 16).with_bits(6),
                lstm: lstm_default,
                overrides: Vec::new(),
            },
            Model::Cifar10Quick => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(0.0792),
                fc: LayerCompressionConfig::paper_fc(0.0601, 16),
                lstm: lstm_default,
                overrides: Vec::new(),
            },
            Model::ResNet152 => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(0.5431),
                // ResNet's FC layer is left dense (Table III/IV: F 100%).
                fc: LayerCompressionConfig::paper_fc(1.0, 16).with_bits(8),
                lstm: lstm_default,
                overrides: Vec::new(),
            },
            Model::Lstm => ModelCompressionConfig {
                conv: LayerCompressionConfig::paper_conv(1.0),
                fc: LayerCompressionConfig::paper_fc(1.0, 16),
                lstm: lstm_default,
                overrides: Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::spec::{NetworkSpec, Scale};

    #[test]
    fn paper_configs_exist_for_all_models() {
        for m in Model::all() {
            let cfg = ModelCompressionConfig::paper(m);
            assert!(cfg.conv.target_density > 0.0);
            assert!(cfg.fc.target_density > 0.0);
        }
    }

    #[test]
    fn alexnet_fc8_override_applies() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let cfg = ModelCompressionConfig::paper(Model::AlexNet);
        let fc6 = spec.layers().iter().find(|l| l.name() == "fc6").unwrap();
        let fc8 = spec.layers().iter().find(|l| l.name() == "fc8").unwrap();
        assert_eq!(cfg.for_layer(fc6).coarse.block(), &[32, 32]);
        assert_eq!(cfg.for_layer(fc8).coarse.block(), &[16, 16]);
    }

    #[test]
    fn class_routing() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Full);
        let cfg = ModelCompressionConfig::paper(Model::AlexNet);
        let conv1 = &spec.layers()[0];
        let resolved = cfg.for_layer(conv1);
        assert!((resolved.target_density - 0.3525).abs() < 1e-9);
        assert_eq!(resolved.quant_bits, 8);
    }

    #[test]
    fn resnet_fc_stays_dense() {
        let cfg = ModelCompressionConfig::paper(Model::ResNet152);
        assert_eq!(cfg.fc.target_density, 1.0);
    }

    #[test]
    fn mlp_uses_six_bit_quantization() {
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        assert_eq!(cfg.fc.quant_bits, 6);
    }
}
