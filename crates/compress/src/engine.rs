//! Compiled sparse execution engine: block-CSR kernels over the shared
//! index format.
//!
//! [`SharedIndexLayer`] is a *storage* format — good for size accounting,
//! slow to execute (per-output gather through `Vec<bool>` indexes and
//! codebook lookups). This module compiles it into an execution-friendly
//! block-CSR layout:
//!
//! * outputs are grouped into *strips* of `strip_width` lanes (one strip
//!   per shared-index group, the hardware's `T_n = 16` PE cluster);
//! * each strip stores its surviving input positions as contiguous
//!   `[start, end)` *runs* derived from the coarse block grid (block
//!   pruning makes survivors naturally clumped);
//! * weights are stored twice per strip: as `u16` codebook indices (the
//!   compact form the WDM would hold) and as pre-decoded `f32` values in
//!   input-major order, which is what the hot loop reads.
//!
//! # Dense-vs-sparse equivalence contract
//!
//! On **finite** inputs, [`CompiledFcLayer::forward`] is bit-identical to
//! the dense reference `ops::matmul(x, self.to_dense())` (plus the same
//! bias addition). Two facts make this exact rather than approximate:
//!
//! 1. the sparse kernel accumulates surviving terms in ascending input
//!    order — the same order the dense loop adds them in; and
//! 2. the terms it skips are exactly `x[i] * 0.0 = ±0.0`, and adding
//!    `±0.0` to an accumulator that started at `+0.0` never changes its
//!    bits: an `f32` sum starting from `+0.0` cannot become `-0.0`
//!    through addition (opposite-signed zero sums and exact cancellation
//!    both round to `+0.0` under round-to-nearest).
//!
//! Non-finite inputs void the contract — `0.0 * NaN` is `NaN` in the
//! dense kernel and silently dropped by the sparse one — which is why
//! the dense reference kernel in `cs-tensor` must never zero-skip.
//!
//! # Activation gating
//!
//! Every kernel also has a *gated* twin (`forward_gated*`) that skips
//! work across the **input** dimension: a [`PrescanBitmap`] proves
//! which input blocks are entirely bit-exact `+0.0`, and the gated
//! inner loops skip whole block-CSR run segments, im2col patch rows,
//! or structured survivor groups covered by a proven-zero block. The
//! skipped terms are exactly `+0.0 * w = ±0.0` for the engine's finite
//! weights, which is bit-neutral by the same argument as fact 2 above
//! — so the gated kernels stay inside the bit-identity contract.
//! `-0.0`, NaN, and inf inputs are never skipped (see the
//! [`crate::gate`] module docs for the eligibility rule).

use cs_quant::Codebook;
use cs_sparsity::Mask;
use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor, TensorError};

use crate::format::{BankBalancedFcLayer, FcLayerFormat, SharedIndexLayer, TwoFourFcLayer};
use crate::gate::{self, GatePlan, GatePolicy, GateStats, PrescanBitmap};
use crate::CompressError;

/// One strip of `strip_width` (or fewer, at the edge) output lanes
/// sharing a synapse index, compiled for execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FcStrip {
    /// First output lane of the strip.
    pub out_start: usize,
    /// One past the last output lane.
    pub out_end: usize,
    /// Surviving input positions as `[start, end)` runs, ascending.
    pub runs: Vec<(u32, u32)>,
    /// Codebook indices, input-major: `indices[pos * width + lane]` for
    /// the `pos`-th surviving input.
    pub indices: Vec<u16>,
    /// Pre-decoded weights, same layout as `indices`.
    pub values: Vec<f32>,
    /// The strip's codebook (the WDM LUT contents).
    pub codebook: Codebook,
    /// Number of surviving input positions.
    pub survivors: usize,
}

impl FcStrip {
    fn width(&self) -> usize {
        self.out_end - self.out_start
    }

    /// Accumulates this strip's outputs into `out` (length `width()`),
    /// which must already be zeroed.
    fn accumulate(&self, input: &[f32], out: &mut [f32]) {
        let width = self.width();
        let mut pos = 0usize;
        for &(s, e) in &self.runs {
            for i in s..e {
                let xi = input[i as usize];
                let row = &self.values[pos * width..(pos + 1) * width];
                for (o, &wv) in out.iter_mut().zip(row) {
                    *o += xi * wv;
                }
                pos += 1;
            }
        }
    }

    /// Gated [`Self::accumulate`]: run segments covered by a prescan
    /// block proven all-`+0.0` advance `pos` without touching `out`.
    /// The dropped terms are exactly `+0.0 * w = ±0.0` into
    /// accumulators that can never be `-0.0`, so the output bits match
    /// the ungated kernel.
    fn accumulate_gated(&self, input: &[f32], out: &mut [f32], gate: &PrescanBitmap) {
        let width = self.width();
        let block = gate.block().max(1);
        let mut pos = 0usize;
        for &(s, e) in &self.runs {
            let (s, e) = (s as usize, e as usize);
            let mut i = s;
            while i < e {
                let g = i / block;
                let seg_end = e.min((g + 1) * block);
                if gate.occupied(g) {
                    for &xi in &input[i..seg_end] {
                        let row = &self.values[pos * width..(pos + 1) * width];
                        for (o, &wv) in out.iter_mut().zip(row) {
                            *o += xi * wv;
                        }
                        pos += 1;
                    }
                } else {
                    pos += seg_end - i;
                }
                i = seg_end;
            }
        }
    }
}

/// A fully-connected layer compiled to block-CSR strips.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFcLayer {
    /// Layer name.
    pub name: String,
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Output lanes per strip (the last strip may be narrower).
    pub strip_width: usize,
    /// The strips in output order.
    pub strips: Vec<FcStrip>,
    /// Optional per-output bias, added after accumulation exactly like
    /// the dense pipeline's element-wise add.
    pub bias: Option<Vec<f32>>,
}

impl CompiledFcLayer {
    /// Compiles dense weights `(n_in, n_out)` plus a block-aligned mask
    /// directly, quantizing with the same per-group codebook parameters
    /// as [`SharedIndexLayer::from_fc`] (so both paths produce identical
    /// codebooks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedIndexLayer::from_fc`].
    pub fn compile_fc(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        strip_width: usize,
        quant_bits: u8,
    ) -> Result<Self, CompressError> {
        let shared = SharedIndexLayer::from_fc(name, weights, mask, strip_width, quant_bits)?;
        Ok(Self::from_shared(&shared))
    }

    /// Compiles an existing shared-index layer. Infallible: the storage
    /// format already carries everything the engine needs.
    pub fn from_shared(layer: &SharedIndexLayer) -> Self {
        let mut strips = Vec::with_capacity(layer.groups.len());
        let mut out_start = 0usize;
        for g in &layer.groups {
            let width = g.weights.len();
            let out_end = out_start + width;
            let survivors = g.survivors();
            let runs = runs_from_index(&g.index);
            // Transpose the group's output-major lanes to input-major.
            let mut indices = vec![0u16; survivors * width];
            for (lane, lw) in g.weights.iter().enumerate() {
                for (pos, &idx) in lw.iter().enumerate() {
                    indices[pos * width + lane] = idx;
                }
            }
            let values: Vec<f32> = indices.iter().map(|&i| g.codebook.value(i)).collect();
            strips.push(FcStrip {
                out_start,
                out_end,
                runs,
                indices,
                values,
                codebook: g.codebook.clone(),
                survivors,
            });
            out_start = out_end;
        }
        CompiledFcLayer {
            name: layer.name.clone(),
            n_in: layer.n_in,
            n_out: layer.n_out,
            strip_width: layer.group_size,
            strips,
            bias: None,
        }
    }

    /// Attaches a per-output bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_out`.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.n_out, "bias length mismatch");
        self.bias = Some(bias);
        self
    }

    /// Total surviving synapses.
    pub fn surviving(&self) -> usize {
        self.strips.iter().map(|s| s.survivors * s.width()).sum()
    }

    /// Fraction of surviving synapses.
    pub fn density(&self) -> f64 {
        let total = self.n_in * self.n_out;
        if total == 0 {
            return 0.0;
        }
        self.surviving() as f64 / total as f64
    }

    /// Sparse forward pass: `out = x · W_sparse (+ bias)`.
    ///
    /// Bit-identical to `ops::matmul` against [`Self::to_dense`] on
    /// finite inputs (see the module docs for the argument).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with `n_in` / `n_out`.
    pub fn forward(&self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        out.fill(0.0);
        for strip in &self.strips {
            strip.accumulate(input, &mut out[strip.out_start..strip.out_end]);
        }
        if let Some(bias) = &self.bias {
            for (o, b) in out.iter_mut().zip(bias) {
                *o += *b;
            }
        }
    }

    /// Allocating convenience wrapper around [`Self::forward`].
    pub fn forward_alloc(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n_out];
        self.forward(input, &mut out);
        out
    }

    /// Parallel [`Self::forward`]: strips write disjoint output windows,
    /// so they fan out over the pool; per-strip arithmetic is unchanged
    /// and the result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(&self, input: &[f32], out: &mut [f32], pool: &cs_parallel::ThreadPool) {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        if self.strips.is_empty() {
            out.fill(0.0);
            return;
        }
        pool.parallel_chunks_mut(out, self.strip_width.max(1), |si, window| {
            window.fill(0.0);
            let strip = &self.strips[si];
            strip.accumulate(input, window);
            if let Some(bias) = &self.bias {
                for (o, b) in window.iter_mut().zip(&bias[strip.out_start..strip.out_end]) {
                    *o += *b;
                }
            }
        });
    }

    /// Gated [`Self::forward`]: prescans the input at `plan.block`
    /// elements per occupancy bit and skips run segments whose block is
    /// entirely bit-exact `+0.0`. Bit-identical to the ungated kernel
    /// (and therefore to the dense reference) — see the module docs.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated(&self, input: &[f32], out: &mut [f32], plan: &GatePlan) -> GateStats {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        let bm = PrescanBitmap::scan(input, plan.block);
        let stats = bm.stats();
        out.fill(0.0);
        if bm.all_occupied() {
            for strip in &self.strips {
                strip.accumulate(input, &mut out[strip.out_start..strip.out_end]);
            }
        } else {
            for strip in &self.strips {
                strip.accumulate_gated(input, &mut out[strip.out_start..strip.out_end], &bm);
            }
        }
        if let Some(bias) = &self.bias {
            for (o, b) in out.iter_mut().zip(bias) {
                *o += *b;
            }
        }
        stats
    }

    /// Parallel [`Self::forward_gated`]: one serial prescan, then the
    /// strips fan out exactly like [`Self::forward_pooled`]. The stats
    /// come from the bitmap alone, so they are identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated_pooled(
        &self,
        input: &[f32],
        out: &mut [f32],
        plan: &GatePlan,
        pool: &cs_parallel::ThreadPool,
    ) -> GateStats {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        let bm = PrescanBitmap::scan(input, plan.block);
        let stats = bm.stats();
        if self.strips.is_empty() {
            out.fill(0.0);
            return stats;
        }
        let gated = !bm.all_occupied();
        pool.parallel_chunks_mut(out, self.strip_width.max(1), |si, window| {
            window.fill(0.0);
            let strip = &self.strips[si];
            if gated {
                strip.accumulate_gated(input, window, &bm);
            } else {
                strip.accumulate(input, window);
            }
            if let Some(bias) = &self.bias {
                for (o, b) in window.iter_mut().zip(&bias[strip.out_start..strip.out_end]) {
                    *o += *b;
                }
            }
        });
        stats
    }

    /// Reconstructs the dense `(n_in, n_out)` weight matrix the engine
    /// executes: decoded codebook values at surviving positions, zeros
    /// elsewhere. This is the dense-reference operand of the equivalence
    /// contract.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = vec![0.0f32; self.n_in * self.n_out];
        for strip in &self.strips {
            let width = strip.width();
            let mut pos = 0usize;
            for &(s, e) in &strip.runs {
                for i in s..e {
                    for lane in 0..width {
                        dense[i as usize * self.n_out + strip.out_start + lane] =
                            strip.values[pos * width + lane];
                    }
                    pos += 1;
                }
            }
        }
        Tensor::from_vec(Shape::d2(self.n_in, self.n_out), dense)
            .unwrap_or_else(|_| Tensor::zeros(Shape::d2(self.n_in, self.n_out)))
    }
}

/// A convolutional layer compiled for sparse execution: the standard
/// im2col lowering with the inner matmul replaced by the block-CSR FC
/// kernel over `(n_fin · kx · ky, n_fout)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledConvLayer {
    inner: CompiledFcLayer,
    geom: Conv2dGeometry,
    n_fin: usize,
    n_fout: usize,
    bias: Option<Vec<f32>>,
}

impl CompiledConvLayer {
    /// Compiles conv weights `(n_fin, n_fout, kx, ky)` plus a mask that
    /// is coarse over `strip_width` output maps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedIndexLayer::from_conv`], plus a
    /// geometry check against the weight kernel.
    pub fn compile_conv(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        strip_width: usize,
        quant_bits: u8,
        geom: Conv2dGeometry,
    ) -> Result<Self, CompressError> {
        if weights.shape().rank() != 4 {
            return Err(CompressError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: weights.shape().rank(),
                op: "compile conv",
            }));
        }
        let (kx, ky) = (weights.shape().dim(2), weights.shape().dim(3));
        if kx != geom.kx || ky != geom.ky {
            return Err(CompressError::Tensor(TensorError::InvalidGeometry(
                format!(
                    "weight kernel ({kx}x{ky}) disagrees with geometry ({}x{})",
                    geom.kx, geom.ky
                ),
            )));
        }
        let shared = SharedIndexLayer::from_conv(name, weights, mask, strip_width, quant_bits)?;
        Ok(Self::from_shared(&shared, weights.shape().dim(0), geom))
    }

    /// Wraps a shared-index conv layer (lowered over `(f·kx+x)·ky+y`
    /// input positions, as [`SharedIndexLayer::from_conv`] produces).
    pub fn from_shared(layer: &SharedIndexLayer, n_fin: usize, geom: Conv2dGeometry) -> Self {
        let inner = CompiledFcLayer::from_shared(layer);
        CompiledConvLayer {
            n_fout: inner.n_out,
            inner,
            geom,
            n_fin,
            bias: None,
        }
    }

    /// Attaches a per-output-map bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_fout`.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.n_fout, "bias length mismatch");
        self.bias = Some(bias);
        self
    }

    /// The inner block-CSR FC layer over lowered window positions.
    pub fn inner(&self) -> &CompiledFcLayer {
        &self.inner
    }

    /// Sparse conv forward over a `(n_fin, h, w)` input, producing
    /// `(n_fout, oh, ow)`. Bit-identical to `ops::conv2d` against the
    /// densified lowered weights on finite inputs.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors when the input is inconsistent.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let cols = ops::im2col(input, &self.geom)?;
        self.finish_forward(input, &cols, None, None)
    }

    /// Parallel [`Self::forward`], bit-identical to the serial version.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(
        &self,
        input: &Tensor,
        pool: &cs_parallel::ThreadPool,
    ) -> Result<Tensor, TensorError> {
        let cols = ops::im2col_pooled(input, &self.geom, pool)?;
        self.finish_forward(input, &cols, Some(pool), None)
    }

    /// Gated [`Self::forward`]: every im2col patch row is prescanned
    /// (with early exit on the first non-`+0.0` element) and rows
    /// proven entirely zero skip the inner FC kernel, leaving the
    /// pre-zeroed product row — exactly the bits the ungated kernel
    /// would have produced, since its accumulators would only ever add
    /// `+0.0 * w` terms. The gate granularity is the conv patch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated(&self, input: &Tensor) -> Result<(Tensor, GateStats), TensorError> {
        let cols = ops::im2col(input, &self.geom)?;
        let (occ, stats) = self.scan_patches(&cols);
        let out = self.finish_forward(input, &cols, None, Some(&occ))?;
        Ok((out, stats))
    }

    /// Parallel [`Self::forward_gated`]: the patch prescan runs
    /// serially (it is one early-exit sweep over the im2col buffer),
    /// then the product rows fan out like [`Self::forward_pooled`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated_pooled(
        &self,
        input: &Tensor,
        pool: &cs_parallel::ThreadPool,
    ) -> Result<(Tensor, GateStats), TensorError> {
        let cols = ops::im2col_pooled(input, &self.geom, pool)?;
        let (occ, stats) = self.scan_patches(&cols);
        let out = self.finish_forward(input, &cols, Some(pool), Some(&occ))?;
        Ok((out, stats))
    }

    /// Per-patch occupancy over the lowered input: row `r` is occupied
    /// iff any element of patch `r` is not bit-exact `+0.0`.
    fn scan_patches(&self, cols: &Tensor) -> (Vec<bool>, GateStats) {
        let n_in = self.inner.n_in;
        let cv = cols.as_slice();
        let positions = cv.len().checked_div(n_in).unwrap_or(0);
        let mut occ = Vec::with_capacity(positions);
        let mut zero_blocks = 0usize;
        for r in 0..positions {
            let occupied = cv[r * n_in..(r + 1) * n_in]
                .iter()
                .any(|v| v.to_bits() != 0);
            if !occupied {
                zero_blocks += 1;
            }
            occ.push(occupied);
        }
        (
            occ,
            GateStats {
                blocks: positions,
                zero_blocks,
            },
        )
    }

    fn finish_forward(
        &self,
        input: &Tensor,
        cols: &Tensor,
        pool: Option<&cs_parallel::ThreadPool>,
        occupancy: Option<&[bool]>,
    ) -> Result<Tensor, TensorError> {
        if input.shape().dim(0) != self.n_fin {
            return Err(TensorError::ShapeMismatch {
                left: input.shape().clone(),
                right: Shape::d2(self.inner.n_in, self.n_fout),
                op: "sparse conv2d",
            });
        }
        let (h, w) = (input.shape().dim(1), input.shape().dim(2));
        let (oh, ow) = self.geom.output_size(h, w)?;
        let positions = oh * ow;
        let n_fout = self.n_fout;
        let n_in = self.inner.n_in;
        let cv = cols.as_slice();
        let mut prod = vec![0.0f32; positions * n_fout];
        // A patch row gated off stays all-zero from the `prod`
        // initialization above — bit-identical to running the inner
        // kernel over an all-`+0.0` patch.
        let run_row = |r: usize| occupancy.is_none_or(|occ| occ[r]);
        match pool {
            Some(p) => {
                let rows_per = p.default_chunk(positions);
                p.parallel_chunks_mut(&mut prod, rows_per * n_fout, |ci, window| {
                    let row0 = ci * rows_per;
                    for (ri, orow) in window.chunks_mut(n_fout).enumerate() {
                        let r = row0 + ri;
                        if run_row(r) {
                            self.inner.forward(&cv[r * n_in..(r + 1) * n_in], orow);
                        }
                    }
                });
            }
            None => {
                for (r, orow) in prod.chunks_mut(n_fout).enumerate() {
                    if run_row(r) {
                        self.inner.forward(&cv[r * n_in..(r + 1) * n_in], orow);
                    }
                }
            }
        }
        // Transpose (oh*ow, n_fout) -> (n_fout, oh, ow), adding bias —
        // the exact element order of the dense conv2d epilogue.
        let bias = self.bias.as_deref();
        Ok(Tensor::from_fn(Shape::d3(n_fout, oh, ow), |i| {
            let fo = i / (oh * ow);
            let pos = i % (oh * ow);
            let b = bias.map_or(0.0, |bs| bs[fo]);
            prod[pos * n_fout + fo] + b
        }))
    }

    /// The densified lowered weight matrix `(n_fin · kx · ky, n_fout)`,
    /// i.e. the `wmat` operand the dense `conv2d` would multiply by.
    pub fn to_dense_lowered(&self) -> Tensor {
        self.inner.to_dense()
    }

    /// The densified 4-D weight tensor `(n_fin, n_fout, kx, ky)`.
    pub fn to_dense(&self) -> Tensor {
        let lowered = self.inner.to_dense();
        let lv = lowered.as_slice();
        let (kx, ky) = (self.geom.kx, self.geom.ky);
        let n_fout = self.n_fout;
        Tensor::from_fn(Shape::d4(self.n_fin, n_fout, kx, ky), |i| {
            let y = i % ky;
            let x = (i / ky) % kx;
            let fo = (i / (kx * ky)) % n_fout;
            let f = i / (n_fout * kx * ky);
            let p = (f * kx + x) * ky + y;
            lv[p * n_fout + fo]
        })
    }
}

/// Shared layout of the two structured kernels, **group-major**: for
/// every full bank of inputs, one planar row of in-bank byte offsets
/// and one of values per survivor slot, both indexed `[g][j][o]`. Fixed
/// fan-in makes the inner loops branch-free (no run decoding, no
/// per-lane survivor counts), and the group-major order turns the hot
/// loop into sequential streams over `offsets`/`values`/`out` with the
/// bank's input window held in registers.
///
/// Per lane the accumulation order is banks ascending, offsets
/// ascending within a bank — exactly the ascending dense k-order, so
/// outputs are bit-identical to a dense matmul over [`Self::to_dense`]
/// on finite inputs. On x86-64 with AVX2 the per-bank select runs
/// through `vpermvar8x32` lane shuffles (plain `mul`+`add`, never FMA,
/// and the same per-lane term order), so the vector path produces the
/// same bits as the scalar fallback.
#[derive(Debug, Clone, PartialEq)]
struct StructuredLanes {
    n_in: usize,
    n_out: usize,
    /// Bank (group) width along the input dimension; 4 for 2:4.
    bank: usize,
    /// Survivors per full bank per lane; 2 for 2:4.
    k: usize,
    /// Full banks (`n_in / bank`).
    full_groups: usize,
    /// In-bank survivor offsets, planar `[g][j][o]`, `full_groups * k *
    /// n_out` entries. `offsets[(g*k + j)*n_out + o]` is lane `o`'s
    /// `j`-th survivor within bank `g`, offsets ascending in `j`.
    offsets: Vec<u8>,
    /// Survivor values, same `[g][j][o]` layout.
    values: Vec<f32>,
    /// Inputs in the ragged tail bank (`n_in % bank`).
    tail_len: usize,
    /// Survivors in the tail bank (`min(k, tail_len)`).
    tail_spg: usize,
    /// Tail offsets, planar `[j][o]`, `tail_spg * n_out` entries.
    tail_offsets: Vec<u8>,
    /// Tail values, same layout.
    tail_values: Vec<f32>,
    /// 2:4 only (`bank == 4`, `k == 2`): both survivor offsets of a
    /// group re-packed into one byte per lane (`off0 | off1 << 2`, the
    /// storage format's 2-bit metadata), planar `[g][o]`. Halves the
    /// hot loop's index traffic: one byte load feeds both shuffles.
    packed24: Option<Vec<u8>>,
    bias: Option<Vec<f32>>,
}

impl StructuredLanes {
    fn from_lanes(
        n_in: usize,
        n_out: usize,
        bank: usize,
        k: usize,
        lane_positions: impl Fn(usize) -> Vec<u32>,
        lane_values: impl Fn(usize) -> Vec<f32>,
    ) -> Self {
        let full_groups = n_in / bank;
        let tail_len = n_in % bank;
        let tail_spg = tail_len.min(k);
        let mut offsets = vec![0u8; full_groups * k * n_out];
        let mut values = vec![0.0f32; full_groups * k * n_out];
        let mut tail_offsets = vec![0u8; tail_spg * n_out];
        let mut tail_values = vec![0.0f32; tail_spg * n_out];
        for o in 0..n_out {
            // Ascending lane positions land group-major: each full bank
            // contributes exactly `k` survivors, then the tail.
            let pos = lane_positions(o);
            let vals = lane_values(o);
            for g in 0..full_groups {
                for j in 0..k {
                    let s = g * k + j;
                    let e = s * n_out + o;
                    offsets[e] = (pos[s] as usize - g * bank) as u8;
                    values[e] = vals[s];
                }
            }
            for j in 0..tail_spg {
                let s = full_groups * k + j;
                let e = j * n_out + o;
                tail_offsets[e] = (pos[s] as usize - full_groups * bank) as u8;
                tail_values[e] = vals[s];
            }
        }
        let packed24 = (bank == 4 && k == 2 && full_groups > 0).then(|| {
            (0..full_groups * n_out)
                .map(|e| {
                    let (g, o) = (e / n_out, e % n_out);
                    offsets[(g * 2) * n_out + o] | (offsets[(g * 2 + 1) * n_out + o] << 2)
                })
                .collect()
        });
        StructuredLanes {
            n_in,
            n_out,
            bank,
            k,
            full_groups,
            offsets,
            values,
            tail_len,
            tail_spg,
            tail_offsets,
            tail_values,
            packed24,
            bias: None,
        }
    }

    /// Survivors per lane.
    fn stride(&self) -> usize {
        self.full_groups * self.k + self.tail_spg
    }

    /// Accumulates one planar survivor row (`k_row` of bank `g`, or the
    /// tail row) into the output window: `out[oi] += window[off] * v`.
    #[inline]
    fn accumulate_row(window: &[f32], offs: &[u8], vals: &[f32], out: &mut [f32]) {
        for ((slot, off), v) in out.iter_mut().zip(offs).zip(vals) {
            *slot += window[*off as usize] * *v;
        }
    }

    /// Portable forward over `out_start..out_start + out.len()`. With a
    /// gate, survivor groups whose input bank the prescan proved
    /// all-`+0.0` are skipped — bit-neutral for the accumulators (the
    /// dropped terms are `+0.0 * w = ±0.0`), so gated and ungated
    /// outputs are identical.
    fn forward_range_scalar(
        &self,
        input: &[f32],
        out: &mut [f32],
        out_start: usize,
        gate: Option<&PrescanBitmap>,
    ) {
        let len = out.len();
        out.fill(0.0);
        for g in 0..self.full_groups {
            if let Some(bm) = gate {
                if !bm.occupied(g) {
                    continue;
                }
            }
            let window = &input[g * self.bank..(g + 1) * self.bank];
            for j in 0..self.k {
                let row = (g * self.k + j) * self.n_out + out_start;
                Self::accumulate_row(
                    window,
                    &self.offsets[row..row + len],
                    &self.values[row..row + len],
                    out,
                );
            }
        }
        let tail_base = self.full_groups * self.bank;
        if gate.is_none_or(|bm| bm.occupied(self.full_groups)) {
            for j in 0..self.tail_spg {
                let row = j * self.n_out + out_start;
                Self::accumulate_row(
                    &input[tail_base..],
                    &self.tail_offsets[row..row + len],
                    &self.tail_values[row..row + len],
                    out,
                );
            }
        }
    }

    /// AVX2 forward: eight output lanes ride one register accumulator
    /// across *every* bank, selecting survivor inputs with `vpermps`
    /// shuffles of the bank's register-held window. Same per-lane term
    /// order (banks ascending, survivor slots ascending, then the tail)
    /// and the same separate `mul`/`add` arithmetic as the scalar path,
    /// so the output bits are identical.
    ///
    /// Safety: caller must have verified AVX2 support and
    /// `BANK == self.bank` with `BANK` one of 4, 8, or 16 (so window
    /// loads of full banks stay in bounds and offsets fit the shuffle).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn forward_range_avx2<const BANK: usize>(
        &self,
        input: &[f32],
        out: &mut [f32],
        out_start: usize,
        gate: Option<&PrescanBitmap>,
    ) {
        let chunks = out.len() / 8;
        // Strips of four 8-lane chunks: 32 accumulator lanes stay in
        // registers across every bank, and each survivor row is read as
        // 128 consecutive bytes (two cache lines) per visit.
        let strips = chunks / 4;
        for s in 0..strips {
            self.avx2_strip::<BANK, 4>(input, out, out_start, s * 4, gate);
        }
        for c in strips * 4..chunks {
            self.avx2_strip::<BANK, 1>(input, out, out_start, c, gate);
        }
        // Remainder lanes (< 8) run the scalar kernel on their window:
        // identical per-lane term order, so the mix stays bit-identical.
        if chunks * 8 < out.len() {
            self.forward_range_scalar(input, &mut out[chunks * 8..], out_start + chunks * 8, gate);
        }
    }

    /// One `U`-chunk strip of the AVX2 forward: chunks
    /// `c0..c0 + U` of the window accumulate across all banks in `U`
    /// register accumulators.
    ///
    /// Safety: same contract as [`Self::forward_range_avx2`], plus
    /// `(c0 + U) * 8 <= out.len()`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn avx2_strip<const BANK: usize, const U: usize>(
        &self,
        input: &[f32],
        out: &mut [f32],
        out_start: usize,
        c0: usize,
        gate: Option<&PrescanBitmap>,
    ) {
        use std::arch::x86_64::*;
        let seven = _mm256_set1_epi32(7);
        let col = out_start + c0 * 8;
        // `vpermps` indexes mod 8; a 16-wide bank blends in the upper
        // half by the offset's bit 3.
        let select = |lo: __m256, hi: __m256, idx: __m256i| {
            let mut sel = _mm256_permutevar8x32_ps(lo, idx);
            if BANK == 16 {
                let sel_hi = _mm256_permutevar8x32_ps(hi, idx);
                let high = _mm256_cmpgt_epi32(idx, seven);
                sel = _mm256_blendv_ps(sel, sel_hi, _mm256_castsi256_ps(high));
            }
            sel
        };
        let mut acc = [_mm256_setzero_ps(); U];
        if let (4, Some(packed)) = (BANK, &self.packed24) {
            // 2:4 fast path: one packed byte per (group, lane) feeds
            // both shuffles — `off0` in bits 0-1, `off1` in bits 2-3 —
            // and both survivor terms add in slot order, exactly like
            // the generic loop below.
            let three = _mm256_set1_epi32(3);
            for g in 0..self.full_groups {
                if let Some(bm) = gate {
                    if !bm.occupied(g) {
                        continue;
                    }
                }
                let lo = _mm256_castps128_ps256(_mm_loadu_ps(input.as_ptr().add(g * 4)));
                let pbase = g * self.n_out + col;
                let row0 = (g * 2) * self.n_out + col;
                for (u, a) in acc.iter_mut().enumerate() {
                    let b = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        packed.as_ptr().add(pbase + u * 8) as *const __m128i,
                    ));
                    let idx0 = _mm256_and_si256(b, three);
                    let idx1 = _mm256_and_si256(_mm256_srli_epi32(b, 2), three);
                    let v0 = _mm256_loadu_ps(self.values.as_ptr().add(row0 + u * 8));
                    let v1 = _mm256_loadu_ps(self.values.as_ptr().add(row0 + self.n_out + u * 8));
                    *a = _mm256_add_ps(*a, _mm256_mul_ps(_mm256_permutevar8x32_ps(lo, idx0), v0));
                    *a = _mm256_add_ps(*a, _mm256_mul_ps(_mm256_permutevar8x32_ps(lo, idx1), v1));
                }
            }
        } else {
            for g in 0..self.full_groups {
                if let Some(bm) = gate {
                    if !bm.occupied(g) {
                        continue;
                    }
                }
                // Full banks load straight from the input — a 4-float
                // load fills the shuffle's low lanes, wider banks fill
                // one or both 8-float halves exactly.
                let wp = input.as_ptr().add(g * BANK);
                let lo = if BANK == 4 {
                    _mm256_castps128_ps256(_mm_loadu_ps(wp))
                } else {
                    _mm256_loadu_ps(wp)
                };
                let hi = if BANK == 16 {
                    _mm256_loadu_ps(wp.add(8))
                } else {
                    lo
                };
                for j in 0..self.k {
                    let row = (g * self.k + j) * self.n_out + col;
                    for (u, a) in acc.iter_mut().enumerate() {
                        let idx = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                            self.offsets.as_ptr().add(row + u * 8) as *const __m128i,
                        ));
                        let v = _mm256_loadu_ps(self.values.as_ptr().add(row + u * 8));
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(select(lo, hi, idx), v));
                    }
                }
            }
        }
        if self.tail_spg > 0 && gate.is_none_or(|bm| bm.occupied(self.full_groups)) {
            // Tail offsets are < tail_len < BANK; zero padding past the
            // tail is never selected.
            let mut tail_pad = [0.0f32; 16];
            tail_pad[..self.tail_len].copy_from_slice(&input[self.full_groups * BANK..]);
            let lo = _mm256_loadu_ps(tail_pad.as_ptr());
            let hi = _mm256_loadu_ps(tail_pad.as_ptr().add(8));
            for j in 0..self.tail_spg {
                let row = j * self.n_out + col;
                for (u, a) in acc.iter_mut().enumerate() {
                    let idx = _mm256_cvtepu8_epi32(_mm_loadl_epi64(
                        self.tail_offsets.as_ptr().add(row + u * 8) as *const __m128i,
                    ));
                    let v = _mm256_loadu_ps(self.tail_values.as_ptr().add(row + u * 8));
                    *a = _mm256_add_ps(*a, _mm256_mul_ps(select(lo, hi, idx), v));
                }
            }
        }
        for (u, a) in acc.iter().enumerate() {
            _mm256_storeu_ps(out.as_mut_ptr().add((c0 + u) * 8), *a);
        }
    }

    fn forward_range(
        &self,
        input: &[f32],
        out: &mut [f32],
        out_start: usize,
        gate: Option<&PrescanBitmap>,
    ) {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // Safety: AVX2 verified at runtime; the const bank
                // matches self.bank and is a supported shuffle width.
                match self.bank {
                    4 => {
                        unsafe { self.forward_range_avx2::<4>(input, out, out_start, gate) };
                        self.add_bias(out, out_start);
                        return;
                    }
                    8 => {
                        unsafe { self.forward_range_avx2::<8>(input, out, out_start, gate) };
                        self.add_bias(out, out_start);
                        return;
                    }
                    16 => {
                        unsafe { self.forward_range_avx2::<16>(input, out, out_start, gate) };
                        self.add_bias(out, out_start);
                        return;
                    }
                    _ => {}
                }
            }
        }
        self.forward_range_scalar(input, out, out_start, gate);
        self.add_bias(out, out_start);
    }

    fn add_bias(&self, out: &mut [f32], out_start: usize) {
        if let Some(bias) = &self.bias {
            let window = &bias[out_start..out_start + out.len()];
            for (o, b) in out.iter_mut().zip(window) {
                *o += *b;
            }
        }
    }

    fn forward(&self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        self.forward_range(input, out, 0, None);
    }

    /// Parallel forward: lanes are independent pure functions of the
    /// input, so chunking the output is bit-identical at any thread
    /// count.
    fn forward_pooled(&self, input: &[f32], out: &mut [f32], pool: &cs_parallel::ThreadPool) {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        let chunk = pool.default_chunk(self.n_out).max(1);
        pool.parallel_chunks_mut(out, chunk, |ci, window| {
            self.forward_range(input, window, ci * chunk, None);
        });
    }

    /// Gated forward: one prescan at the pattern's bank width, then
    /// survivor groups of proven-zero banks are skipped (the tail bank
    /// is block `full_groups`). Falls through to the ungated loops when
    /// no bank is skippable.
    fn forward_gated(&self, input: &[f32], out: &mut [f32]) -> GateStats {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        let bm = PrescanBitmap::scan(input, self.bank.max(1));
        let stats = bm.stats();
        let gate = (!bm.all_occupied()).then_some(&bm);
        self.forward_range(input, out, 0, gate);
        stats
    }

    /// Parallel [`Self::forward_gated`]: serial prescan, pooled lanes;
    /// bit-identical at any thread count and the stats come from the
    /// bitmap alone.
    fn forward_gated_pooled(
        &self,
        input: &[f32],
        out: &mut [f32],
        pool: &cs_parallel::ThreadPool,
    ) -> GateStats {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        let bm = PrescanBitmap::scan(input, self.bank.max(1));
        let stats = bm.stats();
        let gate = (!bm.all_occupied()).then_some(&bm);
        let chunk = pool.default_chunk(self.n_out).max(1);
        pool.parallel_chunks_mut(out, chunk, |ci, window| {
            self.forward_range(input, window, ci * chunk, gate);
        });
        stats
    }

    fn to_dense(&self) -> Tensor {
        let mut dense = vec![0.0f32; self.n_in * self.n_out];
        for o in 0..self.n_out {
            for g in 0..self.full_groups {
                for j in 0..self.k {
                    let e = (g * self.k + j) * self.n_out + o;
                    let i = g * self.bank + self.offsets[e] as usize;
                    dense[i * self.n_out + o] = self.values[e];
                }
            }
            for j in 0..self.tail_spg {
                let e = j * self.n_out + o;
                let i = self.full_groups * self.bank + self.tail_offsets[e] as usize;
                dense[i * self.n_out + o] = self.tail_values[e];
            }
        }
        Tensor::from_vec(Shape::d2(self.n_in, self.n_out), dense)
            .unwrap_or_else(|_| Tensor::zeros(Shape::d2(self.n_in, self.n_out)))
    }
}

/// The 2:4 layer compiled for execution: every lane reads exactly
/// `n_in / 2` (position, value) pairs, unpacked once from the 2-bit
/// metadata at compile time. The hot loop is a flat gather over that
/// fixed fan-in — no branches, no run decoding, no per-lane counts.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTwoFourFc {
    /// Layer name.
    pub name: String,
    lanes: StructuredLanes,
}

impl CompiledTwoFourFc {
    /// Compiles the packed storage format.
    pub fn from_format(layer: &TwoFourFcLayer) -> Self {
        CompiledTwoFourFc {
            name: layer.name.clone(),
            lanes: StructuredLanes::from_lanes(
                layer.n_in,
                layer.n_out,
                4,
                2,
                |o| layer.lane_positions(o),
                |o| layer.lane_values(o).to_vec(),
            ),
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.lanes.n_in
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.lanes.n_out
    }

    /// Exact pattern density.
    pub fn density(&self) -> f64 {
        if self.lanes.n_in == 0 {
            return 0.0;
        }
        self.lanes.stride() as f64 / self.lanes.n_in as f64
    }

    /// Attaches a per-output bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_out`.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.lanes.n_out, "bias length mismatch");
        self.lanes.bias = Some(bias);
        self
    }

    /// Branch-free sparse forward, bit-identical to `ops::matmul`
    /// against [`Self::to_dense`] on finite inputs.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with `n_in` / `n_out`.
    pub fn forward(&self, input: &[f32], out: &mut [f32]) {
        self.lanes.forward(input, out);
    }

    /// Allocating convenience wrapper around [`Self::forward`].
    pub fn forward_alloc(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.lanes.n_out];
        self.forward(input, &mut out);
        out
    }

    /// Parallel [`Self::forward`], bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(&self, input: &[f32], out: &mut [f32], pool: &cs_parallel::ThreadPool) {
        self.lanes.forward_pooled(input, out, pool);
    }

    /// Gated [`Self::forward`]: prescans the input at the pattern bank
    /// width (4) and skips survivor groups whose bank is all `+0.0`.
    /// Bit-identical to the ungated path on any input.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated(&self, input: &[f32], out: &mut [f32]) -> GateStats {
        self.lanes.forward_gated(input, out)
    }

    /// Parallel [`Self::forward_gated`], bit-identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated_pooled(
        &self,
        input: &[f32],
        out: &mut [f32],
        pool: &cs_parallel::ThreadPool,
    ) -> GateStats {
        self.lanes.forward_gated_pooled(input, out, pool)
    }

    /// The dense `(n_in, n_out)` twin of the equivalence contract.
    pub fn to_dense(&self) -> Tensor {
        self.lanes.to_dense()
    }
}

/// The bank-balanced layer compiled for execution: every lane reads the
/// same fixed number of (position, value) pairs per bank, so the inner
/// loop is a flat branch-free gather exactly like the 2:4 kernel, with
/// the fan-in determined by `(bank, k)` instead of `(4, 2)`. Banks of
/// 4, 8, or 16 take the AVX2 shuffle path; other widths fall back to
/// the portable scalar kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledBankBalancedFc {
    /// Layer name.
    pub name: String,
    /// Bank width.
    pub bank: usize,
    /// Survivors per bank.
    pub k: usize,
    lanes: StructuredLanes,
}

impl CompiledBankBalancedFc {
    /// Compiles the offset-based storage format.
    pub fn from_format(layer: &BankBalancedFcLayer) -> Self {
        CompiledBankBalancedFc {
            name: layer.name.clone(),
            bank: layer.bank,
            k: layer.k,
            lanes: StructuredLanes::from_lanes(
                layer.n_in,
                layer.n_out,
                layer.bank,
                layer.k,
                |o| layer.lane_positions(o),
                |o| layer.lane_values(o).to_vec(),
            ),
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.lanes.n_in
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.lanes.n_out
    }

    /// Exact pattern density.
    pub fn density(&self) -> f64 {
        if self.lanes.n_in == 0 {
            return 0.0;
        }
        self.lanes.stride() as f64 / self.lanes.n_in as f64
    }

    /// Attaches a per-output bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_out`.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.lanes.n_out, "bias length mismatch");
        self.lanes.bias = Some(bias);
        self
    }

    /// Branch-free sparse forward, bit-identical to `ops::matmul`
    /// against [`Self::to_dense`] on finite inputs.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with `n_in` / `n_out`.
    pub fn forward(&self, input: &[f32], out: &mut [f32]) {
        self.lanes.forward(input, out);
    }

    /// Allocating convenience wrapper around [`Self::forward`].
    pub fn forward_alloc(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.lanes.n_out];
        self.forward(input, &mut out);
        out
    }

    /// Parallel [`Self::forward`], bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(&self, input: &[f32], out: &mut [f32], pool: &cs_parallel::ThreadPool) {
        self.lanes.forward_pooled(input, out, pool);
    }

    /// Gated [`Self::forward`]: prescans the input at the pattern bank
    /// width and skips survivor groups whose bank is all `+0.0`.
    /// Bit-identical to the ungated path on any input.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated(&self, input: &[f32], out: &mut [f32]) -> GateStats {
        self.lanes.forward_gated(input, out)
    }

    /// Parallel [`Self::forward_gated`], bit-identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated_pooled(
        &self,
        input: &[f32],
        out: &mut [f32],
        pool: &cs_parallel::ThreadPool,
    ) -> GateStats {
        self.lanes.forward_gated_pooled(input, out, pool)
    }

    /// The dense `(n_in, n_out)` twin of the equivalence contract.
    pub fn to_dense(&self) -> Tensor {
        self.lanes.to_dense()
    }
}

/// Any compiled FC kernel: block-CSR for coarse layers, or one of the
/// structured fixed-fan-in kernels. This is the dispatch point the
/// serving lanes and the conformance harness execute through; every
/// variant honors the same dense-equivalence contract.
#[derive(Debug, Clone, PartialEq)]
pub enum FcKernel {
    /// Block-CSR strips over a shared index ([`CompiledFcLayer`]).
    BlockCsr(CompiledFcLayer),
    /// 2:4 semi-structured kernel.
    TwoFour(CompiledTwoFourFc),
    /// Bank-balanced kernel.
    BankBalanced(CompiledBankBalancedFc),
}

impl FcKernel {
    /// Compiles any storage format to its specialized kernel.
    pub fn compile(format: &FcLayerFormat) -> Self {
        match format {
            FcLayerFormat::Shared(l) => FcKernel::BlockCsr(CompiledFcLayer::from_shared(l)),
            FcLayerFormat::TwoFour(l) => FcKernel::TwoFour(CompiledTwoFourFc::from_format(l)),
            FcLayerFormat::BankBalanced(l) => {
                FcKernel::BankBalanced(CompiledBankBalancedFc::from_format(l))
            }
        }
    }

    /// Layer name.
    pub fn name(&self) -> &str {
        match self {
            FcKernel::BlockCsr(l) => &l.name,
            FcKernel::TwoFour(l) => &l.name,
            FcKernel::BankBalanced(l) => &l.name,
        }
    }

    /// The telemetry label of the kernel specialization.
    pub fn kind(&self) -> &'static str {
        match self {
            FcKernel::BlockCsr(_) => "sparse",
            FcKernel::TwoFour(_) => "two_four",
            FcKernel::BankBalanced(_) => "bank_balanced",
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        match self {
            FcKernel::BlockCsr(l) => l.n_in,
            FcKernel::TwoFour(l) => l.n_in(),
            FcKernel::BankBalanced(l) => l.n_in(),
        }
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        match self {
            FcKernel::BlockCsr(l) => l.n_out,
            FcKernel::TwoFour(l) => l.n_out(),
            FcKernel::BankBalanced(l) => l.n_out(),
        }
    }

    /// Fraction of surviving synapses.
    pub fn density(&self) -> f64 {
        match self {
            FcKernel::BlockCsr(l) => l.density(),
            FcKernel::TwoFour(l) => l.density(),
            FcKernel::BankBalanced(l) => l.density(),
        }
    }

    /// Attaches a per-output bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_out`.
    #[must_use]
    pub fn with_bias(self, bias: Vec<f32>) -> Self {
        match self {
            FcKernel::BlockCsr(l) => FcKernel::BlockCsr(l.with_bias(bias)),
            FcKernel::TwoFour(l) => FcKernel::TwoFour(l.with_bias(bias)),
            FcKernel::BankBalanced(l) => FcKernel::BankBalanced(l.with_bias(bias)),
        }
    }

    /// Sparse forward through the specialized kernel.
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with `n_in` / `n_out`.
    pub fn forward(&self, input: &[f32], out: &mut [f32]) {
        match self {
            FcKernel::BlockCsr(l) => l.forward(input, out),
            FcKernel::TwoFour(l) => l.forward(input, out),
            FcKernel::BankBalanced(l) => l.forward(input, out),
        }
    }

    /// Allocating convenience wrapper around [`Self::forward`].
    pub fn forward_alloc(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n_out()];
        self.forward(input, &mut out);
        out
    }

    /// Parallel [`Self::forward`], bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(&self, input: &[f32], out: &mut [f32], pool: &cs_parallel::ThreadPool) {
        match self {
            FcKernel::BlockCsr(l) => l.forward_pooled(input, out, pool),
            FcKernel::TwoFour(l) => l.forward_pooled(input, out, pool),
            FcKernel::BankBalanced(l) => l.forward_pooled(input, out, pool),
        }
    }

    /// Runs the benefit model for this kernel's geometry: `Some(plan)`
    /// when activation gating is expected to pay for its prescan,
    /// `None` when the layer should stay on the ungated path.
    ///
    /// Structured kernels gate at their pattern bank width; block-CSR
    /// picks a block size from the candidate ladder (see
    /// [`crate::gate`]).
    pub fn plan_gate(&self, policy: GatePolicy) -> Option<GatePlan> {
        match self {
            FcKernel::BlockCsr(l) => gate::plan_fc(policy, l.n_in, l.n_out, l.density()),
            FcKernel::TwoFour(l) => gate::plan_structured(policy, l.n_in(), l.n_out(), 4, 2),
            FcKernel::BankBalanced(l) => {
                gate::plan_structured(policy, l.n_in(), l.n_out(), l.bank, l.k)
            }
        }
    }

    /// Gated [`Self::forward`]: prescan-and-skip over input blocks,
    /// bit-identical to the ungated path on any input. Structured
    /// kernels always gate at the pattern bank width and ignore
    /// `plan.block`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated(&self, input: &[f32], out: &mut [f32], plan: &GatePlan) -> GateStats {
        match self {
            FcKernel::BlockCsr(l) => l.forward_gated(input, out, plan),
            FcKernel::TwoFour(l) => l.forward_gated(input, out),
            FcKernel::BankBalanced(l) => l.forward_gated(input, out),
        }
    }

    /// Parallel [`Self::forward_gated`], bit-identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_gated_pooled(
        &self,
        input: &[f32],
        out: &mut [f32],
        plan: &GatePlan,
        pool: &cs_parallel::ThreadPool,
    ) -> GateStats {
        match self {
            FcKernel::BlockCsr(l) => l.forward_gated_pooled(input, out, plan, pool),
            FcKernel::TwoFour(l) => l.forward_gated_pooled(input, out, pool),
            FcKernel::BankBalanced(l) => l.forward_gated_pooled(input, out, pool),
        }
    }

    /// The dense `(n_in, n_out)` twin of the equivalence contract.
    pub fn to_dense(&self) -> Tensor {
        match self {
            FcKernel::BlockCsr(l) => l.to_dense(),
            FcKernel::TwoFour(l) => l.to_dense(),
            FcKernel::BankBalanced(l) => l.to_dense(),
        }
    }
}

/// Collapses a boolean survival index into ascending `[start, end)` runs.
fn runs_from_index(index: &[bool]) -> Vec<(u32, u32)> {
    let mut runs = Vec::new();
    let mut start: Option<u32> = None;
    for (i, b) in index.iter().enumerate() {
        match (b, start) {
            (true, None) => start = Some(i as u32),
            (false, Some(s)) => {
                runs.push((s, i as u32));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push((s, index.len() as u32));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};

    fn fc_layer(n_in: usize, n_out: usize, group: usize, density: f64) -> (Tensor, Mask) {
        let w = local_convergence(
            Shape::d2(n_in, n_out),
            &ConvergenceProfile::with_target_density(density).with_block(group),
            3,
        );
        let cfg = CoarseConfig::fc(group, group, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        (w, mask)
    }

    fn bits_of(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fc_forward_is_bit_identical_to_dense_reference() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8).unwrap();
        let dense = layer.to_dense();
        let input: Vec<f32> = (0..64)
            .map(|i| ((i * 13) % 29) as f32 * 0.1 - 1.0)
            .collect();
        let x = Tensor::from_vec(Shape::d2(1, 64), input.clone()).unwrap();
        let want = ops::matmul(&x, &dense).unwrap();
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(want.as_slice()));
    }

    #[test]
    fn fc_forward_with_bias_matches_dense_add() {
        let (w, mask) = fc_layer(48, 24, 8, 0.5);
        let bias: Vec<f32> = (0..24).map(|i| (i as f32) * 0.01 - 0.1).collect();
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 8, 8)
            .unwrap()
            .with_bias(bias.clone());
        let dense = layer.to_dense();
        let input: Vec<f32> = (0..48).map(|i| ((i * 7) % 23) as f32 * 0.05).collect();
        let x = Tensor::from_vec(Shape::d2(1, 48), input.clone()).unwrap();
        let mm = ops::matmul(&x, &dense).unwrap();
        let bt = Tensor::from_vec(Shape::d2(1, 24), bias).unwrap();
        let want = ops::add(&mm, &bt).unwrap();
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(want.as_slice()));
    }

    #[test]
    fn fc_forward_handles_edge_shapes_and_full_pruning() {
        // n_out not a multiple of the strip width, and a fully-pruned
        // strip in the middle.
        let (w, _) = fc_layer(40, 24, 8, 0.9);
        let mut bits = vec![true; 40 * 24];
        for i in 0..40 {
            for o in 8..16 {
                bits[i * 24 + o] = false; // second strip fully pruned
            }
        }
        let mask = Mask::from_bits(Shape::d2(40, 24), bits).unwrap();
        let layer = CompiledFcLayer::compile_fc("edge", &w, &mask, 8, 8).unwrap();
        let dense = layer.to_dense();
        let input: Vec<f32> = (0..40).map(|i| (i as f32).sin()).collect();
        let x = Tensor::from_vec(Shape::d2(1, 40), input.clone()).unwrap();
        let want = ops::matmul(&x, &dense).unwrap();
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(want.as_slice()));
        assert_eq!(&got[8..16], &[0.0f32; 8]);
    }

    #[test]
    fn from_shared_equals_compile_fc() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let shared = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 8).unwrap();
        let via_shared = CompiledFcLayer::from_shared(&shared);
        let direct = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8).unwrap();
        assert_eq!(via_shared, direct);
        assert_eq!(via_shared.surviving(), shared.surviving());
        assert!((via_shared.density() - shared.density()).abs() < 1e-12);
    }

    #[test]
    fn forward_matches_shared_index_reference_output() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let shared = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 8).unwrap();
        let layer = CompiledFcLayer::from_shared(&shared);
        let input: Vec<f32> = (0..64).map(|i| ((i * 3) % 11) as f32 * 0.2).collect();
        let want = shared.output(&input);
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(&want));
    }

    #[test]
    fn pooled_fc_forward_is_bit_identical() {
        let pool = cs_parallel::ThreadPool::new(4);
        let (w, mask) = fc_layer(128, 64, 16, 0.25);
        let bias: Vec<f32> = (0..64).map(|i| (i as f32) * 0.001).collect();
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8)
            .unwrap()
            .with_bias(bias);
        let input: Vec<f32> = (0..128).map(|i| (i as f32 * 0.37).cos()).collect();
        let serial = layer.forward_alloc(&input);
        let mut pooled = vec![0.0f32; 64];
        layer.forward_pooled(&input, &mut pooled, &pool);
        assert_eq!(bits_of(&serial), bits_of(&pooled));
    }

    #[test]
    fn conv_forward_is_bit_identical_to_dense_conv2d() {
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            9,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 1);
        let bias: Vec<f32> = (0..32).map(|i| (i as f32) * 0.01 - 0.15).collect();
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom)
            .unwrap()
            .with_bias(bias.clone());
        let input = Tensor::from_fn(Shape::d3(2, 8, 8), |i| ((i * 17) % 31) as f32 * 0.06 - 0.9);
        let want = ops::conv2d(&input, &layer.to_dense(), Some(&bias), &geom).unwrap();
        let got = layer.forward(&input).unwrap();
        assert_eq!(want.shape(), got.shape());
        assert_eq!(bits_of(want.as_slice()), bits_of(got.as_slice()));
    }

    #[test]
    fn pooled_conv_forward_is_bit_identical() {
        let pool = cs_parallel::ThreadPool::new(3);
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            11,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 1);
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom).unwrap();
        let input = Tensor::from_fn(Shape::d3(2, 9, 7), |i| ((i * 29) % 41) as f32 * 0.04 - 0.8);
        let serial = layer.forward(&input).unwrap();
        let pooled = layer.forward_pooled(&input, &pool).unwrap();
        assert_eq!(bits_of(serial.as_slice()), bits_of(pooled.as_slice()));
    }

    #[test]
    fn runs_cover_exactly_the_survivors() {
        let index = vec![
            true, true, false, false, true, false, true, true, true, false,
        ];
        let runs = runs_from_index(&index);
        assert_eq!(runs, vec![(0, 2), (4, 5), (6, 9)]);
        assert_eq!(runs_from_index(&[]), vec![]);
        assert_eq!(runs_from_index(&[true]), vec![(0, 1)]);
        assert_eq!(runs_from_index(&[false]), vec![]);
    }

    fn rand_w(n_in: usize, n_out: usize, seed: u64) -> Tensor {
        let mut x = seed | 1;
        Tensor::from_fn(Shape::d2(n_in, n_out), |_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }

    #[test]
    fn two_four_forward_is_bit_identical_to_dense_reference() {
        for n_in in [16usize, 17, 64, 7] {
            let w = rand_w(n_in, 24, n_in as u64 * 3);
            let mask = cs_sparsity::structured::two_four_mask(&w).unwrap();
            let fmt = crate::format::TwoFourFcLayer::from_fc("tf", &w, &mask).unwrap();
            let bias: Vec<f32> = (0..24).map(|i| (i as f32) * 0.01 - 0.1).collect();
            let layer = CompiledTwoFourFc::from_format(&fmt).with_bias(bias.clone());
            let dense = layer.to_dense();
            let input: Vec<f32> = (0..n_in).map(|i| (i as f32 * 0.7).sin()).collect();
            let x = Tensor::from_vec(Shape::d2(1, n_in), input.clone()).unwrap();
            let mm = ops::matmul(&x, &dense).unwrap();
            let bt = Tensor::from_vec(Shape::d2(1, 24), bias.clone()).unwrap();
            let want = ops::add(&mm, &bt).unwrap();
            let got = layer.forward_alloc(&input);
            assert_eq!(bits_of(&got), bits_of(want.as_slice()), "n_in {n_in}");
        }
    }

    #[test]
    fn bank_balanced_forward_is_bit_identical_to_dense_reference() {
        for (bank, k) in [(8usize, 2usize), (3, 1), (16, 7), (5, 5)] {
            let w = rand_w(29, 12, (bank * 13 + k) as u64);
            let mask = cs_sparsity::structured::bank_balanced_mask(&w, bank, k).unwrap();
            let fmt =
                crate::format::BankBalancedFcLayer::from_fc("bb", &w, &mask, bank, k).unwrap();
            let layer = CompiledBankBalancedFc::from_format(&fmt);
            let dense = layer.to_dense();
            let input: Vec<f32> = (0..29).map(|i| (i as f32 * 0.31).cos()).collect();
            let x = Tensor::from_vec(Shape::d2(1, 29), input.clone()).unwrap();
            let want = ops::matmul(&x, &dense).unwrap();
            let got = layer.forward_alloc(&input);
            assert_eq!(bits_of(&got), bits_of(want.as_slice()), "bank {bank} k {k}");
        }
    }

    #[test]
    fn structured_pooled_forward_is_bit_identical() {
        for threads in [1usize, 2, 4] {
            let pool = cs_parallel::ThreadPool::new(threads);
            let w = rand_w(33, 21, 5);
            let mask = cs_sparsity::structured::two_four_mask(&w).unwrap();
            let fmt = crate::format::TwoFourFcLayer::from_fc("tf", &w, &mask).unwrap();
            let bias: Vec<f32> = (0..21).map(|i| (i as f32) * 0.002).collect();
            let layer = CompiledTwoFourFc::from_format(&fmt).with_bias(bias);
            let input: Vec<f32> = (0..33).map(|i| (i as f32 * 0.13).sin()).collect();
            let serial = layer.forward_alloc(&input);
            let mut pooled = vec![0.0f32; 21];
            layer.forward_pooled(&input, &mut pooled, &pool);
            assert_eq!(bits_of(&serial), bits_of(&pooled), "threads {threads}");

            let bmask = cs_sparsity::structured::bank_balanced_mask(&w, 6, 2).unwrap();
            let bfmt = crate::format::BankBalancedFcLayer::from_fc("bb", &w, &bmask, 6, 2).unwrap();
            let blayer = CompiledBankBalancedFc::from_format(&bfmt);
            let bserial = blayer.forward_alloc(&input);
            let mut bpooled = vec![0.0f32; 21];
            blayer.forward_pooled(&input, &mut bpooled, &pool);
            assert_eq!(bits_of(&bserial), bits_of(&bpooled), "threads {threads}");
        }
    }

    #[test]
    fn fc_kernel_dispatch_is_consistent() {
        let w = rand_w(16, 8, 9);
        let mask = cs_sparsity::structured::two_four_mask(&w).unwrap();
        let fmt = crate::format::FcLayerFormat::TwoFour(
            crate::format::TwoFourFcLayer::from_fc("tf", &w, &mask).unwrap(),
        );
        let kernel = FcKernel::compile(&fmt);
        assert_eq!(kernel.kind(), "two_four");
        assert_eq!(kernel.kind(), fmt.kind());
        assert_eq!(kernel.n_in(), 16);
        assert_eq!(kernel.n_out(), 8);
        assert_eq!(kernel.density(), 0.5);
        let input: Vec<f32> = (0..16).map(|i| (i as f32 * 0.3).cos()).collect();
        // The kernel and the format densify to the same matrix, and the
        // shared-index bridge decodes the same values.
        let kd = kernel.to_dense();
        let fd = match &fmt {
            crate::format::FcLayerFormat::TwoFour(l) => l.to_dense(),
            _ => unreachable!(),
        };
        assert_eq!(bits_of(kd.as_slice()), bits_of(fd.as_slice()));
        let shared = fmt.to_shared();
        let bridge = CompiledFcLayer::from_shared(&shared);
        assert_eq!(
            bits_of(&kernel.forward_alloc(&input)),
            bits_of(&bridge.forward_alloc(&input))
        );
    }

    #[test]
    fn to_dense_roundtrips_through_conv_lowering() {
        let w = local_convergence(
            Shape::d4(2, 16, 3, 3),
            &ConvergenceProfile::with_target_density(0.5),
            5,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.5).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 0);
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom).unwrap();
        let dense4 = layer.to_dense();
        assert_eq!(dense4.shape(), &Shape::d4(2, 16, 3, 3));
        // Lowering the 4-D densification reproduces the lowered matrix.
        let lowered = layer.to_dense_lowered();
        let lv = lowered.as_slice();
        for f in 0..2 {
            for fo in 0..16 {
                for x in 0..3 {
                    for y in 0..3 {
                        let p = (f * 3 + x) * 3 + y;
                        assert_eq!(dense4.get(&[f, fo, x, y]), lv[p * 16 + fo]);
                    }
                }
            }
        }
    }

    /// Inputs exercising every skip-eligibility edge: whole blocks of
    /// exact `+0.0`, plus `-0.0` / NaN / inf poison that must defeat
    /// the gate without changing the output bits.
    fn gate_test_inputs(n: usize) -> Vec<(&'static str, Vec<f32>)> {
        let striped: Vec<f32> = (0..n)
            .map(|i| {
                if (i / 8) % 2 == 0 {
                    0.0
                } else {
                    (i as f32 * 0.29).sin()
                }
            })
            .collect();
        let mut neg_zero = striped.clone();
        neg_zero[0] = -0.0;
        let mut nan = striped.clone();
        nan[3] = f32::NAN;
        let mut inf = striped.clone();
        inf[5] = f32::NEG_INFINITY;
        let all_zero = vec![0.0f32; n];
        vec![
            ("zero_striped", striped),
            ("neg_zero_poison", neg_zero),
            ("nan_poison", nan),
            ("inf_poison", inf),
            ("all_zero", all_zero),
        ]
    }

    #[test]
    fn gated_fc_is_bit_identical_across_block_sizes_and_poisons() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let bias: Vec<f32> = (0..32).map(|i| (i as f32) * 0.01 - 0.2).collect();
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8)
            .unwrap()
            .with_bias(bias);
        for (name, input) in gate_test_inputs(64) {
            let ungated = layer.forward_alloc(&input);
            for block in [1usize, 4, 8, 16, 64, 100] {
                let plan = GatePlan { block };
                let mut gated = vec![0.0f32; 32];
                let stats = layer.forward_gated(&input, &mut gated, &plan);
                assert_eq!(bits_of(&gated), bits_of(&ungated), "{name} block {block}");
                assert_eq!(
                    stats.blocks,
                    64usize.div_ceil(block),
                    "{name} block {block}"
                );
            }
        }
    }

    #[test]
    fn gated_fc_pooled_matches_serial_at_multiple_thread_counts() {
        let (w, mask) = fc_layer(96, 48, 16, 0.3);
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8).unwrap();
        let plan = GatePlan { block: 8 };
        for threads in [1usize, 2, 4] {
            let pool = cs_parallel::ThreadPool::new(threads);
            for (name, input) in gate_test_inputs(96) {
                let mut serial = vec![0.0f32; 48];
                let s_stats = layer.forward_gated(&input, &mut serial, &plan);
                let mut pooled = vec![0.0f32; 48];
                let p_stats = layer.forward_gated_pooled(&input, &mut pooled, &plan, &pool);
                assert_eq!(
                    bits_of(&serial),
                    bits_of(&pooled),
                    "{name} threads {threads}"
                );
                // Stats come from the bitmap alone, so they are
                // deterministic at any thread count.
                assert_eq!(s_stats, p_stats, "{name} threads {threads}");
            }
        }
    }

    #[test]
    fn gated_fc_skips_only_exact_zero_blocks() {
        let (w, mask) = fc_layer(64, 32, 16, 0.5);
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8).unwrap();
        let plan = GatePlan { block: 8 };
        let mut out = vec![0.0f32; 32];

        let inputs = gate_test_inputs(64);
        let striped = &inputs[0].1;
        let stats = layer.forward_gated(striped, &mut out, &plan);
        assert_eq!(stats.zero_blocks, 4, "every even-indexed block skips");

        // -0.0 / NaN / inf in an otherwise-zero block keep it occupied.
        for idx in [1usize, 2, 3] {
            let stats = layer.forward_gated(&inputs[idx].1, &mut out, &plan);
            assert_eq!(stats.zero_blocks, 3, "{} defeats the gate", inputs[idx].0);
        }

        let all_zero = &inputs[4].1;
        let stats = layer.forward_gated(all_zero, &mut out, &plan);
        assert_eq!(stats.zero_blocks, 8);
        assert!((stats.skip_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gated_conv_is_bit_identical_and_counts_skipped_patches() {
        let pool = cs_parallel::ThreadPool::new(3);
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            13,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 1);
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom).unwrap();
        // Zero out one channel-row stripe so several im2col patches are
        // all-zero, and poison one pixel with -0.0 and another with NaN.
        let mut input = Tensor::from_fn(Shape::d3(2, 8, 8), |i| {
            if (i / 16) % 2 == 0 {
                0.0
            } else {
                ((i * 17) % 31) as f32 * 0.06 - 0.9
            }
        });
        let s = input.as_mut_slice();
        s[0] = -0.0;
        s[33] = f32::NAN;
        let ungated = layer.forward(&input).unwrap();
        let (gated, stats) = layer.forward_gated(&input).unwrap();
        assert_eq!(bits_of(ungated.as_slice()), bits_of(gated.as_slice()));
        assert!(stats.zero_blocks > 0, "striped input must skip patches");
        assert_eq!(stats.blocks, 64, "one block per output position");
        let (gated_pooled, pooled_stats) = layer.forward_gated_pooled(&input, &pool).unwrap();
        assert_eq!(
            bits_of(ungated.as_slice()),
            bits_of(gated_pooled.as_slice())
        );
        assert_eq!(stats, pooled_stats);
    }

    #[test]
    fn gated_structured_is_bit_identical_for_avx2_and_scalar_banks() {
        let pool = cs_parallel::ThreadPool::new(2);
        // Banks 4/8/16 hit the AVX2 shuffle path on x86_64; 6 and the
        // 2:4 tail exercise the scalar kernel.
        let w = rand_w(67, 21, 7);
        let tf_mask = cs_sparsity::structured::two_four_mask(&w).unwrap();
        let tf_fmt = crate::format::TwoFourFcLayer::from_fc("tf", &w, &tf_mask).unwrap();
        let bias: Vec<f32> = (0..21).map(|i| (i as f32) * 0.002 - 0.01).collect();
        let tf = CompiledTwoFourFc::from_format(&tf_fmt).with_bias(bias);
        for (name, input) in gate_test_inputs(67) {
            let ungated = tf.forward_alloc(&input);
            let mut gated = vec![0.0f32; 21];
            let stats = tf.forward_gated(&input, &mut gated);
            assert_eq!(bits_of(&ungated), bits_of(&gated), "two_four {name}");
            assert_eq!(stats.blocks, 67usize.div_ceil(4), "two_four {name}");
            let mut pooled = vec![0.0f32; 21];
            let p_stats = tf.forward_gated_pooled(&input, &mut pooled, &pool);
            assert_eq!(
                bits_of(&ungated),
                bits_of(&pooled),
                "two_four pooled {name}"
            );
            assert_eq!(stats, p_stats, "two_four {name}");
        }
        for bank in [4usize, 6, 8, 16] {
            let k = bank / 2;
            let mask = cs_sparsity::structured::bank_balanced_mask(&w, bank, k).unwrap();
            let fmt =
                crate::format::BankBalancedFcLayer::from_fc("bb", &w, &mask, bank, k).unwrap();
            let layer = CompiledBankBalancedFc::from_format(&fmt);
            for (name, input) in gate_test_inputs(67) {
                let ungated = layer.forward_alloc(&input);
                let mut gated = vec![0.0f32; 21];
                layer.forward_gated(&input, &mut gated);
                assert_eq!(bits_of(&ungated), bits_of(&gated), "bank {bank} {name}");
                let mut pooled = vec![0.0f32; 21];
                layer.forward_gated_pooled(&input, &mut pooled, &pool);
                assert_eq!(
                    bits_of(&ungated),
                    bits_of(&pooled),
                    "bank {bank} pooled {name}"
                );
            }
        }
    }

    #[test]
    fn fc_kernel_gated_dispatch_and_planning() {
        let w = rand_w(128, 64, 11);
        let tf_mask = cs_sparsity::structured::two_four_mask(&w).unwrap();
        let tf = FcKernel::compile(&crate::format::FcLayerFormat::TwoFour(
            crate::format::TwoFourFcLayer::from_fc("tf", &w, &tf_mask).unwrap(),
        ));
        let bb_mask = cs_sparsity::structured::bank_balanced_mask(&w, 8, 2).unwrap();
        let bb = FcKernel::compile(&crate::format::FcLayerFormat::BankBalanced(
            crate::format::BankBalancedFcLayer::from_fc("bb", &w, &bb_mask, 8, 2).unwrap(),
        ));
        let (cw, cmask) = fc_layer(128, 64, 16, 0.25);
        let csr =
            FcKernel::BlockCsr(CompiledFcLayer::compile_fc("fc", &cw, &cmask, 16, 8).unwrap());
        let pool = cs_parallel::ThreadPool::new(2);
        for kernel in [&tf, &bb, &csr] {
            assert!(
                kernel.plan_gate(GatePolicy::Off).is_none(),
                "{}",
                kernel.kind()
            );
            let forced = kernel
                .plan_gate(GatePolicy::Force { block: 16 })
                .unwrap_or_else(|| panic!("force must gate {}", kernel.kind()));
            let plan = kernel.plan_gate(GatePolicy::Auto).unwrap_or(forced);
            for (name, input) in gate_test_inputs(128) {
                let ungated = kernel.forward_alloc(&input);
                let mut gated = vec![0.0f32; 64];
                kernel.forward_gated(&input, &mut gated, &plan);
                assert_eq!(
                    bits_of(&ungated),
                    bits_of(&gated),
                    "{} {name}",
                    kernel.kind()
                );
                let mut pooled = vec![0.0f32; 64];
                kernel.forward_gated_pooled(&input, &mut pooled, &plan, &pool);
                assert_eq!(
                    bits_of(&ungated),
                    bits_of(&pooled),
                    "{} pooled {name}",
                    kernel.kind()
                );
            }
        }
    }
}
