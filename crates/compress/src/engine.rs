//! Compiled sparse execution engine: block-CSR kernels over the shared
//! index format.
//!
//! [`SharedIndexLayer`] is a *storage* format — good for size accounting,
//! slow to execute (per-output gather through `Vec<bool>` indexes and
//! codebook lookups). This module compiles it into an execution-friendly
//! block-CSR layout:
//!
//! * outputs are grouped into *strips* of `strip_width` lanes (one strip
//!   per shared-index group, the hardware's `T_n = 16` PE cluster);
//! * each strip stores its surviving input positions as contiguous
//!   `[start, end)` *runs* derived from the coarse block grid (block
//!   pruning makes survivors naturally clumped);
//! * weights are stored twice per strip: as `u16` codebook indices (the
//!   compact form the WDM would hold) and as pre-decoded `f32` values in
//!   input-major order, which is what the hot loop reads.
//!
//! # Dense-vs-sparse equivalence contract
//!
//! On **finite** inputs, [`CompiledFcLayer::forward`] is bit-identical to
//! the dense reference `ops::matmul(x, self.to_dense())` (plus the same
//! bias addition). Two facts make this exact rather than approximate:
//!
//! 1. the sparse kernel accumulates surviving terms in ascending input
//!    order — the same order the dense loop adds them in; and
//! 2. the terms it skips are exactly `x[i] * 0.0 = ±0.0`, and adding
//!    `±0.0` to an accumulator that started at `+0.0` never changes its
//!    bits: an `f32` sum starting from `+0.0` cannot become `-0.0`
//!    through addition (opposite-signed zero sums and exact cancellation
//!    both round to `+0.0` under round-to-nearest).
//!
//! Non-finite inputs void the contract — `0.0 * NaN` is `NaN` in the
//! dense kernel and silently dropped by the sparse one — which is why
//! the dense reference kernel in `cs-tensor` must never zero-skip.

use cs_quant::Codebook;
use cs_sparsity::Mask;
use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor, TensorError};

use crate::format::SharedIndexLayer;
use crate::CompressError;

/// One strip of `strip_width` (or fewer, at the edge) output lanes
/// sharing a synapse index, compiled for execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FcStrip {
    /// First output lane of the strip.
    pub out_start: usize,
    /// One past the last output lane.
    pub out_end: usize,
    /// Surviving input positions as `[start, end)` runs, ascending.
    pub runs: Vec<(u32, u32)>,
    /// Codebook indices, input-major: `indices[pos * width + lane]` for
    /// the `pos`-th surviving input.
    pub indices: Vec<u16>,
    /// Pre-decoded weights, same layout as `indices`.
    pub values: Vec<f32>,
    /// The strip's codebook (the WDM LUT contents).
    pub codebook: Codebook,
    /// Number of surviving input positions.
    pub survivors: usize,
}

impl FcStrip {
    fn width(&self) -> usize {
        self.out_end - self.out_start
    }

    /// Accumulates this strip's outputs into `out` (length `width()`),
    /// which must already be zeroed.
    fn accumulate(&self, input: &[f32], out: &mut [f32]) {
        let width = self.width();
        let mut pos = 0usize;
        for &(s, e) in &self.runs {
            for i in s..e {
                let xi = input[i as usize];
                let row = &self.values[pos * width..(pos + 1) * width];
                for (o, &wv) in out.iter_mut().zip(row) {
                    *o += xi * wv;
                }
                pos += 1;
            }
        }
    }
}

/// A fully-connected layer compiled to block-CSR strips.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFcLayer {
    /// Layer name.
    pub name: String,
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Output lanes per strip (the last strip may be narrower).
    pub strip_width: usize,
    /// The strips in output order.
    pub strips: Vec<FcStrip>,
    /// Optional per-output bias, added after accumulation exactly like
    /// the dense pipeline's element-wise add.
    pub bias: Option<Vec<f32>>,
}

impl CompiledFcLayer {
    /// Compiles dense weights `(n_in, n_out)` plus a block-aligned mask
    /// directly, quantizing with the same per-group codebook parameters
    /// as [`SharedIndexLayer::from_fc`] (so both paths produce identical
    /// codebooks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedIndexLayer::from_fc`].
    pub fn compile_fc(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        strip_width: usize,
        quant_bits: u8,
    ) -> Result<Self, CompressError> {
        let shared = SharedIndexLayer::from_fc(name, weights, mask, strip_width, quant_bits)?;
        Ok(Self::from_shared(&shared))
    }

    /// Compiles an existing shared-index layer. Infallible: the storage
    /// format already carries everything the engine needs.
    pub fn from_shared(layer: &SharedIndexLayer) -> Self {
        let mut strips = Vec::with_capacity(layer.groups.len());
        let mut out_start = 0usize;
        for g in &layer.groups {
            let width = g.weights.len();
            let out_end = out_start + width;
            let survivors = g.survivors();
            let runs = runs_from_index(&g.index);
            // Transpose the group's output-major lanes to input-major.
            let mut indices = vec![0u16; survivors * width];
            for (lane, lw) in g.weights.iter().enumerate() {
                for (pos, &idx) in lw.iter().enumerate() {
                    indices[pos * width + lane] = idx;
                }
            }
            let values: Vec<f32> = indices.iter().map(|&i| g.codebook.value(i)).collect();
            strips.push(FcStrip {
                out_start,
                out_end,
                runs,
                indices,
                values,
                codebook: g.codebook.clone(),
                survivors,
            });
            out_start = out_end;
        }
        CompiledFcLayer {
            name: layer.name.clone(),
            n_in: layer.n_in,
            n_out: layer.n_out,
            strip_width: layer.group_size,
            strips,
            bias: None,
        }
    }

    /// Attaches a per-output bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_out`.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.n_out, "bias length mismatch");
        self.bias = Some(bias);
        self
    }

    /// Total surviving synapses.
    pub fn surviving(&self) -> usize {
        self.strips.iter().map(|s| s.survivors * s.width()).sum()
    }

    /// Fraction of surviving synapses.
    pub fn density(&self) -> f64 {
        let total = self.n_in * self.n_out;
        if total == 0 {
            return 0.0;
        }
        self.surviving() as f64 / total as f64
    }

    /// Sparse forward pass: `out = x · W_sparse (+ bias)`.
    ///
    /// Bit-identical to `ops::matmul` against [`Self::to_dense`] on
    /// finite inputs (see the module docs for the argument).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree with `n_in` / `n_out`.
    pub fn forward(&self, input: &[f32], out: &mut [f32]) {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        out.fill(0.0);
        for strip in &self.strips {
            strip.accumulate(input, &mut out[strip.out_start..strip.out_end]);
        }
        if let Some(bias) = &self.bias {
            for (o, b) in out.iter_mut().zip(bias) {
                *o += *b;
            }
        }
    }

    /// Allocating convenience wrapper around [`Self::forward`].
    pub fn forward_alloc(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n_out];
        self.forward(input, &mut out);
        out
    }

    /// Parallel [`Self::forward`]: strips write disjoint output windows,
    /// so they fan out over the pool; per-strip arithmetic is unchanged
    /// and the result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(&self, input: &[f32], out: &mut [f32], pool: &cs_parallel::ThreadPool) {
        assert_eq!(input.len(), self.n_in, "input length mismatch");
        assert_eq!(out.len(), self.n_out, "output length mismatch");
        if self.strips.is_empty() {
            out.fill(0.0);
            return;
        }
        pool.parallel_chunks_mut(out, self.strip_width.max(1), |si, window| {
            window.fill(0.0);
            let strip = &self.strips[si];
            strip.accumulate(input, window);
            if let Some(bias) = &self.bias {
                for (o, b) in window.iter_mut().zip(&bias[strip.out_start..strip.out_end]) {
                    *o += *b;
                }
            }
        });
    }

    /// Reconstructs the dense `(n_in, n_out)` weight matrix the engine
    /// executes: decoded codebook values at surviving positions, zeros
    /// elsewhere. This is the dense-reference operand of the equivalence
    /// contract.
    pub fn to_dense(&self) -> Tensor {
        let mut dense = vec![0.0f32; self.n_in * self.n_out];
        for strip in &self.strips {
            let width = strip.width();
            let mut pos = 0usize;
            for &(s, e) in &strip.runs {
                for i in s..e {
                    for lane in 0..width {
                        dense[i as usize * self.n_out + strip.out_start + lane] =
                            strip.values[pos * width + lane];
                    }
                    pos += 1;
                }
            }
        }
        Tensor::from_vec(Shape::d2(self.n_in, self.n_out), dense)
            .unwrap_or_else(|_| Tensor::zeros(Shape::d2(self.n_in, self.n_out)))
    }
}

/// A convolutional layer compiled for sparse execution: the standard
/// im2col lowering with the inner matmul replaced by the block-CSR FC
/// kernel over `(n_fin · kx · ky, n_fout)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledConvLayer {
    inner: CompiledFcLayer,
    geom: Conv2dGeometry,
    n_fin: usize,
    n_fout: usize,
    bias: Option<Vec<f32>>,
}

impl CompiledConvLayer {
    /// Compiles conv weights `(n_fin, n_fout, kx, ky)` plus a mask that
    /// is coarse over `strip_width` output maps.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SharedIndexLayer::from_conv`], plus a
    /// geometry check against the weight kernel.
    pub fn compile_conv(
        name: impl Into<String>,
        weights: &Tensor,
        mask: &Mask,
        strip_width: usize,
        quant_bits: u8,
        geom: Conv2dGeometry,
    ) -> Result<Self, CompressError> {
        if weights.shape().rank() != 4 {
            return Err(CompressError::Tensor(TensorError::RankMismatch {
                expected: 4,
                actual: weights.shape().rank(),
                op: "compile conv",
            }));
        }
        let (kx, ky) = (weights.shape().dim(2), weights.shape().dim(3));
        if kx != geom.kx || ky != geom.ky {
            return Err(CompressError::Tensor(TensorError::InvalidGeometry(
                format!(
                    "weight kernel ({kx}x{ky}) disagrees with geometry ({}x{})",
                    geom.kx, geom.ky
                ),
            )));
        }
        let shared = SharedIndexLayer::from_conv(name, weights, mask, strip_width, quant_bits)?;
        Ok(Self::from_shared(&shared, weights.shape().dim(0), geom))
    }

    /// Wraps a shared-index conv layer (lowered over `(f·kx+x)·ky+y`
    /// input positions, as [`SharedIndexLayer::from_conv`] produces).
    pub fn from_shared(layer: &SharedIndexLayer, n_fin: usize, geom: Conv2dGeometry) -> Self {
        let inner = CompiledFcLayer::from_shared(layer);
        CompiledConvLayer {
            n_fout: inner.n_out,
            inner,
            geom,
            n_fin,
            bias: None,
        }
    }

    /// Attaches a per-output-map bias.
    ///
    /// # Panics
    ///
    /// Panics when `bias.len() != n_fout`.
    #[must_use]
    pub fn with_bias(mut self, bias: Vec<f32>) -> Self {
        assert_eq!(bias.len(), self.n_fout, "bias length mismatch");
        self.bias = Some(bias);
        self
    }

    /// The inner block-CSR FC layer over lowered window positions.
    pub fn inner(&self) -> &CompiledFcLayer {
        &self.inner
    }

    /// Sparse conv forward over a `(n_fin, h, w)` input, producing
    /// `(n_fout, oh, ow)`. Bit-identical to `ops::conv2d` against the
    /// densified lowered weights on finite inputs.
    ///
    /// # Errors
    ///
    /// Returns shape/geometry errors when the input is inconsistent.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let cols = ops::im2col(input, &self.geom)?;
        self.finish_forward(input, &cols, None)
    }

    /// Parallel [`Self::forward`], bit-identical to the serial version.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::forward`].
    pub fn forward_pooled(
        &self,
        input: &Tensor,
        pool: &cs_parallel::ThreadPool,
    ) -> Result<Tensor, TensorError> {
        let cols = ops::im2col_pooled(input, &self.geom, pool)?;
        self.finish_forward(input, &cols, Some(pool))
    }

    fn finish_forward(
        &self,
        input: &Tensor,
        cols: &Tensor,
        pool: Option<&cs_parallel::ThreadPool>,
    ) -> Result<Tensor, TensorError> {
        if input.shape().dim(0) != self.n_fin {
            return Err(TensorError::ShapeMismatch {
                left: input.shape().clone(),
                right: Shape::d2(self.inner.n_in, self.n_fout),
                op: "sparse conv2d",
            });
        }
        let (h, w) = (input.shape().dim(1), input.shape().dim(2));
        let (oh, ow) = self.geom.output_size(h, w)?;
        let positions = oh * ow;
        let n_fout = self.n_fout;
        let n_in = self.inner.n_in;
        let cv = cols.as_slice();
        let mut prod = vec![0.0f32; positions * n_fout];
        match pool {
            Some(p) => {
                let rows_per = p.default_chunk(positions);
                p.parallel_chunks_mut(&mut prod, rows_per * n_fout, |ci, window| {
                    let row0 = ci * rows_per;
                    for (ri, orow) in window.chunks_mut(n_fout).enumerate() {
                        let r = row0 + ri;
                        self.inner.forward(&cv[r * n_in..(r + 1) * n_in], orow);
                    }
                });
            }
            None => {
                for (r, orow) in prod.chunks_mut(n_fout).enumerate() {
                    self.inner.forward(&cv[r * n_in..(r + 1) * n_in], orow);
                }
            }
        }
        // Transpose (oh*ow, n_fout) -> (n_fout, oh, ow), adding bias —
        // the exact element order of the dense conv2d epilogue.
        let bias = self.bias.as_deref();
        Ok(Tensor::from_fn(Shape::d3(n_fout, oh, ow), |i| {
            let fo = i / (oh * ow);
            let pos = i % (oh * ow);
            let b = bias.map_or(0.0, |bs| bs[fo]);
            prod[pos * n_fout + fo] + b
        }))
    }

    /// The densified lowered weight matrix `(n_fin · kx · ky, n_fout)`,
    /// i.e. the `wmat` operand the dense `conv2d` would multiply by.
    pub fn to_dense_lowered(&self) -> Tensor {
        self.inner.to_dense()
    }

    /// The densified 4-D weight tensor `(n_fin, n_fout, kx, ky)`.
    pub fn to_dense(&self) -> Tensor {
        let lowered = self.inner.to_dense();
        let lv = lowered.as_slice();
        let (kx, ky) = (self.geom.kx, self.geom.ky);
        let n_fout = self.n_fout;
        Tensor::from_fn(Shape::d4(self.n_fin, n_fout, kx, ky), |i| {
            let y = i % ky;
            let x = (i / ky) % kx;
            let fo = (i / (kx * ky)) % n_fout;
            let f = i / (n_fout * kx * ky);
            let p = (f * kx + x) * ky + y;
            lv[p * n_fout + fo]
        })
    }
}

/// Collapses a boolean survival index into ascending `[start, end)` runs.
fn runs_from_index(index: &[bool]) -> Vec<(u32, u32)> {
    let mut runs = Vec::new();
    let mut start: Option<u32> = None;
    for (i, b) in index.iter().enumerate() {
        match (b, start) {
            (true, None) => start = Some(i as u32),
            (false, Some(s)) => {
                runs.push((s, i as u32));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push((s, index.len() as u32));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_nn::init::{local_convergence, ConvergenceProfile};
    use cs_sparsity::coarse::{self, CoarseConfig, PruneMetric};

    fn fc_layer(n_in: usize, n_out: usize, group: usize, density: f64) -> (Tensor, Mask) {
        let w = local_convergence(
            Shape::d2(n_in, n_out),
            &ConvergenceProfile::with_target_density(density).with_block(group),
            3,
        );
        let cfg = CoarseConfig::fc(group, group, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        (w, mask)
    }

    fn bits_of(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fc_forward_is_bit_identical_to_dense_reference() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8).unwrap();
        let dense = layer.to_dense();
        let input: Vec<f32> = (0..64)
            .map(|i| ((i * 13) % 29) as f32 * 0.1 - 1.0)
            .collect();
        let x = Tensor::from_vec(Shape::d2(1, 64), input.clone()).unwrap();
        let want = ops::matmul(&x, &dense).unwrap();
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(want.as_slice()));
    }

    #[test]
    fn fc_forward_with_bias_matches_dense_add() {
        let (w, mask) = fc_layer(48, 24, 8, 0.5);
        let bias: Vec<f32> = (0..24).map(|i| (i as f32) * 0.01 - 0.1).collect();
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 8, 8)
            .unwrap()
            .with_bias(bias.clone());
        let dense = layer.to_dense();
        let input: Vec<f32> = (0..48).map(|i| ((i * 7) % 23) as f32 * 0.05).collect();
        let x = Tensor::from_vec(Shape::d2(1, 48), input.clone()).unwrap();
        let mm = ops::matmul(&x, &dense).unwrap();
        let bt = Tensor::from_vec(Shape::d2(1, 24), bias).unwrap();
        let want = ops::add(&mm, &bt).unwrap();
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(want.as_slice()));
    }

    #[test]
    fn fc_forward_handles_edge_shapes_and_full_pruning() {
        // n_out not a multiple of the strip width, and a fully-pruned
        // strip in the middle.
        let (w, _) = fc_layer(40, 24, 8, 0.9);
        let mut bits = vec![true; 40 * 24];
        for i in 0..40 {
            for o in 8..16 {
                bits[i * 24 + o] = false; // second strip fully pruned
            }
        }
        let mask = Mask::from_bits(Shape::d2(40, 24), bits).unwrap();
        let layer = CompiledFcLayer::compile_fc("edge", &w, &mask, 8, 8).unwrap();
        let dense = layer.to_dense();
        let input: Vec<f32> = (0..40).map(|i| (i as f32).sin()).collect();
        let x = Tensor::from_vec(Shape::d2(1, 40), input.clone()).unwrap();
        let want = ops::matmul(&x, &dense).unwrap();
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(want.as_slice()));
        assert_eq!(&got[8..16], &[0.0f32; 8]);
    }

    #[test]
    fn from_shared_equals_compile_fc() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let shared = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 8).unwrap();
        let via_shared = CompiledFcLayer::from_shared(&shared);
        let direct = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8).unwrap();
        assert_eq!(via_shared, direct);
        assert_eq!(via_shared.surviving(), shared.surviving());
        assert!((via_shared.density() - shared.density()).abs() < 1e-12);
    }

    #[test]
    fn forward_matches_shared_index_reference_output() {
        let (w, mask) = fc_layer(64, 32, 16, 0.25);
        let shared = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 8).unwrap();
        let layer = CompiledFcLayer::from_shared(&shared);
        let input: Vec<f32> = (0..64).map(|i| ((i * 3) % 11) as f32 * 0.2).collect();
        let want = shared.output(&input);
        let got = layer.forward_alloc(&input);
        assert_eq!(bits_of(&got), bits_of(&want));
    }

    #[test]
    fn pooled_fc_forward_is_bit_identical() {
        let pool = cs_parallel::ThreadPool::new(4);
        let (w, mask) = fc_layer(128, 64, 16, 0.25);
        let bias: Vec<f32> = (0..64).map(|i| (i as f32) * 0.001).collect();
        let layer = CompiledFcLayer::compile_fc("fc", &w, &mask, 16, 8)
            .unwrap()
            .with_bias(bias);
        let input: Vec<f32> = (0..128).map(|i| (i as f32 * 0.37).cos()).collect();
        let serial = layer.forward_alloc(&input);
        let mut pooled = vec![0.0f32; 64];
        layer.forward_pooled(&input, &mut pooled, &pool);
        assert_eq!(bits_of(&serial), bits_of(&pooled));
    }

    #[test]
    fn conv_forward_is_bit_identical_to_dense_conv2d() {
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            9,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 1);
        let bias: Vec<f32> = (0..32).map(|i| (i as f32) * 0.01 - 0.15).collect();
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom)
            .unwrap()
            .with_bias(bias.clone());
        let input = Tensor::from_fn(Shape::d3(2, 8, 8), |i| ((i * 17) % 31) as f32 * 0.06 - 0.9);
        let want = ops::conv2d(&input, &layer.to_dense(), Some(&bias), &geom).unwrap();
        let got = layer.forward(&input).unwrap();
        assert_eq!(want.shape(), got.shape());
        assert_eq!(bits_of(want.as_slice()), bits_of(got.as_slice()));
    }

    #[test]
    fn pooled_conv_forward_is_bit_identical() {
        let pool = cs_parallel::ThreadPool::new(3);
        let w = local_convergence(
            Shape::d4(2, 32, 3, 3),
            &ConvergenceProfile::with_target_density(0.3),
            11,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.3).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 1);
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom).unwrap();
        let input = Tensor::from_fn(Shape::d3(2, 9, 7), |i| ((i * 29) % 41) as f32 * 0.04 - 0.8);
        let serial = layer.forward(&input).unwrap();
        let pooled = layer.forward_pooled(&input, &pool).unwrap();
        assert_eq!(bits_of(serial.as_slice()), bits_of(pooled.as_slice()));
    }

    #[test]
    fn runs_cover_exactly_the_survivors() {
        let index = vec![
            true, true, false, false, true, false, true, true, true, false,
        ];
        let runs = runs_from_index(&index);
        assert_eq!(runs, vec![(0, 2), (4, 5), (6, 9)]);
        assert_eq!(runs_from_index(&[]), vec![]);
        assert_eq!(runs_from_index(&[true]), vec![(0, 1)]);
        assert_eq!(runs_from_index(&[false]), vec![]);
    }

    #[test]
    fn to_dense_roundtrips_through_conv_lowering() {
        let w = local_convergence(
            Shape::d4(2, 16, 3, 3),
            &ConvergenceProfile::with_target_density(0.5),
            5,
        );
        let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, 0.5).unwrap();
        let geom = Conv2dGeometry::square(3, 1, 0);
        let layer = CompiledConvLayer::compile_conv("conv", &w, &mask, 16, 8, geom).unwrap();
        let dense4 = layer.to_dense();
        assert_eq!(dense4.shape(), &Shape::d4(2, 16, 3, 3));
        // Lowering the 4-D densification reproduces the lowered matrix.
        let lowered = layer.to_dense_lowered();
        let lv = lowered.as_slice();
        for f in 0..2 {
            for fo in 0..16 {
                for x in 0..3 {
                    for y in 0..3 {
                        let p = (f * 3 + x) * 3 + y;
                        assert_eq!(dense4.get(&[f, fo, x, y]), lv[p * 16 + fo]);
                    }
                }
            }
        }
    }
}
