//! Entropy coding and bilevel image compression.
//!
//! Three codecs back the paper's compression pipeline and its
//! irregularity metric:
//!
//! * [`huffman`] — canonical Huffman coding, the entropy-coding stage of
//!   the Fig. 5 compression flow (`W_q` → `W_c`).
//! * [`arith`] — an adaptive binary arithmetic coder (the paper names
//!   arithmetic coding as the other common entropy coder, and it is the
//!   engine of the bilevel codec below).
//! * [`bilevel`] — a JBIG-style bilevel image compressor: a 10-pixel
//!   context template feeding the adaptive arithmetic coder. The paper
//!   measures *reduced irregularity* as
//!   `R(Irr) = JBIG(I_fine) / JBIG(I_coarse)` (Eq. 1); this codec plays
//!   the role of JBIG (see DESIGN.md substitution #2).
//!
//! # Example
//!
//! ```
//! use cs_coding::huffman;
//!
//! let symbols = vec![0u16, 0, 0, 1, 1, 2];
//! let enc = huffman::encode(&symbols).unwrap();
//! assert_eq!(huffman::decode(&enc).unwrap(), symbols);
//! ```

pub mod arith;
pub mod bilevel;
pub mod bits;
pub mod huffman;

use std::fmt;

/// Error type shared by all codecs in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The encoded stream ended prematurely or is malformed.
    CorruptStream(String),
    /// Input cannot be encoded (e.g. empty alphabet where one is needed).
    InvalidInput(String),
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::CorruptStream(m) => write!(f, "corrupt stream: {m}"),
            CodingError::InvalidInput(m) => write!(f, "invalid input: {m}"),
        }
    }
}

impl std::error::Error for CodingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CodingError::CorruptStream("eof".into())
            .to_string()
            .contains("eof"));
        assert!(CodingError::InvalidInput("empty".into())
            .to_string()
            .contains("empty"));
    }
}
