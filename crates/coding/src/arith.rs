//! Adaptive binary arithmetic coding (LZMA-style range coder).
//!
//! Probabilities are 12-bit fixed point and adapt with shift-5 updates —
//! the same scheme proven in LZMA/LZMA2. This coder is both one of the
//! two entropy coders the paper mentions and the engine of the bilevel
//! codec in [`crate::bilevel`].

use crate::CodingError;

const PROB_BITS: u32 = 12;
const PROB_INIT: u16 = 1 << (PROB_BITS - 1);
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive probability model for one binary context.
///
/// Stores `P(bit = 0)` in 12-bit fixed point and adapts toward observed
/// bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitModel(u16);

impl BitModel {
    /// A fresh model at probability ½.
    pub fn new() -> Self {
        BitModel(PROB_INIT)
    }

    /// Current probability of a zero bit, in `[0, 1]`.
    pub fn p_zero(&self) -> f64 {
        f64::from(self.0) / f64::from(1u32 << PROB_BITS)
    }

    fn update(&mut self, bit: bool) {
        if bit {
            self.0 -= self.0 >> MOVE_BITS;
        } else {
            self.0 += ((1 << PROB_BITS) - self.0) >> MOVE_BITS;
        }
    }
}

impl Default for BitModel {
    fn default() -> Self {
        BitModel::new()
    }
}

/// Binary arithmetic encoder.
///
/// # Example
///
/// ```
/// use cs_coding::arith::{BitModel, Decoder, Encoder};
///
/// let bits = [true, false, false, true, false];
/// let mut model = BitModel::new();
/// let mut enc = Encoder::new();
/// for b in bits {
///     enc.encode(&mut model, b);
/// }
/// let bytes = enc.finish();
///
/// let mut model = BitModel::new();
/// let mut dec = Decoder::new(&bytes).unwrap();
/// for b in bits {
///     assert_eq!(dec.decode(&mut model).unwrap(), b);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Encoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Encoder {
    /// Creates an encoder.
    pub fn new() -> Self {
        Encoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    /// Encodes one bit under `model`, adapting the model.
    pub fn encode(&mut self, model: &mut BitModel, bit: bool) {
        let bound = (self.range >> PROB_BITS) * u32::from(model.0);
        if bit {
            self.low += u64::from(bound);
            self.range -= bound;
        } else {
            self.range = bound;
        }
        model.update(bit);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Flushes and returns the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }

    /// Encoded size so far (without the final flush).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Returns `true` when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xFFu8.wrapping_add(carry));
            }
            self.cache = ((self.low >> 24) & 0xFF) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Encoder::new()
    }
}

/// Binary arithmetic decoder (see [`Encoder`] for a round-trip example).
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over an encoded stream.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::CorruptStream`] when the stream is shorter
    /// than the 5-byte preamble.
    pub fn new(input: &'a [u8]) -> Result<Self, CodingError> {
        if input.len() < 5 {
            return Err(CodingError::CorruptStream(
                "arithmetic stream shorter than preamble".into(),
            ));
        }
        let mut code = 0u32;
        for &b in &input[1..5] {
            code = (code << 8) | u32::from(b);
        }
        Ok(Decoder {
            code,
            range: u32::MAX,
            input,
            pos: 5,
        })
    }

    /// Decodes one bit under `model`, adapting the model.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::CorruptStream`] when the stream runs out.
    pub fn decode(&mut self, model: &mut BitModel) -> Result<bool, CodingError> {
        let bound = (self.range >> PROB_BITS) * u32::from(model.0);
        let bit = if self.code < bound {
            self.range = bound;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            true
        };
        model.update(bit);
        while self.range < TOP {
            let byte = if self.pos < self.input.len() {
                let b = self.input[self.pos];
                self.pos += 1;
                b
            } else {
                // Encoder flush pads with implicit zeros; tolerate a
                // limited overrun so the final symbols decode.
                self.pos += 1;
                if self.pos > self.input.len() + 8 {
                    return Err(CodingError::CorruptStream(
                        "arithmetic stream exhausted".into(),
                    ));
                }
                0
            };
            self.code = (self.code << 8) | u32::from(byte);
            self.range <<= 8;
        }
        Ok(bit)
    }
}

/// Adaptive multi-symbol coder built on the binary coder: each symbol's
/// bits are coded MSB-first through a *bit tree* of contexts (the prefix
/// of already-coded bits selects the model), the same construction LZMA
/// uses for literals. This is the "arithmetic coding" alternative the
/// paper names next to Huffman coding.
#[derive(Debug, Clone)]
pub struct SymbolModel {
    bits: u8,
    tree: Vec<BitModel>,
}

impl SymbolModel {
    /// Creates a model for `bits`-wide symbols.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: u8) -> Self {
        assert!(bits > 0 && bits <= 16, "symbol width {bits} out of range");
        SymbolModel {
            bits,
            tree: vec![BitModel::new(); 1 << bits],
        }
    }

    /// Symbol width in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Encodes one symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not fit in the model's width.
    pub fn encode(&mut self, enc: &mut Encoder, symbol: u16) {
        assert!(u32::from(symbol) < (1u32 << self.bits), "symbol too wide");
        let mut node = 1usize;
        for i in (0..self.bits).rev() {
            let bit = (symbol >> i) & 1 == 1;
            enc.encode(&mut self.tree[node], bit);
            node = (node << 1) | usize::from(bit);
        }
    }

    /// Decodes one symbol.
    ///
    /// # Errors
    ///
    /// Propagates stream-exhaustion errors.
    pub fn decode(&mut self, dec: &mut Decoder<'_>) -> Result<u16, CodingError> {
        let mut node = 1usize;
        for _ in 0..self.bits {
            let bit = dec.decode(&mut self.tree[node])?;
            node = (node << 1) | usize::from(bit);
        }
        Ok((node - (1 << self.bits)) as u16)
    }
}

/// Encodes a whole symbol stream adaptively (header: count + width).
pub fn encode_symbols(symbols: &[u16], bits: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + symbols.len() * usize::from(bits) / 8);
    out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());
    out.push(bits);
    let mut model = SymbolModel::new(bits);
    let mut enc = Encoder::new();
    for s in symbols {
        model.encode(&mut enc, *s);
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Decodes a stream produced by [`encode_symbols`].
///
/// # Errors
///
/// Returns [`CodingError::CorruptStream`] on truncated or malformed
/// input.
pub fn decode_symbols(bytes: &[u8]) -> Result<Vec<u16>, CodingError> {
    if bytes.len() < 9 {
        return Err(CodingError::CorruptStream("missing symbol header".into()));
    }
    let count = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) as usize;
    let bits = bytes[8];
    if bits == 0 || bits > 16 {
        return Err(CodingError::CorruptStream(format!(
            "symbol width {bits} out of range"
        )));
    }
    // An adapted model needs at least ~0.01 bits per symbol, so a count
    // vastly exceeding the stream marks a corrupt header; reject it
    // before attempting a decompression-bomb-sized decode.
    if count > bytes.len().saturating_mul(1024) {
        return Err(CodingError::CorruptStream(format!(
            "symbol count {count} exceeds stream capacity"
        )));
    }
    let mut model = SymbolModel::new(bits);
    let mut dec = Decoder::new(&bytes[9..])?;
    let mut out = Vec::new();
    for _ in 0..count {
        out.push(model.decode(&mut dec)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(bits: &[bool]) {
        let mut model = BitModel::new();
        let mut enc = Encoder::new();
        for b in bits {
            enc.encode(&mut model, *b);
        }
        let bytes = enc.finish();
        let mut model = BitModel::new();
        let mut dec = Decoder::new(&bytes).unwrap();
        for (i, b) in bits.iter().enumerate() {
            assert_eq!(dec.decode(&mut model).unwrap(), *b, "bit {i}");
        }
    }

    #[test]
    fn roundtrip_patterns() {
        roundtrip(&[true; 100]);
        roundtrip(&[false; 100]);
        let alt: Vec<bool> = (0..257).map(|i| i % 2 == 0).collect();
        roundtrip(&alt);
        let lcg: Vec<bool> = {
            let mut x = 12345u64;
            (0..10_000)
                .map(|_| {
                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    (x >> 62) & 1 == 1
                })
                .collect()
        };
        roundtrip(&lcg);
    }

    #[test]
    fn skewed_stream_compresses_below_one_bit() {
        // 99% zeros: adaptive model should get well under 0.2 bits/bit.
        let bits: Vec<bool> = (0..20_000).map(|i| i % 100 == 0).collect();
        let mut model = BitModel::new();
        let mut enc = Encoder::new();
        for b in &bits {
            enc.encode(&mut model, *b);
        }
        let bytes = enc.finish();
        let ratio = (bytes.len() * 8) as f64 / bits.len() as f64;
        assert!(ratio < 0.2, "got {ratio} bits/bit");
    }

    #[test]
    fn random_stream_does_not_compress() {
        let mut x = 99u64;
        let bits: Vec<bool> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 62) & 1 == 1
            })
            .collect();
        let mut model = BitModel::new();
        let mut enc = Encoder::new();
        for b in &bits {
            enc.encode(&mut model, *b);
        }
        let bytes = enc.finish();
        let ratio = (bytes.len() * 8) as f64 / bits.len() as f64;
        assert!(ratio > 0.95, "got {ratio} bits/bit");
    }

    #[test]
    fn model_adapts_toward_observations() {
        let mut m = BitModel::new();
        assert!((m.p_zero() - 0.5).abs() < 1e-9);
        for _ in 0..100 {
            m.update(false);
        }
        assert!(m.p_zero() > 0.95);
        for _ in 0..100 {
            m.update(true);
        }
        assert!(m.p_zero() < 0.05);
    }

    #[test]
    fn short_stream_rejected() {
        assert!(Decoder::new(&[0, 1, 2]).is_err());
    }

    #[test]
    fn symbol_roundtrip() {
        let symbols: Vec<u16> = (0..5000).map(|i| ((i * i) % 61) as u16).collect();
        let enc = encode_symbols(&symbols, 6);
        assert_eq!(decode_symbols(&enc).unwrap(), symbols);
    }

    #[test]
    fn skewed_symbols_compress_below_flat_width() {
        // 90% zeros over 4-bit symbols: well under 4 bits/symbol.
        let symbols: Vec<u16> = (0..20_000)
            .map(|i| if i % 10 == 0 { (i % 15) as u16 } else { 0 })
            .collect();
        let enc = encode_symbols(&symbols, 4);
        let bits_per_symbol = (enc.len() * 8) as f64 / symbols.len() as f64;
        assert!(bits_per_symbol < 1.5, "got {bits_per_symbol} bits/symbol");
    }

    #[test]
    fn symbol_header_validated() {
        assert!(decode_symbols(&[0; 4]).is_err());
        let mut enc = encode_symbols(&[1, 2, 3], 4);
        enc[8] = 0; // corrupt width
        assert!(decode_symbols(&enc).is_err());
    }

    #[test]
    fn empty_symbol_stream_roundtrips() {
        let enc = encode_symbols(&[], 4);
        assert_eq!(decode_symbols(&enc).unwrap(), Vec::<u16>::new());
    }

    #[test]
    #[should_panic(expected = "symbol too wide")]
    fn oversized_symbol_panics() {
        let mut m = SymbolModel::new(4);
        let mut e = Encoder::new();
        m.encode(&mut e, 16);
    }
}
