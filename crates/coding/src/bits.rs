//! Bit-granular I/O over byte buffers.

use crate::CodingError;

/// Writes bits most-significant-first into a growing byte buffer.
///
/// # Example
///
/// ```
/// use cs_coding::bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bit(true);
/// assert_eq!(w.bit_len(), 4);
/// let bytes = w.into_bytes();
/// assert_eq!(bytes, vec![0b1011_0000]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the `count` low bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64);
        for i in (0..count).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Finalizes into bytes (final partial byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::CorruptStream`] at end of input.
    pub fn read_bit(&mut self) -> Result<bool, CodingError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodingError::CorruptStream("bit read past end".into()));
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits as an MSB-first integer.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::CorruptStream`] at end of input.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn read_bits(&mut self, count: u8) -> Result<u64, CodingError> {
        assert!(count <= 64);
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Bits consumed so far.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101, 4);
        w.write_bits(0xABCD, 16);
        w.write_bit(true);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1101);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(false);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 9);
    }

    #[test]
    fn read_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        let b = w.into_bytes();
        assert_eq!(b[0], 0b1000_0000);
    }
}
