//! JBIG-style bilevel (binary) image compression.
//!
//! JBIG's compression power comes from conditioning an adaptive binary
//! arithmetic coder on a template of already-coded neighbour pixels. This
//! module implements exactly that core: a 10-pixel, three-line context
//! template (the same shape as JBIG's three-line template) addressing
//! 1024 adaptive [`BitModel`]s.
//!
//! The paper uses JBIG to *measure irregularity* (Eq. 1): a pruning index
//! bitmap that is regular (blocky) compresses far better than a scattered
//! fine-grained one, so
//! `R(Irr) = compressed(fine) / compressed(coarse)` quantifies how much
//! regularity coarse-grained pruning recovers. This codec preserves that
//! behaviour (see the tests at the bottom).

use crate::arith::{BitModel, Decoder, Encoder};
use crate::CodingError;

/// A binary image stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BiLevelImage {
    width: usize,
    height: usize,
    pixels: Vec<bool>,
}

impl BiLevelImage {
    /// Creates an image from row-major pixels.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidInput`] when the pixel count does not
    /// equal `width * height`.
    pub fn new(width: usize, height: usize, pixels: Vec<bool>) -> Result<Self, CodingError> {
        if pixels.len() != width * height {
            return Err(CodingError::InvalidInput(format!(
                "pixel count {} != {width}x{height}",
                pixels.len()
            )));
        }
        Ok(BiLevelImage {
            width,
            height,
            pixels,
        })
    }

    /// Builds an image from a mask-style bit slice and a row width.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::InvalidInput`] when the length is not a
    /// multiple of `width`.
    pub fn from_bits(bits: &[bool], width: usize) -> Result<Self, CodingError> {
        if width == 0 || !bits.len().is_multiple_of(width) {
            return Err(CodingError::InvalidInput(format!(
                "bit count {} not a multiple of width {width}",
                bits.len()
            )));
        }
        BiLevelImage::new(width, bits.len() / width, bits.to_vec())
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Borrows the row-major pixels.
    pub fn pixels(&self) -> &[bool] {
        &self.pixels
    }

    fn get(&self, x: isize, y: isize) -> bool {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            false
        } else {
            self.pixels[y as usize * self.width + x as usize]
        }
    }
}

/// The 10-pixel three-line context of pixel `(x, y)`:
/// two rows above and the already-coded pixels to the left.
fn context(img: &BiLevelImage, x: isize, y: isize) -> usize {
    let taps = [
        (-1, -2),
        (0, -2),
        (1, -2),
        (-2, -1),
        (-1, -1),
        (0, -1),
        (1, -1),
        (2, -1),
        (-2, 0),
        (-1, 0),
    ];
    let mut ctx = 0usize;
    for (dx, dy) in taps {
        ctx = (ctx << 1) | usize::from(img.get(x + dx, y + dy));
    }
    ctx
}

/// Compresses a bilevel image. The output embeds width and height.
pub fn compress(img: &BiLevelImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + img.pixels.len() / 8);
    out.extend_from_slice(&(img.width as u32).to_le_bytes());
    out.extend_from_slice(&(img.height as u32).to_le_bytes());
    let mut models = vec![BitModel::new(); 1024];
    let mut enc = Encoder::new();
    for y in 0..img.height as isize {
        for x in 0..img.width as isize {
            let ctx = context(img, x, y);
            enc.encode(&mut models[ctx], img.get(x, y));
        }
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`CodingError::CorruptStream`] for truncated input.
pub fn decompress(bytes: &[u8]) -> Result<BiLevelImage, CodingError> {
    if bytes.len() < 8 {
        return Err(CodingError::CorruptStream("missing header".into()));
    }
    let width = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let height = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let mut img = BiLevelImage {
        width,
        height,
        pixels: vec![false; width * height],
    };
    let mut models = vec![BitModel::new(); 1024];
    let mut dec = Decoder::new(&bytes[8..])?;
    for y in 0..height as isize {
        for x in 0..width as isize {
            let ctx = context(&img, x, y);
            let bit = dec.decode(&mut models[ctx])?;
            img.pixels[y as usize * width + x as usize] = bit;
        }
    }
    Ok(img)
}

/// Compressed size in bytes — the quantity used by the irregularity
/// metric `R(Irr)` (Eq. 1 in the paper).
pub fn compressed_size(img: &BiLevelImage) -> usize {
    compress(img).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bits(n: usize, seed: u64, p_one_percent: u64) -> Vec<bool> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (x >> 33) % 100 < p_one_percent
            })
            .collect()
    }

    #[test]
    fn roundtrip_random() {
        let img = BiLevelImage::from_bits(&lcg_bits(64 * 48, 7, 50), 64).unwrap();
        let c = compress(&img);
        assert_eq!(decompress(&c).unwrap(), img);
    }

    #[test]
    fn roundtrip_blocky() {
        let bits: Vec<bool> = (0..128 * 128)
            .map(|i| {
                let r = i / 128;
                let c = i % 128;
                ((r / 16) + (c / 16)) % 2 == 0
            })
            .collect();
        let img = BiLevelImage::from_bits(&bits, 128).unwrap();
        let c = compress(&img);
        assert_eq!(decompress(&c).unwrap(), img);
    }

    #[test]
    fn blocky_compresses_far_better_than_scattered() {
        // Same ones-density (~50%), very different structure.
        let blocky: Vec<bool> = (0..128 * 128)
            .map(|i| ((i / 128 / 16) + (i % 128 / 16)) % 2 == 0)
            .collect();
        let scattered = lcg_bits(128 * 128, 3, 50);
        let cb = compressed_size(&BiLevelImage::from_bits(&blocky, 128).unwrap());
        let cs = compressed_size(&BiLevelImage::from_bits(&scattered, 128).unwrap());
        assert!(cs > 10 * cb, "scattered {cs} bytes vs blocky {cb} bytes");
    }

    #[test]
    fn sparse_scattered_still_beats_dense_random() {
        // 10% scattered ones compresses, but less than blocky 10%.
        let scattered = lcg_bits(128 * 128, 11, 10);
        let blocky: Vec<bool> = (0..128 * 128)
            .map(|i| {
                let r = i / 128;
                let c = i % 128;
                // ~10% of 16x16 tiles fully on (interleaved grid).
                (r / 16) % 3 == 0 && (c / 16) % 3 == 0
            })
            .collect();
        let cs = compressed_size(&BiLevelImage::from_bits(&scattered, 128).unwrap());
        let cb = compressed_size(&BiLevelImage::from_bits(&blocky, 128).unwrap());
        assert!(cs > 3 * cb, "scattered {cs} vs blocky {cb}");
    }

    #[test]
    fn empty_and_full_images_compress_to_almost_nothing() {
        let zeros = BiLevelImage::from_bits(&vec![false; 256 * 256], 256).unwrap();
        let ones = BiLevelImage::from_bits(&vec![true; 256 * 256], 256).unwrap();
        assert!(compressed_size(&zeros) < 200);
        assert!(compressed_size(&ones) < 200);
        assert_eq!(decompress(&compress(&ones)).unwrap(), ones);
    }

    #[test]
    fn dimension_validation() {
        assert!(BiLevelImage::new(4, 4, vec![false; 15]).is_err());
        assert!(BiLevelImage::from_bits(&[false; 10], 3).is_err());
        assert!(BiLevelImage::from_bits(&[false; 10], 0).is_err());
    }

    #[test]
    fn truncated_stream_rejected() {
        let img = BiLevelImage::from_bits(&lcg_bits(32 * 32, 5, 50), 32).unwrap();
        let mut c = compress(&img);
        c.truncate(10);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn context_is_zero_at_origin() {
        let img = BiLevelImage::from_bits(&[true, true, true, true], 2).unwrap();
        assert_eq!(context(&img, 0, 0), 0);
        // Pixel (1,1) sees left neighbour and the row above.
        assert!(context(&img, 1, 1) > 0);
    }
}
