//! Canonical Huffman coding over `u16` symbols.
//!
//! This is the entropy-coding stage of the paper's compression flow
//! (Fig. 5): quantized weight dictionary indices are Huffman-coded because
//! their occurrence probabilities are strongly unbalanced. The encoded
//! container stores a canonical code-length table followed by the
//! bitstream, so [`decode`] fully recovers the input.

use std::collections::BinaryHeap;

use crate::bits::{BitReader, BitWriter};
use crate::CodingError;

/// Maximum symbol value supported (`dictionary index` for up to 16-bit
/// quantization).
pub const MAX_SYMBOL: u16 = u16::MAX;

/// An encoded Huffman container: header (symbol count, alphabet, code
/// lengths) plus payload bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    bytes: Vec<u8>,
    /// Number of payload symbols.
    pub symbol_count: usize,
    /// Payload-only size in bits (excluding the header), the figure used
    /// in compressed-size accounting.
    pub payload_bits: usize,
}

impl Encoded {
    /// Total container size in bytes (header + payload).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` for an empty container.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrows the raw container bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Computes canonical Huffman code lengths for a frequency table
/// (`(symbol, count)` pairs, counts > 0), capped by the alphabet.
///
/// Returns `(symbol, length)` pairs. A single-symbol alphabet gets a
/// 1-bit code.
pub fn code_lengths(freqs: &[(u16, u64)]) -> Vec<(u16, u8)> {
    match freqs.len() {
        0 => return Vec::new(),
        1 => return vec![(freqs[0].0, 1)],
        _ => {}
    }
    // Heap of (count, tie, node-id); internal nodes appended after leaves.
    #[derive(PartialEq, Eq)]
    struct Node(u64, usize, usize);
    impl Ord for Node {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap.
            (o.0, o.1).cmp(&(self.0, self.1))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    let n = freqs.len();
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap = BinaryHeap::new();
    for (i, (_, c)) in freqs.iter().enumerate() {
        heap.push(Node(*c, i, i));
    }
    let mut next = n;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parent[a.2] = next;
        parent[b.2] = next;
        heap.push(Node(a.0 + b.0, next, next));
        next += 1;
    }
    freqs
        .iter()
        .enumerate()
        .map(|(i, (s, _))| {
            let mut d = 0u8;
            let mut p = parent[i];
            while p != usize::MAX {
                d += 1;
                p = parent[p];
            }
            (*s, d)
        })
        .collect()
}

/// Assigns canonical codes from `(symbol, length)` pairs: shorter codes
/// first, ties broken by symbol value.
pub fn canonical_codes(lengths: &[(u16, u8)]) -> Vec<(u16, u8, u64)> {
    let mut sorted: Vec<(u16, u8)> = lengths.to_vec();
    sorted.sort_by_key(|(s, l)| (*l, *s));
    let mut out = Vec::with_capacity(sorted.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for (s, l) in sorted {
        code <<= l - prev_len;
        out.push((s, l, code));
        code += 1;
        prev_len = l;
    }
    out
}

/// Encodes a symbol stream.
///
/// # Errors
///
/// Returns [`CodingError::InvalidInput`] for an empty input (there is
/// nothing to build a code from; callers treat empty layers specially).
pub fn encode(symbols: &[u16]) -> Result<Encoded, CodingError> {
    if symbols.is_empty() {
        return Err(CodingError::InvalidInput("empty symbol stream".into()));
    }
    let mut counts = std::collections::BTreeMap::new();
    for s in symbols {
        *counts.entry(*s).or_insert(0u64) += 1;
    }
    let freqs: Vec<(u16, u64)> = counts.into_iter().collect();
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);
    let mut table = vec![0u64; usize::from(u16::MAX) + 1];
    let mut lens = vec![0u8; usize::from(u16::MAX) + 1];
    for (s, l, c) in &codes {
        table[usize::from(*s)] = *c;
        lens[usize::from(*s)] = *l;
    }

    let mut w = BitWriter::new();
    // Header: symbol count (u64), alphabet size (u32), then per-symbol
    // (value u16, length u8).
    w.write_bits(symbols.len() as u64, 64);
    w.write_bits(codes.len() as u64, 32);
    for (s, l, _) in &codes {
        w.write_bits(u64::from(*s), 16);
        w.write_bits(u64::from(*l), 8);
    }
    let header_bits = w.bit_len();
    for s in symbols {
        w.write_bits(table[usize::from(*s)], lens[usize::from(*s)]);
    }
    let payload_bits = w.bit_len() - header_bits;
    Ok(Encoded {
        bytes: w.into_bytes(),
        symbol_count: symbols.len(),
        payload_bits,
    })
}

/// Decodes a container produced by [`encode`].
///
/// # Errors
///
/// Returns [`CodingError::CorruptStream`] on truncated or inconsistent
/// input.
pub fn decode(enc: &Encoded) -> Result<Vec<u16>, CodingError> {
    decode_bytes(enc.as_bytes())
}

/// Decodes from raw container bytes.
///
/// # Errors
///
/// Returns [`CodingError::CorruptStream`] on truncated or inconsistent
/// input.
pub fn decode_bytes(bytes: &[u8]) -> Result<Vec<u16>, CodingError> {
    let mut r = BitReader::new(bytes);
    let count = r.read_bits(64)? as usize;
    // Every symbol costs at least one payload bit, so a count exceeding
    // the stream length marks a corrupt (or hostile) header.
    if count > bytes.len().saturating_mul(8) {
        return Err(CodingError::CorruptStream(format!(
            "symbol count {count} exceeds stream capacity"
        )));
    }
    let alphabet = r.read_bits(32)? as usize;
    if alphabet == 0 {
        return Err(CodingError::CorruptStream("empty alphabet".into()));
    }
    if alphabet > usize::from(u16::MAX) + 1 {
        return Err(CodingError::CorruptStream(format!(
            "alphabet size {alphabet} exceeds u16 symbol space"
        )));
    }
    let mut lengths = Vec::with_capacity(alphabet);
    for _ in 0..alphabet {
        let s = r.read_bits(16)? as u16;
        let l = r.read_bits(8)? as u8;
        if l == 0 || l > 64 {
            return Err(CodingError::CorruptStream(format!("bad code length {l}")));
        }
        lengths.push((s, l));
    }
    let codes = canonical_codes(&lengths);
    // Decode by walking lengths in canonical order: maintain (len, code)
    // and compare prefix reads.
    let mut out = Vec::with_capacity(count);
    // Build first-code table per length for fast canonical decoding.
    let max_len = codes.iter().map(|(_, l, _)| *l).max().unwrap_or(1);
    let mut first_code = vec![0u64; usize::from(max_len) + 1];
    let mut first_index = vec![0usize; usize::from(max_len) + 1];
    let mut by_order: Vec<u16> = Vec::with_capacity(codes.len());
    {
        let mut idx = 0usize;
        for l in 1..=max_len {
            let start_code = codes
                .iter()
                .find(|(_, cl, _)| *cl == l)
                .map(|(_, _, c)| *c)
                .unwrap_or(0);
            first_code[usize::from(l)] = start_code;
            first_index[usize::from(l)] = idx;
            for (s, cl, _) in &codes {
                if *cl == l {
                    by_order.push(*s);
                    idx += 1;
                }
            }
        }
    }
    let counts_per_len: Vec<usize> = (0..=usize::from(max_len))
        .map(|l| {
            codes
                .iter()
                .filter(|(_, cl, _)| usize::from(*cl) == l)
                .count()
        })
        .collect();
    for _ in 0..count {
        let mut code = 0u64;
        let mut len = 0u8;
        loop {
            code = (code << 1) | u64::from(r.read_bit()?);
            len += 1;
            if len > max_len {
                return Err(CodingError::CorruptStream("code too long".into()));
            }
            let l = usize::from(len);
            if counts_per_len[l] > 0 {
                let offset = code.wrapping_sub(first_code[l]);
                if code >= first_code[l] && (offset as usize) < counts_per_len[l] {
                    out.push(by_order[first_index[l] + offset as usize]);
                    break;
                }
            }
        }
    }
    Ok(out)
}

/// Shannon-optimal payload size in bits for a symbol stream — a lower
/// bound used in tests and size sanity checks.
pub fn entropy_bits(symbols: &[u16]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::BTreeMap::new();
    for s in symbols {
        *counts.entry(*s).or_insert(0u64) += 1;
    }
    let n = symbols.len() as f64;
    counts
        .values()
        .map(|c| {
            let p = *c as f64 / n;
            -(*c as f64) * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = vec![3u16, 3, 3, 3, 1, 1, 2, 7];
        let enc = encode(&data).unwrap();
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_single_symbol() {
        let data = vec![42u16; 100];
        let enc = encode(&data).unwrap();
        assert_eq!(decode(&enc).unwrap(), data);
        // 1 bit per symbol.
        assert_eq!(enc.payload_bits, 100);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros, 10% spread: payload ≈ entropy.
        let mut data = vec![0u16; 900];
        for i in 0..100 {
            data.push(1 + (i % 7) as u16);
        }
        let enc = encode(&data).unwrap();
        let h = entropy_bits(&data);
        assert!(enc.payload_bits as f64 >= h - 1e-9);
        assert!(
            (enc.payload_bits as f64) < h + data.len() as f64,
            "payload {} vs entropy {h}",
            enc.payload_bits
        );
        // Far below the 4 bits/symbol a flat code would need.
        assert!(enc.payload_bits < 2 * data.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(encode(&[]).is_err());
    }

    #[test]
    fn corrupt_stream_detected() {
        let data = vec![1u16, 2, 3, 4, 5, 6, 7, 8];
        let enc = encode(&data).unwrap();
        let mut bytes = enc.as_bytes().to_vec();
        bytes.truncate(bytes.len() / 2);
        assert!(decode_bytes(&bytes).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = vec![(0u16, 2u8), (1, 2), (2, 3), (3, 3), (4, 3), (5, 3)];
        let codes = canonical_codes(&lengths);
        for (i, (_, la, ca)) in codes.iter().enumerate() {
            for (j, (_, lb, cb)) in codes.iter().enumerate() {
                if i == j {
                    continue;
                }
                if la <= lb {
                    assert_ne!(*ca, cb >> (lb - la), "code {i} is a prefix of code {j}");
                }
            }
        }
    }

    #[test]
    fn code_lengths_match_frequencies() {
        // Most frequent symbol gets the shortest code.
        let freqs = vec![(0u16, 100u64), (1, 10), (2, 10), (3, 1)];
        let lengths = code_lengths(&freqs);
        let len_of = |s: u16| lengths.iter().find(|(x, _)| *x == s).unwrap().1;
        assert!(len_of(0) <= len_of(1));
        assert!(len_of(1) <= len_of(3));
    }

    #[test]
    fn large_alphabet_roundtrip() {
        let data: Vec<u16> = (0..5000).map(|i| ((i * i) % 257) as u16).collect();
        let enc = encode(&data).unwrap();
        assert_eq!(decode(&enc).unwrap(), data);
    }
}
