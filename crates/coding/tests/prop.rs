//! Property-based tests for the codecs.

use cs_coding::arith::{self, BitModel, Decoder, Encoder};
use cs_coding::bilevel::{self, BiLevelImage};
use cs_coding::bits::{BitReader, BitWriter};
use cs_coding::huffman;
use proptest::prelude::*;

proptest! {
    /// Bit I/O round-trips arbitrary field sequences.
    #[test]
    fn bit_io_roundtrip(fields in proptest::collection::vec((0u64..u32::MAX as u64, 1u8..33), 1..100)) {
        let mut w = BitWriter::new();
        for (v, bits) in &fields {
            w.write_bits(v & ((1u64 << bits) - 1), *bits);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (v, bits) in &fields {
            prop_assert_eq!(r.read_bits(*bits).unwrap(), v & ((1u64 << bits) - 1));
        }
    }

    /// The binary arithmetic coder round-trips any bit sequence under
    /// any (shared) model state evolution.
    #[test]
    fn arith_bit_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..4000)) {
        let mut m = BitModel::new();
        let mut e = Encoder::new();
        for b in &bits {
            e.encode(&mut m, *b);
        }
        let bytes = e.finish();
        let mut m = BitModel::new();
        let mut d = Decoder::new(&bytes).unwrap();
        for b in &bits {
            prop_assert_eq!(d.decode(&mut m).unwrap(), *b);
        }
    }

    /// The symbol coder round-trips any stream at any supported width.
    #[test]
    fn arith_symbol_roundtrip(symbols in proptest::collection::vec(0u16..256, 0..2000)) {
        let enc = arith::encode_symbols(&symbols, 8);
        prop_assert_eq!(arith::decode_symbols(&enc).unwrap(), symbols);
    }

    /// Huffman decode(encode(x)) == x and single-bit corruptions are
    /// either detected or produce a different payload (never UB/panic).
    #[test]
    fn huffman_total_and_corruption_safe(symbols in proptest::collection::vec(0u16..64, 1..500),
                                         flip in any::<u16>()) {
        let enc = huffman::encode(&symbols).unwrap();
        prop_assert_eq!(huffman::decode(&enc).unwrap(), symbols);
        let mut bytes = enc.as_bytes().to_vec();
        let pos = usize::from(flip) % bytes.len();
        bytes[pos] ^= 1 << (flip % 8);
        // Must not panic; any Result is acceptable.
        let _ = huffman::decode_bytes(&bytes);
    }

    /// Bilevel codec round-trips and never *expands* catastrophically on
    /// structured inputs (worst case bounded by ~1.3 bits/pixel + header).
    #[test]
    fn bilevel_roundtrip_and_bound(rows in 1usize..40, cols in 1usize..40, seed in 0u64..1000) {
        let mut s = seed | 1;
        let bits: Vec<bool> = (0..rows * cols).map(|_| {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (s >> 62) & 1 == 1
        }).collect();
        let img = BiLevelImage::from_bits(&bits, cols).unwrap();
        let c = bilevel::compress(&img);
        prop_assert_eq!(bilevel::decompress(&c).unwrap(), img);
        prop_assert!(c.len() <= (rows * cols) / 5 + 64,
                     "{} bytes for {} pixels", c.len(), rows * cols);
    }

    /// Entropy is a lower bound and a 1-extra-bit-per-symbol upper bound
    /// holds for Huffman payloads.
    #[test]
    fn huffman_is_near_entropy(symbols in proptest::collection::vec(0u16..8, 2..1000)) {
        let enc = huffman::encode(&symbols).unwrap();
        let h = huffman::entropy_bits(&symbols);
        prop_assert!(enc.payload_bits as f64 >= h - 1e-6);
        prop_assert!((enc.payload_bits as f64) < h + symbols.len() as f64 + 1.0);
    }
}
