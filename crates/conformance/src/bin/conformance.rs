//! Conformance harness CLI.
//!
//! ```text
//! conformance run      --cases N --seed S [--inject FAULT] [--serve-every N]
//!                      [--no-shrink] [--max-failures N] [--report-out PATH]
//! conformance replay   --seed S --case K [--inject FAULT]
//! conformance corpus
//! conformance net-fuzz [--cases N] [--seed S]
//! conformance registry-fuzz [--cases N] [--seed S]
//! ```
//!
//! Exit codes: 0 = all checks green, 1 = usage error, 2 = mismatches.

use std::process::ExitCode;

use cs_conformance::runner::{self, RunConfig};
use cs_conformance::{corpus, Fault};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         conformance run --cases N --seed S [--inject reverse-accumulation]\n      \
         [--serve-every N] [--no-shrink] [--max-failures N] [--report-out PATH]\n  \
         conformance replay --seed S --case K [--inject reverse-accumulation]\n  \
         conformance corpus\n  \
         conformance net-fuzz [--cases N] [--seed S]\n  \
         conformance registry-fuzz [--cases N] [--seed S]"
    );
    ExitCode::from(1)
}

fn parse_u64(args: &[String], i: &mut usize, flag: &str) -> Result<u64, String> {
    *i += 1;
    let v = args
        .get(*i)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: not a number: {v}"))
}

fn parse_fault(args: &[String], i: &mut usize) -> Result<Fault, String> {
    *i += 1;
    let v = args
        .get(*i)
        .ok_or_else(|| "--inject needs a value".to_string())?;
    Fault::parse(v).ok_or_else(|| format!("--inject: unknown fault: {v}"))
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = RunConfig::default();
    let mut report_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => cfg.cases = parse_u64(args, &mut i, "--cases")?,
            "--seed" => cfg.seed = parse_u64(args, &mut i, "--seed")?,
            "--serve-every" => cfg.serve_every = parse_u64(args, &mut i, "--serve-every")?,
            "--max-failures" => {
                cfg.max_failures = parse_u64(args, &mut i, "--max-failures")? as usize
            }
            "--no-shrink" => cfg.shrink = false,
            "--inject" => cfg.fault = parse_fault(args, &mut i)?,
            "--report-out" => {
                i += 1;
                report_out = Some(
                    args.get(i)
                        .ok_or_else(|| "--report-out needs a path".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("run: unknown flag: {other}")),
        }
        i += 1;
    }

    let report = runner::run(&cfg);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = report_out {
        let body = format!("{rendered}\n# telemetry\n{}", report.telemetry);
        std::fs::write(&path, body).map_err(|e| format!("--report-out {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    Ok(if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let mut seed = None;
    let mut case = None;
    let mut fault = Fault::None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => seed = Some(parse_u64(args, &mut i, "--seed")?),
            "--case" => case = Some(parse_u64(args, &mut i, "--case")?),
            "--inject" => fault = parse_fault(args, &mut i)?,
            other => return Err(format!("replay: unknown flag: {other}")),
        }
        i += 1;
    }
    let seed = seed.ok_or("replay: --seed is required")?;
    let case = case.ok_or("replay: --case is required")?;

    let pools = runner::make_pools();
    let (c, mismatches) = runner::check_one(seed, case, fault, &pools);
    println!("case {case} [{}]: {}", c.kind.name(), c.kind.summary());
    if mismatches.is_empty() {
        println!("PASS");
        return Ok(ExitCode::SUCCESS);
    }
    for m in &mismatches {
        println!("  {m}");
    }
    let outcome = crate_shrink(&c, fault, &pools);
    println!(
        "shrunk ({} steps, {} attempts) to {} layer(s): {}",
        outcome.steps,
        outcome.attempts,
        outcome.case.kind.layer_count(),
        outcome.case.kind.summary()
    );
    for m in cs_conformance::diff::check_case(&outcome.case, fault, &pools) {
        println!("    {m}");
    }
    Ok(ExitCode::from(2))
}

fn crate_shrink(
    case: &cs_conformance::gen::Case,
    fault: Fault,
    pools: &[cs_parallel::ThreadPool],
) -> cs_conformance::shrink::ShrinkOutcome {
    cs_conformance::shrink::shrink(
        case,
        |cand| !cs_conformance::diff::check_case(cand, fault, pools).is_empty(),
        runner::SHRINK_ATTEMPTS,
    )
}

fn cmd_corpus() -> ExitCode {
    let pools = runner::make_pools();
    let failures = corpus::replay_corpus(&pools);
    println!(
        "corpus: {} entries, {} failing",
        corpus::CORPUS.len(),
        failures.len()
    );
    for (e, mismatches) in &failures {
        println!("FAIL seed {} case {} ({})", e.seed, e.case, e.note);
        for m in mismatches {
            println!("  {m}");
        }
        println!(
            "  replay: {}",
            runner::replay_command(e.seed, e.case, Fault::None)
        );
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_net_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let mut cases = 500u64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => cases = parse_u64(args, &mut i, "--cases")?,
            "--seed" => seed = parse_u64(args, &mut i, "--seed")?,
            other => return Err(format!("net-fuzz: unknown flag: {other}")),
        }
        i += 1;
    }
    let mismatches = cs_conformance::net_check::fuzz_codec(seed, cases);
    println!(
        "net-fuzz: {cases} cases, seed {seed}, {} violations",
        mismatches.len()
    );
    for m in &mismatches {
        println!("  {m}");
    }
    if mismatches.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        println!("  replay: conformance net-fuzz --cases {cases} --seed {seed}");
        Ok(ExitCode::from(2))
    }
}

fn cmd_registry_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let mut cases = 500u64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cases" => cases = parse_u64(args, &mut i, "--cases")?,
            "--seed" => seed = parse_u64(args, &mut i, "--seed")?,
            other => return Err(format!("registry-fuzz: unknown flag: {other}")),
        }
        i += 1;
    }
    let mismatches = cs_conformance::registry_check::fuzz_container(seed, cases);
    println!(
        "registry-fuzz: {cases} cases, seed {seed}, {} violations",
        mismatches.len()
    );
    for m in &mismatches {
        println!("  {m}");
    }
    if mismatches.is_empty() {
        Ok(ExitCode::SUCCESS)
    } else {
        println!("  replay: conformance registry-fuzz --cases {cases} --seed {seed}");
        Ok(ExitCode::from(2))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "run" => cmd_run(rest),
        "replay" => cmd_replay(rest),
        "corpus" => {
            if !rest.is_empty() {
                return usage();
            }
            Ok(cmd_corpus())
        }
        "net-fuzz" => cmd_net_fuzz(rest),
        "registry-fuzz" => cmd_registry_fuzz(rest),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("conformance: {msg}");
            ExitCode::from(1)
        }
    }
}
