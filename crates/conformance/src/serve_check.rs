//! Backend-agreement check on *served* outputs.
//!
//! The differential executor exercises the kernels directly; this module
//! closes the loop through `cs-serve`: the same compiled layer formats
//! (coarse shared-index, packed 2:4, or bank-balanced) are registered as
//! a [`ServableModel`], started under the Sparse and Dense engine
//! backends, and queried with identical inputs. The contract:
//!
//! * Sparse-served and Dense-served outputs are **bit-identical** to
//!   each other (on finite probes — a poisoned case input voids the
//!   dense contract, as in the direct legs) and to a direct (unserved)
//!   lane forward — batching, queuing, and worker scheduling must
//!   never perturb arithmetic;
//! * engine-lane responses report `cycles == 0` (no hardware model ran),
//!   which is exactly why `ServeStats` must keep them out of the
//!   hardware-side throughput figures.

use cs_serve::{ExecBackend, InferRequest, ModelRegistry, ServableModel, ServeConfig, Server};

use crate::diff::FcArtifacts;
use crate::rng::CaseRng;
use crate::Mismatch;

pub(crate) const MODEL: &str = "conformance";
const PROBES: usize = 4;

pub(crate) fn model_from(art: &FcArtifacts) -> ServableModel {
    let layers: Vec<_> = art
        .layers
        .iter()
        .map(|la| (la.format.clone(), la.activation))
        .collect();
    let n_in = layers[0].0.n_in();
    let n_out = layers[layers.len() - 1].0.n_out();
    ServableModel {
        name: MODEL.to_string(),
        layers,
        n_in,
        n_out,
    }
}

fn serve_outputs(
    art: &FcArtifacts,
    backend: ExecBackend,
    probes: &[Vec<f32>],
) -> Result<Vec<(Vec<f32>, u64)>, Mismatch> {
    let mut registry = ModelRegistry::new();
    registry.register(model_from(art)).map_err(|e| {
        Mismatch::new(
            "serve-admission",
            format!("registry rejected the case's layers: {e:?}"),
        )
    })?;
    let cfg = ServeConfig {
        workers: 2,
        backend,
        ..ServeConfig::default()
    };
    let server = Server::start(registry, cfg)
        .map_err(|e| Mismatch::new("serve-start", format!("{backend:?}: {e:?}")))?;
    let mut out = Vec::with_capacity(probes.len());
    for p in probes {
        let resp = server
            .infer(InferRequest::new(MODEL, p.clone()))
            .map_err(|e| Mismatch::new("serve-infer", format!("{backend:?}: {e:?}")))?;
        out.push((resp.outputs, resp.cycles));
    }
    server.shutdown();
    Ok(out)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Serves the case's layers under both engine backends and checks
/// agreement (note the artifacts' biases are engine-side only and are
/// deliberately not part of the served model — `ServableModel` carries
/// none).
pub fn check_serve(art: &FcArtifacts, probe_seed: u64) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let n_in = art.layers[0].shared.n_in;
    let mut rng = CaseRng::from_seed(probe_seed);
    let mut probes: Vec<Vec<f32>> = (0..PROBES - 1)
        .map(|i| rng.fill_f32(n_in, i + 1)) // varying dynamic sparsity
        .collect();
    probes.push(art.input.clone());

    let sparse = match serve_outputs(art, ExecBackend::Sparse, &probes) {
        Ok(v) => v,
        Err(m) => return vec![m],
    };
    let dense = match serve_outputs(art, ExecBackend::Dense, &probes) {
        Ok(v) => v,
        Err(m) => return vec![m],
    };

    // Unserved reference: the sparse lane run directly on this thread.
    let lane = model_from(art).sparse_lane();
    for (pi, probe) in probes.iter().enumerate() {
        let want = match lane.forward(probe) {
            Ok(v) => v,
            Err(e) => {
                out.push(Mismatch::new("serve-lane-error", format!("{e:?}")));
                return out;
            }
        };
        let (sp, sp_cycles) = &sparse[pi];
        let (de, de_cycles) = &dense[pi];
        // A non-finite probe (the case's poisoned input) voids the
        // dense contract — the dense lane multiplies NaN/inf through
        // explicitly-zeroed pruned weights the sparse kernels never
        // touch — exactly like the direct dense leg in `diff`.
        if probe.iter().all(|v| v.is_finite()) && bits(sp) != bits(de) {
            out.push(Mismatch::new(
                "serve-sparse-vs-dense-bits",
                format!("probe {pi}: served sparse and dense outputs differ"),
            ));
        }
        if bits(sp) != bits(&want) {
            out.push(Mismatch::new(
                "serve-vs-direct-bits",
                format!("probe {pi}: served output differs from direct lane forward"),
            ));
        }
        if *sp_cycles != 0 || *de_cycles != 0 {
            out.push(Mismatch::new(
                "serve-engine-cycles",
                format!(
                    "probe {pi}: engine lanes must report 0 cycles, got sparse {sp_cycles} / dense {de_cycles}"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::build_fc;
    use crate::gen::{self, CaseKind};

    #[test]
    fn served_backends_agree_on_generated_cases() {
        let mut checked = 0;
        for k in 0..32 {
            if let CaseKind::FcNet(c) = gen::generate(20180601, k).kind {
                let art = build_fc(&c).unwrap();
                let m = check_serve(&art, 0xC0FFEE ^ k);
                assert!(m.is_empty(), "case {k}: {m:?}");
                checked += 1;
                if checked == 3 {
                    break; // three cases keep the test fast
                }
            }
        }
        assert_eq!(checked, 3);
    }

    #[test]
    fn poisoned_case_input_voids_only_the_dense_probe() {
        // Regression (seed 777 case 100): the last probe is the case's
        // own input, which may be NaN/inf-poisoned — the served
        // sparse-vs-dense comparison must skip it (dense-contract
        // void), while serve-vs-direct stays exact on every probe.
        use crate::gen::{FcLayerCase, FcNetCase, InputPoison};
        use cs_sparsity::PruneMode;
        let net = FcNetCase {
            layers: vec![FcLayerCase {
                n_in: 16,
                n_out: 8,
                block_in: 4,
                block_out: 8,
                metric: cs_sparsity::coarse::PruneMetric::Average,
                density: 0.5,
                quant_bits: 8,
                bias: false,
                zero_weights: false,
                weight_seed: 9,
                pattern: PruneMode::Coarse,
            }],
            input_seed: 17,
            zero_every: 0,
            poison: InputPoison::NonFinite,
        };
        let art = build_fc(&net).unwrap();
        assert!(art.input[0].is_nan());
        let m = check_serve(&art, 0xBAD_F00D);
        assert!(m.is_empty(), "{m:?}");
    }
}
