//! Checked-in regression corpus.
//!
//! Each entry pins a `(seed, case)` pair that once exercised an
//! interesting edge (or regressed an actual bug) so tier-1 CI replays it
//! forever. Entries are *generated*, not stored: the deterministic
//! generator recreates the exact model from the pair, which keeps the
//! corpus immune to serialization drift.
//!
//! Add entries by running `conformance run`, picking the failing (or
//! newly interesting) index from the report, and appending a line here
//! with a note saying why it earns a slot.

use cs_parallel::ThreadPool;

use crate::gen::{self, CaseKind};
use crate::runner;
use crate::{cluster_check, diff, net_check, registry_check, Fault, Mismatch};

/// One pinned regression case.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Run seed the case was discovered under.
    pub seed: u64,
    /// Case index within that run.
    pub case: u64,
    /// Additionally replay the case through a loopback TCP
    /// [`cs_net::NetServer`] and check socket-path bit-identity
    /// ([`net_check::check_serve_socket`]). Only meaningful for FC
    /// cases — the serving runtime registers FC layers.
    pub socket: bool,
    /// Additionally replay the case through a two-node in-process
    /// cluster and check that orchestrator-routed outputs stay
    /// bit-identical to direct execution
    /// ([`cluster_check::check_serve_cluster`]). FC cases only, like
    /// `socket`.
    pub cluster: bool,
    /// Additionally push the case's compiled layers through the
    /// `cs-registry` CSMR container and a real on-disk store,
    /// demanding byte-exact save → load → save round trips
    /// ([`registry_check::check_store_roundtrip`]). FC cases only.
    pub registry: bool,
    /// Why this entry is pinned.
    pub note: &'static str,
}

/// The pinned regression corpus, replayed by tier-1 tests and CI.
pub const CORPUS: &[CorpusEntry] = &[
    CorpusEntry {
        seed: 42,
        case: 0,
        socket: false,
        cluster: false,
        registry: false,
        note: "first case of the default sweep; canary for generator drift",
    },
    CorpusEntry {
        seed: 42,
        case: 2,
        socket: false,
        cluster: false,
        registry: false,
        note: "LSTM timing lowering and monotonicity invariants (seq 7)",
    },
    CorpusEntry {
        seed: 42,
        case: 3,
        socket: false,
        cluster: false,
        registry: false,
        note: "oversized coarse pruning block (100 > matrix) on a 5x32 layer",
    },
    CorpusEntry {
        seed: 42,
        case: 4,
        socket: false,
        cluster: false,
        registry: false,
        note: "3-layer FC chain with odd widths (5/48/17), zeroed input stripes, \
               and a bank-balanced first layer whose single ragged bank \
               (n_in 5 < bank 16) stays fully dense",
    },
    CorpusEntry {
        seed: 42,
        case: 6,
        socket: false,
        cluster: false,
        registry: false,
        note: "fully dense (density 1.0) edge through the compressed path",
    },
    CorpusEntry {
        seed: 42,
        case: 7,
        socket: false,
        cluster: false,
        registry: false,
        note: "all-zero 2:4 layer with zeroed input stripes; tie-ranked groups \
               must keep the lowest-index pair",
    },
    CorpusEntry {
        seed: 42,
        case: 11,
        socket: false,
        cluster: false,
        registry: false,
        note: "padded k3 conv; pooled conv kernel vs dense conv2d",
    },
    CorpusEntry {
        seed: 42,
        case: 19,
        socket: false,
        cluster: false,
        registry: false,
        note: "near-zero density edge (only the best block survives)",
    },
    CorpusEntry {
        seed: 42,
        case: 22,
        socket: false,
        cluster: false,
        registry: false,
        note: "all-zero weights under both structured patterns (2:4 then \
               bank 4:3) with a NaN/inf-poisoned input; the engine paths \
               must stay bit-identical to each other with the dense legs \
               voided",
    },
    CorpusEntry {
        seed: 42,
        case: 41,
        socket: false,
        cluster: false,
        registry: false,
        note: "-0.0-poisoned input (finite: every leg still runs, and the \
               gate must treat the block as occupied) over two degenerate \
               bank 4:4 layers whose masks degrade to fully dense",
    },
    CorpusEntry {
        seed: 42,
        case: 56,
        socket: false,
        cluster: false,
        registry: false,
        note: "NaN/inf-poisoned input into a degenerate bank 16:16 chain; \
               gated kernels must never skip non-finite blocks and the \
               degenerate bank keeps the full mask",
    },
    CorpusEntry {
        seed: 42,
        case: 63,
        socket: false,
        cluster: false,
        registry: false,
        note: "degenerate bank 16:16 on a 5x5 layer: one ragged bank \
               (n_in 5 < bank 16) and a vacuous k = bank constraint at \
               near-zero density — the mask must normalize to fully dense",
    },
    CorpusEntry {
        seed: 42,
        case: 28,
        socket: false,
        cluster: false,
        registry: false,
        note: "all-zero coarse layer (codebook collapses to [0.0]) and a \
               bank-balanced 16:6 mid-layer in a 5-layer chain",
    },
    CorpusEntry {
        seed: 42,
        case: 9,
        socket: true,
        cluster: true,
        registry: false,
        note: "FC 16x48x8 served over loopback TCP and routed through a two-node \
               cluster; both paths must stay bit-identical to direct execution",
    },
    CorpusEntry {
        seed: 42,
        case: 23,
        socket: true,
        cluster: true,
        registry: false,
        note: "both structured patterns in one chain (ragged bank 8:1 then a \
               fully-dense 2:4 layer) served over loopback TCP and a two-node \
               cluster; structured kernels must stay bit-identical end to end",
    },
    CorpusEntry {
        seed: 42,
        case: 396,
        socket: false,
        cluster: false,
        registry: false,
        note: "NaN/inf poison into a 2:4 layer whose survivors carry exact-zero \
               quantized weights: inf * 0.0 mints a second NaN payload, and the \
               AVX2 strip vs scalar-remainder path split may legally keep \
               different NaN bits — the engine-vs-engine legs must identify \
               all NaN encodings instead of comparing payload bits",
    },
    CorpusEntry {
        seed: 42,
        case: 59,
        socket: false,
        cluster: false,
        registry: true,
        note: "all three container bodies in one chain (coarse, 2:4, bank \
               4:3) over ragged 17x48x24x17 widths with a NaN/inf-poisoned \
               input; the CSMR save->load->save round trip must be byte-\
               exact on every packed-survivor layout at once",
    },
    CorpusEntry {
        seed: 42,
        case: 34,
        socket: false,
        cluster: false,
        registry: true,
        note: "a 0.000-density coarse layer (fully-pruned groups with empty \
               codebooks) chained between 2:4 layers over width-5 raggedness, \
               with a -0.0-poisoned input; the empty-codebook and empty-row \
               container encodings must round trip byte-exactly",
    },
];

/// Replays every corpus entry; returns the entries that now fail.
pub fn replay_corpus(pools: &[ThreadPool]) -> Vec<(CorpusEntry, Vec<Mismatch>)> {
    CORPUS
        .iter()
        .filter_map(|e| {
            let (case, mut mismatches) = runner::check_one(e.seed, e.case, Fault::None, pools);
            if e.socket {
                mismatches.extend(socket_leg(e, &case));
            }
            if e.cluster {
                mismatches.extend(cluster_leg(e, &case));
            }
            if e.registry {
                mismatches.extend(registry_leg(e, &case));
            }
            (!mismatches.is_empty()).then_some((*e, mismatches))
        })
        .collect()
}

/// The loopback-TCP differential leg for `socket: true` entries.
fn socket_leg(e: &CorpusEntry, case: &gen::Case) -> Vec<Mismatch> {
    match &case.kind {
        CaseKind::FcNet(fc) => match diff::build_fc(fc) {
            Ok(art) => net_check::check_serve_socket(&art, e.seed ^ e.case),
            Err(m) => vec![m],
        },
        other => vec![Mismatch::new(
            "corpus-socket-kind",
            format!(
                "socket entry seed {} case {} is a {} case; only FC cases can be served",
                e.seed,
                e.case,
                other.name()
            ),
        )],
    }
}

/// The CSMR container round-trip leg for `registry: true` entries.
fn registry_leg(e: &CorpusEntry, case: &gen::Case) -> Vec<Mismatch> {
    match &case.kind {
        CaseKind::FcNet(fc) => match diff::build_fc(fc) {
            Ok(art) => registry_check::check_store_roundtrip(&art, e.seed, e.case),
            Err(m) => vec![m],
        },
        other => vec![Mismatch::new(
            "corpus-registry-kind",
            format!(
                "registry entry seed {} case {} is a {} case; only FC layers \
                 have a container encoding",
                e.seed,
                e.case,
                other.name()
            ),
        )],
    }
}

/// The orchestrator-routed differential leg for `cluster: true`
/// entries.
fn cluster_leg(e: &CorpusEntry, case: &gen::Case) -> Vec<Mismatch> {
    match &case.kind {
        CaseKind::FcNet(fc) => match diff::build_fc(fc) {
            Ok(art) => cluster_check::check_serve_cluster(&art, e.seed ^ e.case),
            Err(m) => vec![m],
        },
        other => vec![Mismatch::new(
            "corpus-cluster-kind",
            format!(
                "cluster entry seed {} case {} is a {} case; only FC cases can be served",
                e.seed,
                e.case,
                other.name()
            ),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_replays_green() {
        let pools = runner::make_pools();
        let failures = replay_corpus(&pools);
        assert!(
            failures.is_empty(),
            "corpus regressions: {:#?}",
            failures
                .iter()
                .map(|(e, m)| format!("seed {} case {} ({}): {m:?}", e.seed, e.case, e.note))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn corpus_entries_are_unique() {
        for (i, a) in CORPUS.iter().enumerate() {
            for b in &CORPUS[i + 1..] {
                assert!(
                    (a.seed, a.case) != (b.seed, b.case),
                    "duplicate corpus entry seed {} case {}",
                    a.seed,
                    a.case
                );
            }
        }
    }
}
