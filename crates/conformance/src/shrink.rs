//! Built-in case shrinker.
//!
//! When a case fails, replaying the full configuration is rarely the
//! fastest path to a diagnosis — a 4-layer network with awkward blocks
//! obscures whichever single layer actually disagrees. The shrinker
//! greedily applies ordered simplifications (fewer layers → smaller
//! shapes → denser masks → simpler settings), keeping a candidate only
//! if the failure *still reproduces*, so the final case is a local
//! minimum: every remaining feature is load-bearing.
//!
//! Every transformation strictly reduces a well-founded measure (layer
//! count, width sum, flag count), so shrinking terminates without the
//! attempt cap; the cap just bounds worst-case work on slow predicates.
//! Shrinking is deterministic — `conformance replay` reruns it from the
//! regenerated case and arrives at the same minimum.

use cs_sparsity::PruneMode;

use crate::gen::{Case, CaseKind, ConvCase, FcNetCase, LstmTimingCase};

/// Result of shrinking one failing case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized case (still failing).
    pub case: Case,
    /// Simplifications that were adopted.
    pub steps: usize,
    /// Total candidate evaluations (adopted + rejected).
    pub attempts: usize,
}

/// Minimizes `case` under `still_fails`, evaluating at most
/// `max_attempts` candidates.
pub fn shrink(
    case: &Case,
    still_fails: impl Fn(&Case) -> bool,
    max_attempts: usize,
) -> ShrinkOutcome {
    let mut cur = case.clone();
    let mut steps = 0usize;
    let mut attempts = 0usize;
    'outer: loop {
        for cand in candidates(&cur) {
            if attempts >= max_attempts {
                break 'outer;
            }
            attempts += 1;
            if still_fails(&cand) {
                cur = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkOutcome {
        case: cur,
        steps,
        attempts,
    }
}

/// Ordered simplification candidates: structurally smaller first.
fn candidates(case: &Case) -> Vec<Case> {
    let kinds = match &case.kind {
        CaseKind::FcNet(c) => fc_candidates(c)
            .into_iter()
            .map(CaseKind::FcNet)
            .collect::<Vec<_>>(),
        CaseKind::Conv(c) => conv_candidates(c).into_iter().map(CaseKind::Conv).collect(),
        CaseKind::LstmTiming(c) => lstm_candidates(c)
            .into_iter()
            .map(CaseKind::LstmTiming)
            .collect(),
    };
    kinds
        .into_iter()
        .map(|kind| Case {
            seed: case.seed,
            index: case.index,
            kind,
        })
        .collect()
}

fn fc_candidates(c: &FcNetCase) -> Vec<FcNetCase> {
    let mut out = Vec::new();
    // 1. Fewer layers.
    if c.layers.len() > 1 {
        let mut dropped_last = c.clone();
        dropped_last.layers.pop();
        out.push(dropped_last);
        let mut dropped_first = c.clone();
        dropped_first.layers.remove(0);
        out.push(dropped_first);
    }
    // 2. Smaller boundary widths (halved, floor 4), keeping the chain.
    for b in 0..=c.layers.len() {
        let width = if b == 0 {
            c.layers[0].n_in
        } else {
            c.layers[b - 1].n_out
        };
        let smaller = (width / 2).max(4);
        if smaller < width {
            let mut cand = c.clone();
            if b == 0 {
                cand.layers[0].n_in = smaller;
            } else {
                cand.layers[b - 1].n_out = smaller;
                if b < cand.layers.len() {
                    cand.layers[b].n_in = smaller;
                }
            }
            out.push(cand);
        }
    }
    // 3. Denser masks, then simpler settings, one layer at a time.
    for (li, l) in c.layers.iter().enumerate() {
        if l.pattern != PruneMode::Coarse {
            let mut cand = c.clone();
            cand.layers[li].pattern = PruneMode::Coarse;
            out.push(cand);
        }
        if l.density != 1.0 {
            let mut cand = c.clone();
            cand.layers[li].density = 1.0;
            out.push(cand);
        }
        if l.bias {
            let mut cand = c.clone();
            cand.layers[li].bias = false;
            out.push(cand);
        }
        if l.zero_weights {
            let mut cand = c.clone();
            cand.layers[li].zero_weights = false;
            out.push(cand);
        }
        if l.quant_bits != 8 {
            let mut cand = c.clone();
            cand.layers[li].quant_bits = 8;
            out.push(cand);
        }
        if (l.block_in, l.block_out) != (16, 16) {
            let mut cand = c.clone();
            cand.layers[li].block_in = 16;
            cand.layers[li].block_out = 16;
            out.push(cand);
        }
    }
    // 4. Dense input.
    if c.zero_every != 0 {
        let mut cand = c.clone();
        cand.zero_every = 0;
        out.push(cand);
    }
    // 5. Unpoisoned input.
    if c.poison != crate::gen::InputPoison::None {
        let mut cand = c.clone();
        cand.poison = crate::gen::InputPoison::None;
        out.push(cand);
    }
    out
}

fn conv_candidates(c: &ConvCase) -> Vec<ConvCase> {
    let mut out = Vec::new();
    let min_hw = c.k.saturating_sub(2 * c.pad).max(1);
    for (field, value) in [(0, c.h), (1, c.w)] {
        let smaller = (value / 2).max(min_hw);
        if smaller < value {
            let mut cand = c.clone();
            if field == 0 {
                cand.h = smaller;
            } else {
                cand.w = smaller;
            }
            out.push(cand);
        }
    }
    if c.n_fout > 4 {
        let mut cand = c.clone();
        cand.n_fout = (c.n_fout / 2).max(4);
        out.push(cand);
    }
    if c.n_fin > 1 {
        let mut cand = c.clone();
        cand.n_fin = (c.n_fin / 2).max(1);
        out.push(cand);
    }
    if c.density != 1.0 {
        let mut cand = c.clone();
        cand.density = 1.0;
        out.push(cand);
    }
    if c.bias {
        let mut cand = c.clone();
        cand.bias = false;
        out.push(cand);
    }
    if c.quant_bits != 8 {
        let mut cand = c.clone();
        cand.quant_bits = 8;
        out.push(cand);
    }
    out
}

fn lstm_candidates(c: &LstmTimingCase) -> Vec<LstmTimingCase> {
    let mut out = Vec::new();
    if c.seq_len > 1 {
        let mut cand = c.clone();
        cand.seq_len = 1;
        out.push(cand);
    }
    if c.n_hidden > 8 {
        let mut cand = c.clone();
        cand.n_hidden = (c.n_hidden / 2).max(8);
        out.push(cand);
    }
    if c.n_in > 8 {
        let mut cand = c.clone();
        cand.n_in = (c.n_in / 2).max(8);
        out.push(cand);
    }
    if c.static_density != 1.0 {
        let mut cand = c.clone();
        cand.static_density = 1.0;
        out.push(cand);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, CaseKind};

    #[test]
    fn shrinking_an_always_failing_fc_case_reaches_one_small_layer() {
        // Predicate: everything fails. The shrinker should drive any FC
        // case down to a single minimal layer.
        let case = (0..64)
            .map(|k| gen::generate(9, k))
            .find(|c| matches!(&c.kind, CaseKind::FcNet(n) if n.layers.len() > 1))
            .expect("no multi-layer fc case in range");
        let outcome = shrink(&case, |_| true, 500);
        match &outcome.case.kind {
            CaseKind::FcNet(n) => {
                assert_eq!(n.layers.len(), 1);
                assert!(n.layers[0].n_in <= 8);
                assert!(n.layers[0].n_out <= 8);
                assert_eq!(n.layers[0].density, 1.0);
                assert_eq!(n.layers[0].pattern, PruneMode::Coarse);
            }
            other => panic!("kind changed: {other:?}"),
        }
        assert!(outcome.steps > 0);
        assert!(outcome.attempts >= outcome.steps);
    }

    #[test]
    fn shrinking_keeps_the_case_failing_under_a_selective_predicate() {
        // Predicate: fails only while the net has >= 2 layers. The
        // shrinker must stop at exactly 2 layers.
        let case = (0..64)
            .map(|k| gen::generate(17, k))
            .find(|c| matches!(&c.kind, CaseKind::FcNet(n) if n.layers.len() >= 3))
            .expect("no deep fc case in range");
        let fails = |c: &Case| matches!(&c.kind, CaseKind::FcNet(n) if n.layers.len() >= 2);
        let outcome = shrink(&case, fails, 500);
        match &outcome.case.kind {
            CaseKind::FcNet(n) => assert_eq!(n.layers.len(), 2),
            other => panic!("kind changed: {other:?}"),
        }
    }

    #[test]
    fn a_passing_case_shrinks_zero_steps() {
        let case = gen::generate(1, 0);
        let outcome = shrink(&case, |_| false, 500);
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.case, case);
    }

    #[test]
    fn shrinking_terminates_within_the_attempt_cap() {
        for k in 0..16 {
            let case = gen::generate(23, k);
            let outcome = shrink(&case, |_| true, 10_000);
            assert!(outcome.attempts < 10_000, "case {k} hit the cap");
        }
    }
}
