//! Structural invariants over simulator, timing-model, and baseline
//! outputs.
//!
//! Unlike the differential legs (which compare *values* across
//! backends), these checks assert properties every run must satisfy
//! regardless of the case drawn:
//!
//! * functional simulator: cycles are positive, the busy/stall split
//!   covers the elapsed cycles exactly, and the MAC count equals the
//!   NSM's selection count (static survivors that are dynamically
//!   non-zero) times the group's lane count — exactly;
//! * timing model: cycles are monotone in work (halving static density
//!   or sequence length never costs more), and sparse DRAM traffic
//!   stays under the dense configuration's traffic plus the codebook
//!   LUTs the dense run does not ship;
//! * Cambricon-X baseline: its MAC count is `round(dense_macs ×
//!   static_density)` and its cycles ignore dynamic sparsity;
//! * EIE baseline: its reported latency is consistent with the layer's
//!   sparse MAC count under the published 64-PE / 800 MHz / 0.8
//!   efficiency parameters;
//! * `StepIndex` round-trips every compiled layer's mask at 4- and
//!   8-bit step widths, placeholders included.

use cs_accel::config::AccelConfig;
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_accel::timing::{simulate_layer, simulate_layer_dense, LayerTiming, TimingRun};
use cs_baselines::{cambricon_x, eie::EieModel};
use cs_nn::spec::{LayerSpec, LayerSpecKind};
use cs_sparsity::indexing::StepIndex;
use cs_sparsity::Mask;

use crate::diff::{ConvArtifacts, FcArtifacts};
use crate::gen::{ConvCase, FcNetCase, LstmTimingCase};
use crate::Mismatch;

fn check_step_index(mask: &Mask, what: &str, out: &mut Vec<Mismatch>) {
    let expected: Vec<usize> = mask
        .bits()
        .iter()
        .enumerate()
        .filter(|(_, b)| **b)
        .map(|(i, _)| i)
        .collect();
    for bits in [4u8, 8] {
        let enc = StepIndex::encode(mask, bits);
        if enc.positions() != expected {
            out.push(Mismatch::new(
                "step-index-roundtrip",
                format!(
                    "{what}: {bits}-bit decode yields {} positions, mask has {}",
                    enc.positions().len(),
                    expected.len()
                ),
            ));
        }
        if enc.stored_entries() != expected.len() + enc.placeholders() {
            out.push(Mismatch::new(
                "step-index-entries",
                format!(
                    "{what}: {} stored entries vs {} survivors + {} placeholders",
                    enc.stored_entries(),
                    expected.len(),
                    enc.placeholders()
                ),
            ));
        }
    }
}

/// Codebook LUT bytes the timing model charges a quantized run (the
/// dense 16-bit configuration ships none), mirroring
/// [`cs_accel::timing::simulate_layer`].
fn lut_bytes(surviving: u64, weight_bits: u8) -> u64 {
    if weight_bits >= 16 {
        return 0;
    }
    surviving.div_ceil(16_384).max(1) * (1u64 << weight_bits.min(12)) * 2
}

fn check_timing(lt: &LayerTiming, what: &str, out: &mut Vec<Mismatch>) {
    let cfg = AccelConfig::paper_default();
    let run = simulate_layer(&cfg, lt);
    check_timing_run(&run, what, out);

    // Monotone in work: half the static density never costs more.
    let half = LayerTiming {
        static_density: lt.static_density / 2.0,
        ..lt.clone()
    };
    let half_run = simulate_layer(&cfg, &half);
    if half_run.stats.cycles > run.stats.cycles {
        out.push(Mismatch::new(
            "timing-monotone-density",
            format!(
                "{what}: density {:.4} costs {} cycles but {:.4} costs {}",
                half.static_density, half_run.stats.cycles, lt.static_density, run.stats.cycles
            ),
        ));
    }

    // Sparse DRAM traffic bounded by the dense configuration's traffic
    // plus the codebook LUTs the dense run does not ship.
    let dense = simulate_layer_dense(&cfg, lt);
    let bound = dense.stats.dram_read_bytes + lut_bytes(lt.surviving_weights(), lt.weight_bits);
    if run.stats.dram_read_bytes > bound {
        out.push(Mismatch::new(
            "timing-dram-bound",
            format!(
                "{what}: sparse reads {} B exceed dense {} B + LUT bound",
                run.stats.dram_read_bytes, dense.stats.dram_read_bytes
            ),
        ));
    }
    if run.stats.cycles > dense.stats.cycles {
        out.push(Mismatch::new(
            "timing-dense-bound",
            format!(
                "{what}: sparse {} cycles exceed dense {} cycles",
                run.stats.cycles, dense.stats.cycles
            ),
        ));
    }

    // Cambricon-X: MACs follow static density exactly; dynamic sparsity
    // must not change its cycle count.
    let x = cambricon_x::simulate_layer(lt);
    let x_macs = (lt.dense_macs() as f64 * lt.static_density).round() as u64;
    if x.stats.macs != x_macs {
        out.push(Mismatch::new(
            "cambricon-x-macs",
            format!(
                "{what}: model reports {} MACs, expected {x_macs}",
                x.stats.macs
            ),
        ));
    }
    let dyn_flip = LayerTiming {
        dynamic_density: (lt.dynamic_density * 0.5).max(0.01),
        ..lt.clone()
    };
    let x2 = cambricon_x::simulate_layer(&dyn_flip);
    if x2.stats.cycles != x.stats.cycles {
        out.push(Mismatch::new(
            "cambricon-x-dynamic",
            format!(
                "{what}: cycles moved from {} to {} with dynamic density — X has no NSM",
                x.stats.cycles, x2.stats.cycles
            ),
        ));
    }

    // EIE: latency consistent with the sparse MAC count under its
    // published parameters.
    let e = EieModel::paper_default();
    let micros = e.fc_micros(lt);
    let implied = micros * e.pes as f64 * e.efficiency * e.freq_ghz * 1000.0;
    let macs = lt.sparse_macs() as f64;
    if (implied - macs).abs() > 1e-6 * macs.max(1.0) {
        out.push(Mismatch::new(
            "eie-macs",
            format!("{what}: {micros}us implies {implied} MACs, layer has {macs}"),
        ));
    }
}

fn check_timing_run(run: &TimingRun, what: &str, out: &mut Vec<Mismatch>) {
    let s = &run.stats;
    if s.cycles == 0 {
        out.push(Mismatch::new("timing-zero-cycles", what.to_string()));
    }
    if s.compute_busy_cycles + s.dram_stall_cycles != s.cycles {
        out.push(Mismatch::new(
            "timing-busy-stall-split",
            format!(
                "{what}: busy {} + stall {} != cycles {}",
                s.compute_busy_cycles, s.dram_stall_cycles, s.cycles
            ),
        ));
    }
}

/// Invariants for a materialized FC case.
pub fn check_fc(case: &FcNetCase, art: &FcArtifacts) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let accel = Accelerator::new(AccelConfig::paper_default());
    for (li, la) in art.layers.iter().enumerate() {
        let what = format!("fc layer {li}");
        if (la.shared.density() - la.mask.density()).abs() > 1e-9 {
            out.push(Mismatch::new(
                "density-consistency",
                format!(
                    "{what}: shared-index density {:.6} vs mask density {:.6}",
                    la.shared.density(),
                    la.mask.density()
                ),
            ));
        }
        check_step_index(&la.mask, &what, &mut out);

        // Functional-simulator activity invariants on the case input
        // (layer 0 only: later layers' inputs depend on float rounding,
        // so their dynamic-zero sets are not case-determined).
        if li == 0 {
            match accel.run_layer(&la.shared, &art.input, Activation::None) {
                Ok(run) => {
                    let s = &run.stats;
                    if s.cycles == 0 {
                        out.push(Mismatch::new("sim-zero-cycles", what.clone()));
                    }
                    if s.compute_busy_cycles + s.dram_stall_cycles != s.cycles {
                        out.push(Mismatch::new(
                            "sim-busy-stall-split",
                            format!(
                                "{what}: busy {} + stall {} != cycles {}",
                                s.compute_busy_cycles, s.dram_stall_cycles, s.cycles
                            ),
                        ));
                    }
                    let expected_macs: u64 = la
                        .shared
                        .groups
                        .iter()
                        .map(|g| {
                            let selected = g
                                .index
                                .iter()
                                .zip(&art.input)
                                .filter(|(b, x)| **b && **x != 0.0)
                                .count();
                            (selected * g.weights.len()) as u64
                        })
                        .sum();
                    if s.macs != expected_macs {
                        out.push(Mismatch::new(
                            "sim-mac-count",
                            format!(
                                "{what}: simulator executed {} MACs, survivors imply {expected_macs}",
                                s.macs
                            ),
                        ));
                    }
                    let nbin_bound = (la.shared.n_in * accel.config().neuron_bytes) as u64;
                    if s.nbin_peak_bytes > nbin_bound {
                        out.push(Mismatch::new(
                            "sim-nbin-peak",
                            format!(
                                "{what}: NBin peak {} B exceeds whole-input bound {} B",
                                s.nbin_peak_bytes, nbin_bound
                            ),
                        ));
                    }
                }
                Err(e) => out.push(Mismatch::new("sim-error", format!("{what}: {e:?}"))),
            }
        }

        let dynamic = if li == 0 {
            let nz = art.input.iter().filter(|x| **x != 0.0).count();
            (nz as f64 / art.input.len().max(1) as f64).max(0.01)
        } else {
            1.0
        };
        let lt = LayerTiming::fc(
            la.shared.n_in,
            la.shared.n_out,
            la.mask.density().max(1e-6),
            dynamic,
            case.layers[li].quant_bits,
        );
        check_timing(&lt, &what, &mut out);
    }
    out
}

/// Invariants for a materialized conv case.
pub fn check_conv(case: &ConvCase, art: &ConvArtifacts) -> Vec<Mismatch> {
    let mut out = Vec::new();
    check_step_index(&art.mask, "conv", &mut out);
    let inner = art.layer.inner();
    if (inner.density() - art.mask.density()).abs() > 1e-9 {
        out.push(Mismatch::new(
            "density-consistency",
            format!(
                "conv: engine density {:.6} vs mask density {:.6}",
                inner.density(),
                art.mask.density()
            ),
        ));
    }
    let (oh, ow) = match art.geom.output_size(case.h, case.w) {
        Ok(v) => v,
        Err(e) => {
            out.push(Mismatch::new("conv-geometry", format!("{e:?}")));
            return out;
        }
    };
    let lt = LayerTiming::conv(
        case.n_fin,
        case.n_fout,
        case.k,
        oh,
        ow,
        case.h,
        case.w,
        art.mask.density().max(1e-6),
        0.7,
        case.quant_bits,
    );
    // The EIE consistency check is FC-specific but harmless here: it
    // only relates fc_micros to sparse_macs, both defined for any shape.
    check_timing(&lt, "conv", &mut out);
    out
}

/// Invariants for an LSTM timing case (the engines have no recurrent
/// kernel, so these cases exercise the timing stack only).
pub fn check_lstm(case: &LstmTimingCase) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let spec = LayerSpec::new(
        "lstm",
        LayerSpecKind::Lstm {
            n_in: case.n_in,
            n_hidden: case.n_hidden,
            seq_len: case.seq_len,
        },
    );
    let lt = LayerTiming::from_spec(
        &spec,
        case.static_density,
        case.dynamic_density,
        case.weight_bits,
    );
    if lt.n_in != case.n_in + case.n_hidden
        || lt.n_out != 4 * case.n_hidden
        || lt.positions != case.seq_len
    {
        out.push(Mismatch::new(
            "lstm-spec-lowering",
            format!(
                "({}, {}, {}) lowered to n_in {} n_out {} positions {}",
                case.n_in, case.n_hidden, case.seq_len, lt.n_in, lt.n_out, lt.positions
            ),
        ));
    }
    check_timing(&lt, "lstm", &mut out);

    // Monotone in sequence length: half the timesteps never cost more.
    let cfg = AccelConfig::paper_default();
    let full = simulate_layer(&cfg, &lt);
    let short = LayerTiming {
        positions: (lt.positions / 2).max(1),
        input_neurons: lt.input_neurons / 2,
        output_neurons: lt.output_neurons / 2,
        ..lt.clone()
    };
    let short_run = simulate_layer(&cfg, &short);
    if short_run.stats.cycles > full.stats.cycles {
        out.push(Mismatch::new(
            "timing-monotone-seq",
            format!(
                "lstm: {} steps cost {} cycles but {} steps cost {}",
                short.positions, short_run.stats.cycles, lt.positions, full.stats.cycles
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, CaseKind};

    #[test]
    fn lstm_invariants_hold_on_generated_cases() {
        let mut seen = 0;
        for k in 0..128 {
            if let CaseKind::LstmTiming(c) = gen::generate(3, k).kind {
                let m = check_lstm(&c);
                assert!(m.is_empty(), "case {k}: {m:?}");
                seen += 1;
            }
        }
        assert!(seen > 4, "too few LSTM cases: {seen}");
    }

    #[test]
    fn step_index_check_flags_a_corrupted_decode() {
        // Sanity: the checker itself detects a broken mask/positions
        // pairing by construction (encode/decode of a valid mask always
        // agrees, so run it on a real mask and expect silence).
        let mask = Mask::from_bits(
            cs_tensor::Shape::d1(10),
            vec![
                true, false, false, true, true, false, false, false, false, true,
            ],
        )
        .unwrap();
        let mut out = Vec::new();
        check_step_index(&mask, "test", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
