//! Cluster-path conformance: orchestrator-routed vs direct execution.
//!
//! [`check_serve_cluster`] extends the socket differential of
//! [`crate::net_check`] one more hop: the case's model is replicated
//! across a two-node in-process cluster ([`cs_cluster::LocalCluster`] —
//! real TCP, real worker agents, real routing), the same probes are
//! submitted through the **orchestrator**, and the routed outputs must
//! be bit-identical to a direct in-process lane forward on both the
//! Sparse and Dense backends. Replicas are built from the same
//! deterministic artifacts, so whichever node the router picks, the
//! bits must match — which is exactly the property that makes failover
//! transparent to clients. The differential runs once per network data
//! plane (threaded and reactor node frontends), so the transports are
//! held to the same bit-exactness bar as the backends.

use cs_cluster::{LocalCluster, LocalClusterConfig};
use cs_net::{Client, Transport};
use cs_serve::{ExecBackend, ModelRegistry};

use crate::diff::FcArtifacts;
use crate::rng::CaseRng;
use crate::serve_check::{model_from, MODEL};
use crate::Mismatch;

/// Probes per backend for the cluster differential.
const CLUSTER_PROBES: usize = 4;

/// Nodes in the differential cluster (two, so routing has a real
/// choice to make).
const CLUSTER_NODES: usize = 2;

/// Serves the case's layers through a two-node loopback cluster under
/// both engine backends and checks that orchestrator-routed outputs are
/// bit-identical to a direct in-process lane forward.
pub fn check_serve_cluster(art: &FcArtifacts, probe_seed: u64) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let n_in = art.layers[0].shared.n_in;
    let mut rng = CaseRng::from_seed(probe_seed);
    let mut probes: Vec<Vec<f32>> = (0..CLUSTER_PROBES - 1)
        .map(|i| rng.fill_f32(n_in, i + 1))
        .collect();
    probes.push(art.input.clone());

    let lane = model_from(art).sparse_lane();
    for transport in [Transport::Threaded, Transport::Reactor] {
        for backend in [ExecBackend::Sparse, ExecBackend::Dense] {
            let cluster = match LocalCluster::start(
                &LocalClusterConfig {
                    nodes: CLUSTER_NODES,
                    backend,
                    transport,
                    ..LocalClusterConfig::default()
                },
                std::sync::Arc::new(cs_telemetry::NoopRecorder),
                &|_node| {
                    let mut registry = ModelRegistry::new();
                    registry.register(model_from(art))?;
                    Ok(registry)
                },
            ) {
                Ok(c) => c,
                Err(e) => {
                    return vec![Mismatch::new(
                        "cluster-start",
                        format!("{transport} {backend:?}: {e}"),
                    )]
                }
            };
            let mut client = match Client::connect(&cluster.orch_addr()) {
                Ok(c) => c,
                Err(e) => {
                    return vec![Mismatch::new(
                        "cluster-connect",
                        format!("{transport} {backend:?}: {e}"),
                    )]
                }
            };
            for (pi, probe) in probes.iter().enumerate() {
                let want = match lane.forward(probe) {
                    Ok(v) => v,
                    Err(e) => {
                        out.push(Mismatch::new("cluster-lane-error", format!("{e:?}")));
                        return out;
                    }
                };
                match client.request(MODEL, probe) {
                    Ok(resp) => {
                        let got: Vec<u32> = resp.outputs.iter().map(|v| v.to_bits()).collect();
                        let exp: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                        if got != exp {
                            out.push(Mismatch::new(
                                "cluster-vs-direct-bits",
                                format!(
                                    "{transport} {backend:?} probe {pi}: orchestrator-routed \
                                     output differs from direct lane forward (node {:?})",
                                    resp.node
                                ),
                            ));
                        }
                        if !resp.node.starts_with("node-") {
                            out.push(Mismatch::new(
                                "cluster-node-identity",
                                format!(
                                    "{transport} {backend:?} probe {pi}: response carries \
                                     node {:?}, expected a registered cluster identity",
                                    resp.node
                                ),
                            ));
                        }
                    }
                    Err(e) => out.push(Mismatch::new(
                        "cluster-request",
                        format!("{transport} {backend:?} probe {pi}: {e}"),
                    )),
                }
            }
            if let Err(e) = cluster.stop() {
                out.push(Mismatch::new(
                    "cluster-stop",
                    format!("{transport} {backend:?}: {e}"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::build_fc;
    use crate::gen::{self, CaseKind};

    #[test]
    fn cluster_differential_agrees_on_a_generated_case() {
        let fc = (0..32)
            .find_map(|k| match gen::generate(20180601, k).kind {
                CaseKind::FcNet(c) => Some(c),
                _ => None,
            })
            .expect("no FC case in 32 draws");
        let art = build_fc(&fc).unwrap();
        let m = check_serve_cluster(&art, 0xBEEF);
        assert!(m.is_empty(), "{m:?}");
    }
}
