//! Deterministic case generator: `(seed, index) → Case`.
//!
//! One u64 seed drives the whole run; each case index forks its own
//! [`CaseRng`] stream, so any case can be regenerated in isolation with
//! `conformance replay --seed N --case K` — no corpus files, no state.
//!
//! The generator deliberately over-samples the configurations that have
//! historically broken sparse stacks:
//!
//! * widths that are **not** multiples of the 16-lane strip width;
//! * pruning blocks **larger than the matrix** and blocks that do not
//!   divide the layer shape;
//! * target densities at the edges — `≈0%` (the pruner keeps exactly
//!   its one guaranteed block) and `100%` (nothing pruned, but the
//!   whole compressed path still runs);
//! * all-zero weight layers (k-means over a single value);
//! * max- and average-metric pruning, 2/4/8-bit codebooks, and inputs
//!   with exact-zero stripes (dynamic sparsity for the NSM path).

use cs_sparsity::coarse::PruneMetric;
use cs_sparsity::PruneMode;

use crate::rng::CaseRng;

/// Density value standing in for the "0%" edge: the pruner rejects an
/// exact 0.0 target (and always keeps its best block), so this target
/// asks for the minimum it will ever grant.
pub const NEAR_ZERO_DENSITY: f64 = 1e-4;

/// One fully-connected layer's generated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FcLayerCase {
    /// Input width.
    pub n_in: usize,
    /// Output width.
    pub n_out: usize,
    /// Pruning block along the input dimension.
    pub block_in: usize,
    /// Pruning block along the output dimension (also the shared-index
    /// group width, so the mask is shared within every group).
    pub block_out: usize,
    /// Block scoring metric.
    pub metric: PruneMetric,
    /// Target post-pruning density, including the 0%/100% edges.
    pub density: f64,
    /// Codebook index width in bits.
    pub quant_bits: u8,
    /// Whether the layer carries a per-output bias (engine lanes only;
    /// the simulator path has no bias instruction, so biased cases
    /// skip the simulator comparison).
    pub bias: bool,
    /// All-zero weights instead of the gaussian fill.
    pub zero_weights: bool,
    /// Seed for the weight (and bias) fill.
    pub weight_seed: u64,
    /// Pruning pattern. `Coarse` uses `block_in`/`block_out`/`metric`/
    /// `density` above; the structured patterns ignore those fields and
    /// prune to their fixed geometry instead.
    pub pattern: PruneMode,
}

/// Deliberate poison written over the first input elements, aimed at
/// the activation gate's skip-eligibility rule (`+0.0` bits only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputPoison {
    /// Plain generated input.
    None,
    /// `input[0] = -0.0`: finite (every differential leg still runs),
    /// but the gate must treat it as occupied, never skippable.
    NegZero,
    /// `input[0] = NaN`, `input[1] = +inf`: voids the dense-reference
    /// bit contract, so the executor drops the dense and simulator
    /// legs and instead holds the engine paths (serial, pooled, gated)
    /// bit-identical to each other.
    NonFinite,
}

/// A generated FC network: layers chained `n_out[i] == n_in[i+1]`,
/// ReLU between layers, pass-through after the last.
#[derive(Debug, Clone, PartialEq)]
pub struct FcNetCase {
    /// The layers in execution order.
    pub layers: Vec<FcLayerCase>,
    /// Seed for the input fill.
    pub input_seed: u64,
    /// Every `zero_every`-th input is exactly `0.0` (0 = dense input).
    pub zero_every: usize,
    /// Poison written over the input after the fill.
    pub poison: InputPoison,
}

impl FcNetCase {
    /// Whether any layer carries a bias (disables the simulator leg).
    pub fn has_bias(&self) -> bool {
        self.layers.iter().any(|l| l.bias)
    }
}

/// A generated convolutional layer case.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvCase {
    /// Input feature maps.
    pub n_fin: usize,
    /// Output feature maps.
    pub n_fout: usize,
    /// Square kernel size.
    pub k: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Zero padding.
    pub pad: usize,
    /// Pruning block `(b_fin, b_fout, b_x, b_y)`.
    pub block: (usize, usize, usize, usize),
    /// Block scoring metric.
    pub metric: PruneMetric,
    /// Target post-pruning density.
    pub density: f64,
    /// Codebook index width in bits.
    pub quant_bits: u8,
    /// Per-output-map bias.
    pub bias: bool,
    /// Seed for the weight (and bias) fill.
    pub weight_seed: u64,
    /// Seed for the input fill.
    pub input_seed: u64,
}

/// A generated LSTM layer for the timing-model invariant checks (the
/// execution engines have no recurrent kernel, so LSTM cases exercise
/// the simulator/baseline timing stack only).
#[derive(Debug, Clone, PartialEq)]
pub struct LstmTimingCase {
    /// Input feature width.
    pub n_in: usize,
    /// Hidden state width.
    pub n_hidden: usize,
    /// Unrolled sequence length.
    pub seq_len: usize,
    /// Static synapse density.
    pub static_density: f64,
    /// Dynamic input density.
    pub dynamic_density: f64,
    /// Stored weight width in bits.
    pub weight_bits: u8,
}

/// What a case exercises.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseKind {
    /// Differential FC network (all backends).
    FcNet(FcNetCase),
    /// Differential conv layer (dense vs engine, serial and pooled).
    Conv(ConvCase),
    /// Timing-model invariants only.
    LstmTiming(LstmTimingCase),
}

impl CaseKind {
    /// Short kind label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            CaseKind::FcNet(_) => "fc",
            CaseKind::Conv(_) => "conv",
            CaseKind::LstmTiming(_) => "lstm",
        }
    }

    /// Layer count (1 for single-layer kinds) — what the shrinker
    /// minimizes first.
    pub fn layer_count(&self) -> usize {
        match self {
            CaseKind::FcNet(c) => c.layers.len(),
            _ => 1,
        }
    }

    /// One-line human summary for reports and replay output.
    pub fn summary(&self) -> String {
        match self {
            CaseKind::FcNet(c) => {
                let dims: Vec<String> = std::iter::once(c.layers[0].n_in)
                    .chain(c.layers.iter().map(|l| l.n_out))
                    .map(|d| d.to_string())
                    .collect();
                let dens: Vec<String> = c
                    .layers
                    .iter()
                    .map(|l| format!("{:.3}", l.density))
                    .collect();
                let pats: Vec<String> =
                    c.layers.iter().map(|l| pattern_label(&l.pattern)).collect();
                let poison = match c.poison {
                    InputPoison::None => "",
                    InputPoison::NegZero => " poison -0.0",
                    InputPoison::NonFinite => " poison nan/inf",
                };
                format!(
                    "fc net {} densities [{}] blocks {:?} patterns [{}] zero_every {}{poison}",
                    dims.join("x"),
                    dens.join(" "),
                    c.layers
                        .iter()
                        .map(|l| (l.block_in, l.block_out))
                        .collect::<Vec<_>>(),
                    pats.join(" "),
                    c.zero_every
                )
            }
            CaseKind::Conv(c) => format!(
                "conv {}→{} k{} {}x{} pad {} block {:?} density {:.3}",
                c.n_fin, c.n_fout, c.k, c.h, c.w, c.pad, c.block, c.density
            ),
            CaseKind::LstmTiming(c) => format!(
                "lstm {}→{} seq {} static {:.3} dynamic {:.3} bits {}",
                c.n_in, c.n_hidden, c.seq_len, c.static_density, c.dynamic_density, c.weight_bits
            ),
        }
    }
}

/// Short label for a pruning pattern in case summaries.
fn pattern_label(p: &PruneMode) -> String {
    match p {
        PruneMode::BankBalanced { bank, k } => format!("bank{bank}:{k}"),
        other => other.name().to_string(),
    }
}

/// One generated conformance case.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Run seed the case was generated from.
    pub seed: u64,
    /// Case index within the run.
    pub index: u64,
    /// The generated configuration.
    pub kind: CaseKind,
}

/// Width pool: mixes strip-width multiples with awkward odd sizes.
const WIDTHS: [usize; 8] = [5, 8, 12, 16, 17, 24, 32, 48];
/// Block pool: includes 100 (always larger than any generated matrix)
/// and sizes that do not divide the widths above.
const BLOCKS: [usize; 8] = [1, 2, 3, 4, 8, 16, 24, 100];
const QUANT_BITS: [u8; 3] = [2, 4, 8];

fn density(rng: &mut CaseRng) -> f64 {
    let roll = rng.f64();
    if roll < 0.10 {
        NEAR_ZERO_DENSITY
    } else if roll < 0.25 {
        1.0
    } else {
        0.1 + 0.8 * rng.f64()
    }
}

fn metric(rng: &mut CaseRng) -> PruneMetric {
    if rng.chance(0.5) {
        PruneMetric::Average
    } else {
        PruneMetric::Max
    }
}

/// Generates case `index` of run `seed`. Pure: the same pair always
/// yields the same case on every platform.
pub fn generate(seed: u64, index: u64) -> Case {
    let mut rng = CaseRng::new(seed, index);
    let kind = match rng.range(0, 10) {
        0..=5 => CaseKind::FcNet(gen_fc(&mut rng)),
        6..=7 => CaseKind::Conv(gen_conv(&mut rng)),
        _ => CaseKind::LstmTiming(gen_lstm(&mut rng)),
    };
    Case { seed, index, kind }
}

fn gen_fc(rng: &mut CaseRng) -> FcNetCase {
    let depth = rng.range(1, 5) as usize;
    // Boundary widths: n_in of the first layer plus each layer's n_out.
    let widths: Vec<usize> = (0..=depth).map(|_| *rng.pick(&WIDTHS)).collect();
    let mut layers: Vec<FcLayerCase> = (0..depth)
        .map(|i| FcLayerCase {
            n_in: widths[i],
            n_out: widths[i + 1],
            block_in: *rng.pick(&BLOCKS),
            block_out: *rng.pick(&BLOCKS),
            metric: metric(rng),
            density: density(rng),
            quant_bits: *rng.pick(&QUANT_BITS),
            bias: rng.chance(0.2),
            zero_weights: rng.chance(0.07),
            weight_seed: rng.next_u64(),
            pattern: PruneMode::Coarse,
        })
        .collect();
    let input_seed = rng.next_u64();
    let zero_every = if rng.chance(0.4) {
        rng.range(2, 6) as usize
    } else {
        0
    };
    // Pattern draws come after every legacy draw so historical
    // `(seed, index)` pairs keep their width/block/density/seed values.
    for l in &mut layers {
        l.pattern = pattern(rng);
    }
    // Gate edge draws, again strictly after everything above.
    let poison = match rng.range(0, 10) {
        0 => InputPoison::NonFinite,
        1 => InputPoison::NegZero,
        _ => InputPoison::None,
    };
    // Degenerate-bank draw: sometimes force `k = bank`, so the
    // bank-balanced constraint is vacuous and the mask degrades to
    // fully dense (the format must normalize, not reject).
    if rng.chance(0.2) {
        for l in &mut layers {
            if let PruneMode::BankBalanced { bank, .. } = l.pattern {
                l.pattern = PruneMode::BankBalanced { bank, k: bank };
            }
        }
    }
    FcNetCase {
        layers,
        input_seed,
        zero_every,
        poison,
    }
}

/// Bank pool for bank-balanced cases: divides some widths (8, 16),
/// leaves ragged tail banks on the odd ones (5, 12, 17, 24).
const BANKS: [usize; 3] = [4, 8, 16];

fn pattern(rng: &mut CaseRng) -> PruneMode {
    let roll = rng.f64();
    if roll < 0.6 {
        PruneMode::Coarse
    } else if roll < 0.8 {
        PruneMode::TwoFour
    } else {
        let bank = *rng.pick(&BANKS);
        let k = rng.range(1, bank as u64) as usize;
        PruneMode::BankBalanced { bank, k }
    }
}

fn gen_conv(rng: &mut CaseRng) -> ConvCase {
    let k: usize = if rng.chance(0.3) { 1 } else { 3 };
    let n_fin = rng.range(1, 4) as usize;
    let n_fout = *rng.pick(&[4usize, 8, 12, 16, 32]);
    let pad = rng.range(0, 2) as usize;
    // Output size must stay positive: h + 2·pad ≥ k.
    let min_hw = k.saturating_sub(2 * pad).max(1);
    let h = min_hw + rng.range(1, 8) as usize;
    let w = min_hw + rng.range(1, 8) as usize;
    let b_fout = *rng.pick(&[4usize, 8, 16, 100]);
    let b_fin = if rng.chance(0.5) { 1 } else { 100 };
    let b_x = if rng.chance(0.5) { 1 } else { k };
    let b_y = if rng.chance(0.5) { 1 } else { k };
    ConvCase {
        n_fin,
        n_fout,
        k,
        h,
        w,
        pad,
        block: (b_fin, b_fout, b_x, b_y),
        metric: metric(rng),
        density: density(rng),
        quant_bits: *rng.pick(&QUANT_BITS),
        bias: rng.chance(0.25),
        weight_seed: rng.next_u64(),
        input_seed: rng.next_u64(),
    }
}

fn gen_lstm(rng: &mut CaseRng) -> LstmTimingCase {
    LstmTimingCase {
        n_in: *rng.pick(&[8usize, 16, 32, 64]),
        n_hidden: *rng.pick(&[8usize, 16, 32, 64]),
        seq_len: rng.range(1, 8) as usize,
        static_density: 0.05 + 0.95 * rng.f64(),
        dynamic_density: 0.05 + 0.95 * rng.f64(),
        weight_bits: *rng.pick(&[4u8, 8, 16]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for k in 0..64 {
            assert_eq!(generate(42, k), generate(42, k));
        }
        assert_ne!(generate(42, 0), generate(42, 1));
        assert_ne!(generate(42, 0), generate(43, 0));
    }

    #[test]
    fn fc_layers_chain_widths() {
        for k in 0..256 {
            if let CaseKind::FcNet(c) = generate(7, k).kind {
                for pair in c.layers.windows(2) {
                    assert_eq!(pair[0].n_out, pair[1].n_in);
                }
            }
        }
    }

    #[test]
    fn generator_covers_the_edge_configurations() {
        let mut near_zero = 0usize;
        let mut full = 0usize;
        let mut oversize_block = 0usize;
        let mut zero_weights = 0usize;
        let mut two_four = 0usize;
        let mut bank_balanced = 0usize;
        let mut ragged_structured = 0usize;
        let mut zero_structured = 0usize;
        let mut degenerate_bank = 0usize;
        let mut neg_zero = 0usize;
        let mut non_finite = 0usize;
        let mut kinds = [0usize; 3];
        for k in 0..512 {
            match generate(42, k).kind {
                CaseKind::FcNet(c) => {
                    kinds[0] += 1;
                    match c.poison {
                        InputPoison::None => {}
                        InputPoison::NegZero => neg_zero += 1,
                        InputPoison::NonFinite => non_finite += 1,
                    }
                    for l in &c.layers {
                        if l.density == NEAR_ZERO_DENSITY {
                            near_zero += 1;
                        }
                        if l.density == 1.0 {
                            full += 1;
                        }
                        if l.block_in > l.n_in || l.block_out > l.n_out {
                            oversize_block += 1;
                        }
                        if l.zero_weights {
                            zero_weights += 1;
                        }
                        let bank = match l.pattern {
                            PruneMode::TwoFour => {
                                two_four += 1;
                                Some(4)
                            }
                            PruneMode::BankBalanced { bank, k } => {
                                bank_balanced += 1;
                                if k == bank {
                                    degenerate_bank += 1;
                                }
                                Some(bank)
                            }
                            PruneMode::Coarse => None,
                        };
                        if let Some(bank) = bank {
                            if l.n_in % bank != 0 {
                                ragged_structured += 1;
                            }
                            if l.zero_weights {
                                zero_structured += 1;
                            }
                        }
                    }
                }
                CaseKind::Conv(_) => kinds[1] += 1,
                CaseKind::LstmTiming(_) => kinds[2] += 1,
            }
        }
        assert!(near_zero > 10, "near-zero densities: {near_zero}");
        assert!(full > 20, "full densities: {full}");
        assert!(oversize_block > 50, "oversize blocks: {oversize_block}");
        assert!(zero_weights > 5, "all-zero layers: {zero_weights}");
        assert!(two_four > 40, "2:4 layers: {two_four}");
        assert!(bank_balanced > 40, "bank-balanced layers: {bank_balanced}");
        assert!(
            ragged_structured > 20,
            "structured layers with ragged widths: {ragged_structured}"
        );
        assert!(
            zero_structured > 1,
            "structured layers with all-zero weights: {zero_structured}"
        );
        assert!(
            degenerate_bank > 5,
            "degenerate k=bank layers: {degenerate_bank}"
        );
        assert!(neg_zero > 10, "-0.0-poisoned nets: {neg_zero}");
        assert!(non_finite > 10, "nan/inf-poisoned nets: {non_finite}");
        assert!(kinds.iter().all(|c| *c > 20), "kind mix: {kinds:?}");
    }

    #[test]
    fn conv_geometry_is_always_valid() {
        for k in 0..256 {
            if let CaseKind::Conv(c) = generate(11, k).kind {
                assert!(c.h + 2 * c.pad >= c.k);
                assert!(c.w + 2 * c.pad >= c.k);
            }
        }
    }
}
