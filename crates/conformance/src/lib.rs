//! Cross-backend differential conformance harness (the correctness
//! backbone for the execution stack).
//!
//! The repo has three ways to execute the same compressed model — the
//! dense reference kernels, the block-CSR sparse engine, and the
//! cycle-approximate Cambricon-S simulator — plus six baseline
//! accelerator models. This crate cross-checks them continuously with
//! generator-driven cases instead of hand-picked examples:
//!
//! * [`gen`] — a deterministic model/config generator: every `(seed,
//!   case-index)` pair expands to one random FC / conv / LSTM case with
//!   coarse-pruning settings (block shapes, max/avg metric, densities
//!   including the ~0% and 100% edges) and quantization widths.
//! * [`diff`] — the differential executor: runs each case through the
//!   Dense reference, the sparse engine (serial and pooled at 1/2/4
//!   threads), and the simulator, asserting bit-identity where the
//!   equivalence contract promises it and bounded error where it
//!   doesn't (see `DESIGN.md` §9 for the contract table).
//! * [`invariants`] — structural checks over simulator and baseline
//!   outputs: cycles are positive and monotone in work, sparse DRAM
//!   traffic stays under the dense bound, EIE / Cambricon-X MAC counts
//!   are consistent with survivor counts, and `StepIndex` round-trips
//!   on every compiled layer's mask.
//! * [`shrink`] — a built-in shrinker that minimizes a failing case
//!   (fewer layers → smaller shapes → denser mask) and prints a
//!   one-line `conformance replay --seed N --case K` reproduction.
//! * [`serve_check`] — backend-agreement check on *served* outputs: the
//!   same inputs through `cs-serve` workers on the Sparse and Dense
//!   backends must come back bit-identical.
//! * [`net_check`] — the network-path extension of the same contract:
//!   a seed-replayable fuzz sweep over the `cs-net` frame codec
//!   (`conformance net-fuzz`), plus a socket differential that serves a
//!   case over loopback TCP and demands bit-identity with a direct
//!   in-process lane forward.
//! * [`registry_check`] — the storage-path extension: a seed-replayable
//!   fuzz sweep over the `cs-registry` CSMR container codec
//!   (`conformance registry-fuzz`) — byte-exact round trips including
//!   NaN/±0.0 codebook payloads, plus hostile mutations that must fail
//!   with typed errors — and an on-disk save→load→save leg for
//!   `registry: true` corpus entries.
//! * [`cluster_check`] — one hop further out: the case replicated
//!   across a two-node in-process cluster, probed through the
//!   `cs-cluster` orchestrator, with the same bit-identity demand on
//!   the routed outputs.
//! * [`runner`] — the orchestrator behind the `conformance` bin
//!   (`run` / `replay` / `corpus` subcommands), with cs-telemetry
//!   counters for cases run, mismatches, and shrink steps.
//! * [`corpus`] — the checked-in regression corpus of previously-shrunk
//!   or edge-rich `(seed, case)` pairs, replayed in tier-1 tests.
//!
//! # Example
//!
//! ```
//! use cs_conformance::runner::{self, RunConfig};
//!
//! let report = runner::run(&RunConfig {
//!     cases: 8,
//!     seed: 42,
//!     ..RunConfig::default()
//! });
//! assert_eq!(report.failures.len(), 0);
//! ```

pub mod cluster_check;
pub mod corpus;
pub mod diff;
pub mod gen;
pub mod invariants;
pub mod net_check;
pub mod registry_check;
pub mod rng;
pub mod runner;
pub mod serve_check;
pub mod shrink;

/// A deliberately-injected engine defect, used to exercise the harness
/// itself: the acceptance test flips the sparse kernel's accumulation
/// order and demands that the harness catches it, shrinks it, and
/// prints a replay command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No fault: production kernels as shipped.
    #[default]
    None,
    /// Accumulate each strip's surviving terms in *descending* input
    /// order. The dense reference adds them ascending, so the float
    /// rounding differs and bit-identity breaks on almost every case.
    ReverseAccumulation,
}

impl Fault {
    /// Parses the `--inject` CLI spelling.
    pub fn parse(s: &str) -> Option<Fault> {
        match s {
            "none" => Some(Fault::None),
            "reverse-accumulation" => Some(Fault::ReverseAccumulation),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::ReverseAccumulation => "reverse-accumulation",
        }
    }
}

/// One contract violation found by a check, with enough detail to
/// diagnose without re-running.
#[derive(Debug, Clone, PartialEq)]
pub struct Mismatch {
    /// Which check failed (e.g. `fc-dense-vs-sparse-bits`).
    pub check: String,
    /// Human-readable specifics: indices, expected vs actual values.
    pub detail: String,
}

impl Mismatch {
    /// Creates a mismatch record.
    pub fn new(check: impl Into<String>, detail: impl Into<String>) -> Self {
        Mismatch {
            check: check.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}
