//! The orchestrator behind the `conformance` bin.
//!
//! [`run`] drives a whole conformance sweep: generate each case from
//! `(seed, index)`, push it through the differential executor and the
//! invariant checkers, periodically close the loop through the serving
//! runtime, shrink every failure to a local minimum, and report each
//! with a one-line replay command. Progress and outcome counters are
//! recorded through `cs-telemetry` and exported as Prometheus text in
//! the report.

use std::sync::Arc;

use cs_parallel::ThreadPool;
use cs_telemetry::{Labels, Recorder, Registry};

use crate::gen::{self, Case, CaseKind};
use crate::shrink::{self, ShrinkOutcome};
use crate::{diff, serve_check, Fault, Mismatch};

/// Thread counts the pooled engine leg runs at.
pub const POOL_THREADS: [usize; 3] = [1, 2, 4];

/// Candidate-evaluation budget for the shrinker, per failing case.
pub const SHRINK_ATTEMPTS: usize = 200;

/// Configuration of one conformance sweep.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Run seed; every case is `generate(seed, index)`.
    pub seed: u64,
    /// Deliberately injected engine defect (acceptance testing of the
    /// harness itself).
    pub fault: Fault,
    /// Check served-output agreement on every n-th FC case (0 = never).
    pub serve_every: u64,
    /// Minimize failing cases before reporting them.
    pub shrink: bool,
    /// Stop the sweep after this many failing cases (0 = no limit).
    pub max_failures: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cases: 100,
            seed: 42,
            fault: Fault::None,
            serve_every: 25,
            shrink: true,
            max_failures: 8,
        }
    }
}

/// A minimized reproduction of a failure.
#[derive(Debug, Clone)]
pub struct ShrunkCase {
    /// One-line summary of the minimized case.
    pub summary: String,
    /// Layer count of the minimized case.
    pub layers: usize,
    /// Adopted simplification steps.
    pub steps: usize,
    /// Candidate evaluations spent.
    pub attempts: usize,
    /// The violations the minimized case still exhibits.
    pub mismatches: Vec<Mismatch>,
}

/// One failing case with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Case index within the run.
    pub index: u64,
    /// Case kind (`fc` / `conv` / `lstm`).
    pub kind: &'static str,
    /// One-line summary of the original case.
    pub summary: String,
    /// All violations the original case exhibited.
    pub mismatches: Vec<Mismatch>,
    /// The minimized reproduction, when shrinking was enabled.
    pub shrunk: Option<ShrunkCase>,
    /// Copy-pastable reproduction command.
    pub replay: String,
}

/// Outcome counters of a sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCounters {
    /// Cases generated and checked.
    pub cases_run: u64,
    /// Individual contract violations found (before shrinking).
    pub mismatches: u64,
    /// Adopted shrink steps across all failures.
    pub shrink_steps: u64,
    /// Served-backend agreement checks performed.
    pub serve_checks: u64,
}

/// Result of [`run`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Cases checked.
    pub cases: u64,
    /// Failing cases, in discovery order.
    pub failures: Vec<CaseFailure>,
    /// Outcome counters.
    pub counters: RunCounters,
    /// Prometheus-text export of the run's telemetry.
    pub telemetry: String,
}

impl Report {
    /// Renders the human-readable report the bin prints.
    pub fn render(&self) -> String {
        let mut s = format!(
            "conformance: {} cases, {} failing, {} mismatches, {} serve checks\n",
            self.counters.cases_run,
            self.failures.len(),
            self.counters.mismatches,
            self.counters.serve_checks,
        );
        for f in &self.failures {
            s.push_str(&format!(
                "\nFAIL case {} [{}]: {}\n",
                f.index, f.kind, f.summary
            ));
            for m in &f.mismatches {
                s.push_str(&format!("  {m}\n"));
            }
            if let Some(sh) = &f.shrunk {
                s.push_str(&format!(
                    "  shrunk ({} steps, {} attempts) to {} layer(s): {}\n",
                    sh.steps, sh.attempts, sh.layers, sh.summary
                ));
                for m in &sh.mismatches {
                    s.push_str(&format!("    {m}\n"));
                }
            }
            s.push_str(&format!("  replay: {}\n", f.replay));
        }
        s
    }
}

/// The replay command printed for a failure.
pub fn replay_command(seed: u64, index: u64, fault: Fault) -> String {
    let mut cmd = format!("conformance replay --seed {seed} --case {index}");
    if fault != Fault::None {
        cmd.push_str(&format!(" --inject {}", fault.as_str()));
    }
    cmd
}

/// Checks one `(seed, index)` case, returning it with its violations.
pub fn check_one(
    seed: u64,
    index: u64,
    fault: Fault,
    pools: &[ThreadPool],
) -> (Case, Vec<Mismatch>) {
    let case = gen::generate(seed, index);
    let mismatches = diff::check_case(&case, fault, pools);
    (case, mismatches)
}

/// Thread pools for the pooled engine legs ([`POOL_THREADS`]).
pub fn make_pools() -> Vec<ThreadPool> {
    POOL_THREADS.iter().map(|t| ThreadPool::new(*t)).collect()
}

/// Runs a conformance sweep.
pub fn run(cfg: &RunConfig) -> Report {
    let pools = make_pools();
    let registry = Arc::new(Registry::new());
    let c_cases = registry.counter(
        "conformance_cases_total",
        "Cases generated and checked",
        Labels::new(),
    );
    let c_mismatches = registry.counter(
        "conformance_mismatches_total",
        "Contract violations found",
        Labels::new(),
    );
    let c_failed = registry.counter(
        "conformance_failed_cases_total",
        "Cases with at least one violation",
        Labels::new(),
    );
    let c_shrink = registry.counter(
        "conformance_shrink_steps_total",
        "Adopted shrinker simplifications",
        Labels::new(),
    );
    let c_serve = registry.counter(
        "conformance_serve_checks_total",
        "Served-backend agreement checks",
        Labels::new(),
    );

    let mut counters = RunCounters::default();
    let mut failures = Vec::new();
    for index in 0..cfg.cases {
        let (case, mut mismatches) = check_one(cfg.seed, index, cfg.fault, &pools);
        counters.cases_run += 1;
        c_cases.inc();

        // Periodically close the loop through the serving runtime.
        if cfg.serve_every > 0 && index % cfg.serve_every == 0 {
            if let CaseKind::FcNet(fc) = &case.kind {
                if let Ok(art) = diff::build_fc(fc) {
                    counters.serve_checks += 1;
                    c_serve.inc();
                    mismatches.extend(serve_check::check_serve(&art, cfg.seed ^ index));
                }
            }
        }

        if mismatches.is_empty() {
            continue;
        }
        counters.mismatches += mismatches.len() as u64;
        c_mismatches.add(mismatches.len() as u64);
        c_failed.inc();

        let shrunk = cfg.shrink.then(|| {
            let outcome: ShrinkOutcome = shrink::shrink(
                &case,
                |cand| !diff::check_case(cand, cfg.fault, &pools).is_empty(),
                SHRINK_ATTEMPTS,
            );
            counters.shrink_steps += outcome.steps as u64;
            c_shrink.add(outcome.steps as u64);
            ShrunkCase {
                summary: outcome.case.kind.summary(),
                layers: outcome.case.kind.layer_count(),
                steps: outcome.steps,
                attempts: outcome.attempts,
                mismatches: diff::check_case(&outcome.case, cfg.fault, &pools),
            }
        });

        failures.push(CaseFailure {
            index,
            kind: case.kind.name(),
            summary: case.kind.summary(),
            mismatches,
            shrunk,
            replay: replay_command(cfg.seed, index, cfg.fault),
        });
        if cfg.max_failures > 0 && failures.len() >= cfg.max_failures {
            break;
        }
    }

    Report {
        cases: counters.cases_run,
        failures,
        counters,
        telemetry: registry.prometheus_text().unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CaseKind;

    #[test]
    fn a_small_clean_sweep_reports_no_failures() {
        let report = run(&RunConfig {
            cases: 12,
            seed: 42,
            serve_every: 6,
            ..RunConfig::default()
        });
        assert_eq!(report.cases, 12);
        assert!(report.failures.is_empty(), "{}", report.render());
        assert_eq!(report.counters.mismatches, 0);
        assert!(report.counters.serve_checks >= 1);
        assert!(report.telemetry.contains("conformance_cases_total 12"));
    }

    #[test]
    fn sweeps_are_deterministic() {
        let cfg = RunConfig {
            cases: 6,
            seed: 7,
            serve_every: 0,
            ..RunConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.counters.mismatches, b.counters.mismatches);
    }

    #[test]
    fn injected_fault_is_caught_and_shrunk_to_a_tiny_reproduction() {
        // The acceptance gate: a flipped accumulation order must be
        // detected, minimized to <= 2 layers, and reported with a
        // replay command.
        let pools = make_pools();
        let seed = 42u64;
        let index = (0..64)
            .find(|k| {
                let (case, m) = check_one(seed, *k, Fault::ReverseAccumulation, &pools);
                matches!(case.kind, CaseKind::FcNet(_)) && !m.is_empty()
            })
            .expect("reverse accumulation escaped 64 cases");
        let report = run(&RunConfig {
            cases: index + 1,
            seed,
            fault: Fault::ReverseAccumulation,
            serve_every: 0,
            max_failures: 1,
            ..RunConfig::default()
        });
        assert_eq!(report.failures.len(), 1, "{}", report.render());
        let f = &report.failures[0];
        // Poison-input cases catch the reversed kernel on the
        // engine-vs-engine leg instead of the dense one.
        assert!(
            f.mismatches
                .iter()
                .any(|m| m.check == "fc-dense-vs-sparse-bits"
                    || m.check == "fc-pooled-vs-engine-bits")
        );
        assert_eq!(
            f.replay,
            format!(
                "conformance replay --seed {seed} --case {} --inject reverse-accumulation",
                f.index
            )
        );
        let sh = f.shrunk.as_ref().expect("shrinking was enabled");
        assert!(
            sh.layers <= 2,
            "shrunk case still has {} layers: {}",
            sh.layers,
            sh.summary
        );
        assert!(!sh.mismatches.is_empty(), "shrunk case no longer fails");
    }
}
