//! Network-path conformance: codec fuzzing and the socket differential.
//!
//! Two checks close the loop through `cs-net`:
//!
//! * [`fuzz_codec`] — a seed-replayable sweep over the frame codec.
//!   Every case builds a random valid frame (ids across the u64 range,
//!   model names with multi-byte UTF-8, f32 payloads drawn from raw bit
//!   patterns so NaNs, infinities and both zeros appear) and demands a
//!   byte-exact `encode → decode → encode` round trip (byte-level, so
//!   NaN payloads cannot hide behind `PartialEq`). It then mutates the
//!   encoding — truncations, bit flips, hostile length prefixes,
//!   appended junk — and demands the decoder returns a value (`Ok` or a
//!   typed [`WireError`]) without panicking and without allocating past
//!   the payload cap. Every byte stream — valid and mutated — is
//!   additionally replayed through the reactor's incremental
//!   [`FrameAssembler`] under seeded random chunking: same frames, the
//!   same typed error, no panic, and buffering bounded by one maximal
//!   frame, so the two data planes agree even on hostile input.
//! * [`check_serve_socket`] — the served-output differential of
//!   [`crate::serve_check`] run over real loopback TCP: the same probes
//!   through a [`cs_net::NetServer`] on the Sparse and Dense backends,
//!   over both the threaded and reactor transports, must be
//!   bit-identical to a direct in-process lane forward. The wire
//!   format's f32-bits encoding makes this exact, and the corpus pins
//!   one such case forever.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cs_net::wire::{ErrorCode, Frame, WireError, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use cs_net::{Client, FrameAssembler, NetConfig, NetServer, Transport};
use cs_serve::{ExecBackend, ModelRegistry, ServeConfig, Server};
use cs_telemetry::{MonotonicClock, Registry};

use crate::diff::FcArtifacts;
use crate::rng::CaseRng;
use crate::serve_check::{model_from, MODEL};
use crate::Mismatch;

/// Probes per backend for the socket differential.
const SOCKET_PROBES: usize = 4;

/// Builds a random valid frame from the case's RNG stream.
fn gen_frame(rng: &mut CaseRng) -> Frame {
    let id = rng.next_u64();
    fn gen_string(rng: &mut CaseRng) -> String {
        const ALPHABET: [&str; 12] = [
            "a", "z", "0", "_", "-", ".", "µ", "Ω", "日", "🦀", " ", "\"",
        ];
        let len = rng.range(0, 24);
        (0..len).map(|_| *rng.pick(&ALPHABET)).collect()
    }
    fn gen_f32s(rng: &mut CaseRng) -> Vec<f32> {
        let len = rng.range(0, 64) as usize;
        (0..len)
            .map(|_| {
                if rng.chance(0.25) {
                    // Special values from raw bit patterns: NaN payloads,
                    // infinities, subnormals, negative zero.
                    f32::from_bits(rng.next_u64() as u32)
                } else {
                    (rng.f64() - 0.5) as f32
                }
            })
            .collect()
    }
    fn gen_strings(rng: &mut CaseRng) -> Vec<String> {
        let len = rng.range(0, 5);
        (0..len)
            .map(|_| {
                const ALPHABET: [&str; 12] = [
                    "a", "z", "0", "_", "-", ".", "µ", "Ω", "日", "🦀", " ", "\"",
                ];
                let len = rng.range(0, 24);
                (0..len).map(|_| *rng.pick(&ALPHABET)).collect()
            })
            .collect()
    }
    match rng.range(0, 18) {
        0 => Frame::Request {
            id,
            model: gen_string(rng),
            tenant: gen_string(rng),
            input: gen_f32s(rng),
        },
        1 => Frame::Response {
            id,
            model: gen_string(rng),
            outputs: gen_f32s(rng),
            cycles: rng.next_u64(),
            energy_pj: rng.f64() * 1e12,
            batch_size: rng.next_u64() as u32,
            worker: rng.next_u64() as u32,
            latency_us: rng.next_u64(),
            node: gen_string(rng),
        },
        2 => Frame::Error {
            id,
            code: *rng.pick(&[
                ErrorCode::UnknownModel,
                ErrorCode::ShapeMismatch,
                ErrorCode::Overloaded,
                ErrorCode::ShuttingDown,
                ErrorCode::WorkerLost,
                ErrorCode::Internal,
                ErrorCode::Malformed,
                ErrorCode::ConnectionLimit,
                ErrorCode::NoReplica,
                ErrorCode::ModelNotFound,
                ErrorCode::VersionMismatch,
                ErrorCode::RegistryFull,
            ]),
            tenant: gen_string(rng),
            detail: gen_string(rng),
        },
        3 => Frame::Ping { id },
        4 => Frame::Pong { id },
        5 => Frame::Shutdown { id },
        6 => Frame::ShutdownAck { id },
        7 => Frame::Query {
            id,
            model: gen_string(rng),
        },
        8 => Frame::Info {
            id,
            model: gen_string(rng),
            n_in: rng.next_u64() as u32,
            n_out: rng.next_u64() as u32,
        },
        9 => Frame::Register {
            id,
            worker: gen_string(rng),
            addr: gen_string(rng),
            models: gen_strings(rng),
        },
        10 => Frame::RegisterAck {
            id,
            heartbeat_ms: rng.next_u64() as u32,
        },
        11 => Frame::Heartbeat {
            id,
            worker: gen_string(rng),
            outstanding: rng.next_u64() as u32,
        },
        12 => Frame::Deregister {
            id,
            worker: gen_string(rng),
        },
        13 => Frame::DeregisterAck { id },
        14 => Frame::LoadModel {
            id,
            model: gen_string(rng),
            version: rng.next_u64() as u32,
            canary_pct: rng.range(0, 101) as u8,
        },
        15 => Frame::UnloadModel {
            id,
            model: gen_string(rng),
            version: rng.next_u64() as u32,
        },
        16 => Frame::ListModels { id },
        _ => Frame::ModelList {
            id,
            models: (0..rng.range(0, 4))
                .map(|_| cs_net::WireModelStatus {
                    name: gen_string(rng),
                    version: rng.next_u64() as u32,
                    primary: rng.chance(0.5),
                    canary_pct: if rng.chance(0.5) {
                        Some(rng.range(0, 101) as u8)
                    } else {
                        None
                    },
                    demoted: rng.chance(0.5),
                    resident_bytes: rng.next_u64(),
                    in_flight: rng.next_u64(),
                })
                .collect(),
        },
    }
}

/// Applies one random mutation to an encoded frame.
fn mutate(rng: &mut CaseRng, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.range(0, 5) {
        // Truncate at a random point (header or payload).
        0 => {
            let cut = rng.range(0, out.len() as u64 + 1) as usize;
            out.truncate(cut);
        }
        // Flip one random byte.
        1 => {
            if !out.is_empty() {
                let i = rng.range(0, out.len() as u64) as usize;
                out[i] ^= (rng.next_u64() as u8) | 1;
            }
        }
        // Hostile length prefix, up to u32::MAX.
        2 => {
            if out.len() >= HEADER_LEN {
                let hostile = rng.next_u64() as u32;
                out[12..16].copy_from_slice(&hostile.to_le_bytes());
            }
        }
        // Append random junk after a valid frame.
        3 => {
            let extra = rng.range(1, 32) as usize;
            for _ in 0..extra {
                out.push(rng.next_u64() as u8);
            }
        }
        // Replace with pure random bytes of random length.
        _ => {
            let len = rng.range(0, 96) as usize;
            out = (0..len).map(|_| rng.next_u64() as u8).collect();
        }
    }
    out
}

/// Decodes `bytes` as a whole buffer with the blocking entry point:
/// the oracle the incremental assembler is checked against. Frames are
/// compared by their re-encoding (byte-exact, NaN-proof).
fn oracle_decode_stream(bytes: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut frames = Vec::new();
    let mut offset = 0;
    loop {
        match Frame::decode_with_limit(&bytes[offset..], DEFAULT_MAX_PAYLOAD)? {
            Some((frame, used)) => {
                frames.push(frame.encode());
                offset += used;
            }
            None => return Ok(frames),
        }
    }
}

/// Replays `bytes` through the reactor's [`FrameAssembler`] in seeded
/// random chunks and demands agreement with whole-buffer decoding:
/// identical frames, an identical typed error, no panic, and buffering
/// never past one maximal in-flight frame (`HEADER_LEN + payload cap`).
fn check_assembler_differential(
    rng: &mut CaseRng,
    bytes: &[u8],
    what: &str,
    index: u64,
    out: &mut Vec<Mismatch>,
) {
    // Draw chunk boundaries up front so the RNG stream is identical
    // whether or not the assembler panics mid-replay.
    let mut cuts = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        offset = (offset + 1 + rng.range(0, 48) as usize).min(bytes.len());
        cuts.push(offset);
    }

    let replay = catch_unwind(AssertUnwindSafe(|| {
        let mut asm = FrameAssembler::new(DEFAULT_MAX_PAYLOAD);
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut error = None;
        let mut max_buffered = 0usize;
        let bound = asm.buffered_bound();
        let mut prev = 0usize;
        'chunks: for &cut in &cuts {
            asm.push(&bytes[prev..cut]);
            prev = cut;
            loop {
                match asm.next_frame() {
                    Ok(Some(f)) => frames.push(f.encode()),
                    Ok(None) => break,
                    Err(e) => {
                        error = Some(e);
                        break 'chunks;
                    }
                }
            }
            max_buffered = max_buffered.max(asm.buffered());
        }
        (frames, error, max_buffered, bound)
    }));

    let (frames, error, max_buffered, bound) = match replay {
        Ok(r) => r,
        Err(_) => {
            out.push(Mismatch::new(
                "net-assembler-panic",
                format!(
                    "case {index}: chunked assembly panicked on {what} input ({} bytes)",
                    bytes.len()
                ),
            ));
            return;
        }
    };
    if max_buffered > bound {
        out.push(Mismatch::new(
            "net-assembler-overallocation",
            format!(
                "case {index}: {what}: assembler buffered {max_buffered} bytes, \
                 cap is {bound}"
            ),
        ));
    }
    match (oracle_decode_stream(bytes), error) {
        (Ok(want), None) => {
            if frames != want {
                out.push(Mismatch::new(
                    "net-assembler-vs-oracle-frames",
                    format!(
                        "case {index}: {what}: chunked assembly yielded {} frames, \
                         whole-buffer decode {}  (or differing bytes)",
                        frames.len(),
                        want.len()
                    ),
                ));
            }
        }
        (Err(want), Some(got)) => {
            if got != want {
                out.push(Mismatch::new(
                    "net-assembler-vs-oracle-error",
                    format!("case {index}: {what}: chunked error {got:?}, whole-buffer {want:?}"),
                ));
            }
        }
        (Ok(_), Some(got)) => out.push(Mismatch::new(
            "net-assembler-spurious-error",
            format!("case {index}: {what}: assembler rejected ({got:?}) what the oracle accepts"),
        )),
        (Err(want), None) => out.push(Mismatch::new(
            "net-assembler-missed-error",
            format!("case {index}: {what}: assembler accepted what the oracle rejects ({want:?})"),
        )),
    }
}

fn check_decode_total(bytes: &[u8], what: &str, index: u64, out: &mut Vec<Mismatch>) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Frame::decode_with_limit(bytes, DEFAULT_MAX_PAYLOAD)
    }));
    match result {
        Err(_) => out.push(Mismatch::new(
            "net-codec-panic",
            format!(
                "case {index}: decode panicked on {what} input ({} bytes)",
                bytes.len()
            ),
        )),
        Ok(Err(WireError::Oversized { len, max })) if len <= max => out.push(Mismatch::new(
            "net-codec-oversized-lie",
            format!("case {index}: {what}: Oversized reported for {len} <= cap {max}"),
        )),
        Ok(_) => {}
    }
}

/// Fuzzes the frame codec with `cases` seed-replayable cases; returns
/// every contract violation found (empty = clean sweep).
pub fn fuzz_codec(seed: u64, cases: u64) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for index in 0..cases {
        let mut rng = CaseRng::new(seed, index);
        let frame = gen_frame(&mut rng);
        let bytes = frame.encode();

        // Byte-exact round trip (works for NaN payloads, which are
        // never equal structurally).
        match Frame::decode_exact(&bytes, DEFAULT_MAX_PAYLOAD) {
            Ok(decoded) => {
                let re = decoded.encode();
                if re != bytes {
                    out.push(Mismatch::new(
                        "net-codec-roundtrip-bytes",
                        format!(
                            "case {index}: re-encoding changed {} -> {} bytes ({:?})",
                            bytes.len(),
                            re.len(),
                            frame.frame_type()
                        ),
                    ));
                }
                if decoded.id() != frame.id() || decoded.frame_type() != frame.frame_type() {
                    out.push(Mismatch::new(
                        "net-codec-roundtrip-identity",
                        format!("case {index}: id or type changed across the round trip"),
                    ));
                }
            }
            Err(e) => out.push(Mismatch::new(
                "net-codec-valid-rejected",
                format!(
                    "case {index}: valid {:?} frame rejected: {e}",
                    frame.frame_type()
                ),
            )),
        }

        // Every streaming prefix either waits for more bytes or reports
        // a typed error — never panics, never returns a frame early.
        for cut in 0..bytes.len() {
            if let Ok(Some(_)) = Frame::decode_with_limit(&bytes[..cut], DEFAULT_MAX_PAYLOAD) {
                out.push(Mismatch::new(
                    "net-codec-prefix-phantom",
                    format!(
                        "case {index}: {cut}-byte prefix of a {}-byte frame decoded",
                        bytes.len()
                    ),
                ));
                break;
            }
        }

        // The incremental assembler agrees with whole-buffer decoding
        // on the valid stream under random chunking.
        check_assembler_differential(&mut rng, &bytes, "valid", index, &mut out);

        // Mutations decode totally (no panic, no over-allocation) and
        // identically on both data planes.
        for _ in 0..4 {
            let mutated = mutate(&mut rng, &bytes);
            check_decode_total(&mutated, "mutated", index, &mut out);
            check_assembler_differential(&mut rng, &mutated, "mutated", index, &mut out);
        }

        if out.len() > 16 {
            break; // a broken codec fails every case; don't flood
        }
    }
    out
}

/// Serves the case's layers through a loopback [`NetServer`] under both
/// engine backends and checks that the socket path is bit-identical to
/// a direct in-process lane forward.
pub fn check_serve_socket(art: &FcArtifacts, probe_seed: u64) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let n_in = art.layers[0].shared.n_in;
    let mut rng = CaseRng::from_seed(probe_seed);
    let mut probes: Vec<Vec<f32>> = (0..SOCKET_PROBES - 1)
        .map(|i| rng.fill_f32(n_in, i + 1))
        .collect();
    probes.push(art.input.clone());

    let lane = model_from(art).sparse_lane();
    for transport in [Transport::Threaded, Transport::Reactor] {
        for backend in [ExecBackend::Sparse, ExecBackend::Dense] {
            let mut registry = ModelRegistry::new();
            if let Err(e) = registry.register(model_from(art)) {
                return vec![Mismatch::new(
                    "net-socket-admission",
                    format!("registry rejected the case's layers: {e:?}"),
                )];
            }
            let serve = match Server::start_with_recorder(
                registry,
                ServeConfig {
                    workers: 2,
                    backend,
                    ..ServeConfig::default()
                },
                Arc::new(MonotonicClock::new()),
                Arc::new(Registry::new()),
            ) {
                Ok(s) => s,
                Err(e) => {
                    return vec![Mismatch::new(
                        "net-socket-serve-start",
                        format!("{transport} {backend:?}: {e:?}"),
                    )]
                }
            };
            let net = match NetServer::start(
                serve,
                NetConfig {
                    transport,
                    ..NetConfig::default()
                },
            ) {
                Ok(n) => n,
                Err(e) => {
                    return vec![Mismatch::new(
                        "net-socket-start",
                        format!("{transport} {backend:?}: {e}"),
                    )]
                }
            };
            let mut client = match Client::connect(&net.local_addr().to_string()) {
                Ok(c) => c,
                Err(e) => {
                    return vec![Mismatch::new(
                        "net-socket-connect",
                        format!("{transport} {backend:?}: {e}"),
                    )]
                }
            };
            for (pi, probe) in probes.iter().enumerate() {
                let want = match lane.forward(probe) {
                    Ok(v) => v,
                    Err(e) => {
                        out.push(Mismatch::new("net-socket-lane-error", format!("{e:?}")));
                        return out;
                    }
                };
                match client.request(MODEL, probe) {
                    Ok(resp) => {
                        let got: Vec<u32> = resp.outputs.iter().map(|v| v.to_bits()).collect();
                        let exp: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                        if got != exp {
                            out.push(Mismatch::new(
                                "net-socket-vs-direct-bits",
                                format!(
                                    "{transport} {backend:?} probe {pi}: socket-served output \
                                     differs from direct lane forward"
                                ),
                            ));
                        }
                    }
                    Err(e) => out.push(Mismatch::new(
                        "net-socket-request",
                        format!("{transport} {backend:?} probe {pi}: {e}"),
                    )),
                }
            }
            net.shutdown();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::build_fc;
    use crate::gen::{self, CaseKind};

    #[test]
    fn codec_fuzz_sweep_is_clean_and_deterministic() {
        let a = fuzz_codec(0xF00D, 64);
        assert!(a.is_empty(), "{a:?}");
        let b = fuzz_codec(0xF00D, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn socket_differential_agrees_on_a_generated_case() {
        let fc = (0..32)
            .find_map(|k| match gen::generate(20180601, k).kind {
                CaseKind::FcNet(c) => Some(c),
                _ => None,
            })
            .expect("no FC case in 32 draws");
        let art = build_fc(&fc).unwrap();
        let m = check_serve_socket(&art, 0xBEEF);
        assert!(m.is_empty(), "{m:?}");
    }
}
