//! Registry container conformance: CSMR codec fuzzing and the corpus
//! round-trip leg.
//!
//! The on-disk model container (`cs-registry`) carries compiled layer
//! formats between the compression pipeline and the serving runtime, so
//! it inherits the same adversarial posture as the cs-net wire codec:
//! hostile bytes must produce a typed [`RegistryError`], never a panic,
//! never an allocation past the documented caps. Two checks enforce it:
//!
//! * [`fuzz_container`] — a seed-replayable sweep. Every case compiles
//!   a generator-produced FC network (the same generator the
//!   differential executor uses, so coarse shared-index, 2:4 and
//!   bank-balanced bodies with ragged tails, empty codebooks and
//!   degenerate banks all appear) into a [`ModelArtifact`] and demands
//!   a byte-exact `encode → decode → encode` round trip. A poisoned
//!   twin overwrites codebook centroids and packed values with NaN
//!   payloads, ±0.0, infinities and subnormals drawn from raw bit
//!   patterns — byte-level comparison, so NaN cannot hide behind
//!   `PartialEq`. The encoding is then mutated (truncations, bit
//!   flips, hostile length fields, appended junk, pure noise) and the
//!   decoder must return a value without panicking, with every
//!   `Oversized` report truthful about its cap.
//! * [`check_store_roundtrip`] — the corpus leg for `registry: true`
//!   entries: the pinned case's compiled layers go through a real
//!   on-disk [`RegistryStore`] save → load → save, and both the bytes
//!   and the decoded artifact must survive unchanged.

use std::panic::{catch_unwind, AssertUnwindSafe};

use cs_quant::Codebook;
use cs_registry::{decode_model, encode_model, ModelArtifact, RegistryError, RegistryStore};

use crate::diff::FcArtifacts;
use crate::gen::{self, CaseKind};
use crate::rng::CaseRng;
use crate::{diff, Mismatch};

/// Mutations fuzzed per case (matching the net codec sweep).
const MUTATIONS_PER_CASE: u64 = 4;

/// Builds the registry artifact for a compiled FC case.
pub fn artifact_from(art: &FcArtifacts, name: &str, version: u32) -> ModelArtifact {
    ModelArtifact {
        name: name.to_string(),
        version,
        layers: art
            .layers
            .iter()
            .map(|l| (l.format.clone(), l.activation))
            .collect(),
    }
}

/// A special f32 drawn from raw bits: NaN payloads, ±inf, ±0.0,
/// subnormals.
fn special_f32(rng: &mut CaseRng) -> f32 {
    match rng.range(0, 6) {
        0 => f32::NAN,
        1 => -0.0,
        2 => 0.0,
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        _ => f32::from_bits(rng.next_u64() as u32),
    }
}

/// A twin of `artifact` with codebook centroids and packed survivor
/// values overwritten by special bit patterns. Lengths are preserved,
/// so the poisoned artifact stays structurally valid — only the f32
/// payloads are hostile.
fn poison(artifact: &ModelArtifact, rng: &mut CaseRng) -> ModelArtifact {
    use cs_compress::format::FcLayerFormat;
    let mut out = artifact.clone();
    for (format, _) in &mut out.layers {
        match format {
            FcLayerFormat::Shared(l) => {
                for g in &mut l.groups {
                    let poisoned: Vec<f32> = g
                        .codebook
                        .centroids()
                        .iter()
                        .map(|&c| if rng.chance(0.5) { special_f32(rng) } else { c })
                        .collect();
                    g.codebook = Codebook::new(poisoned);
                }
            }
            FcLayerFormat::TwoFour(l) => {
                for v in &mut l.values {
                    if rng.chance(0.5) {
                        *v = special_f32(rng);
                    }
                }
            }
            FcLayerFormat::BankBalanced(l) => {
                for v in &mut l.values {
                    if rng.chance(0.5) {
                        *v = special_f32(rng);
                    }
                }
            }
        }
    }
    out
}

/// Byte-exact `encode → decode → encode` round trip; returns the valid
/// encoding for the mutation stage.
fn check_roundtrip(
    artifact: &ModelArtifact,
    what: &str,
    index: u64,
    out: &mut Vec<Mismatch>,
) -> Option<Vec<u8>> {
    let bytes = match encode_model(artifact) {
        Ok(b) => b,
        Err(e) => {
            out.push(Mismatch::new(
                "registry-encode-valid",
                format!("case {index}: {what}: valid artifact rejected by encode: {e}"),
            ));
            return None;
        }
    };
    let decoded = match decode_model(&bytes) {
        Ok(d) => d,
        Err(e) => {
            out.push(Mismatch::new(
                "registry-decode-valid",
                format!("case {index}: {what}: own encoding rejected: {e}"),
            ));
            return Some(bytes);
        }
    };
    // Byte-level comparison: exact for NaN payloads, and also proves
    // the encoding is canonical.
    match encode_model(&decoded) {
        Ok(re) if re == bytes => {}
        Ok(re) => out.push(Mismatch::new(
            "registry-roundtrip-bytes",
            format!(
                "case {index}: {what}: re-encoding changed {} -> {} bytes",
                bytes.len(),
                re.len()
            ),
        )),
        Err(e) => out.push(Mismatch::new(
            "registry-roundtrip-reencode",
            format!("case {index}: {what}: decoded artifact rejected by encode: {e}"),
        )),
    }
    if decoded.name != artifact.name
        || decoded.version != artifact.version
        || decoded.layers.len() != artifact.layers.len()
    {
        out.push(Mismatch::new(
            "registry-roundtrip-identity",
            format!("case {index}: {what}: key or layer count changed across the round trip"),
        ));
    }
    Some(bytes)
}

/// Seeded mutation of a valid container encoding.
fn mutate(rng: &mut CaseRng, bytes: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.range(0, 5) {
        // Truncate at a random point.
        0 => {
            let cut = rng.range(0, out.len() as u64 + 1) as usize;
            out.truncate(cut);
        }
        // Flip one random byte.
        1 => {
            if !out.is_empty() {
                let i = rng.range(0, out.len() as u64) as usize;
                out[i] ^= (rng.next_u64() as u8) | 1;
            }
        }
        // Hostile length: blast a 4-byte window with a huge value —
        // lands on a dim, count or name-length field often enough to
        // probe every pre-allocation cap.
        2 => {
            if out.len() > 8 {
                let i = rng.range(4, out.len() as u64 - 4) as usize;
                let hostile = rng.next_u64() as u32 | 0x8000_0000;
                out[i..i + 4].copy_from_slice(&hostile.to_le_bytes());
            }
        }
        // Append random junk after the footer.
        3 => {
            let extra = rng.range(1, 32) as usize;
            for _ in 0..extra {
                out.push(rng.next_u64() as u8);
            }
        }
        // Replace with pure random bytes of random length.
        _ => {
            let len = rng.range(0, 96) as usize;
            out = (0..len).map(|_| rng.next_u64() as u8).collect();
        }
    }
    out
}

/// Decode must be total: a value (almost always a typed error, since
/// the container is checksummed) without panicking, and any `Oversized`
/// report must be truthful about its cap.
fn check_decode_total(bytes: &[u8], index: u64, out: &mut Vec<Mismatch>) {
    let result = catch_unwind(AssertUnwindSafe(|| decode_model(bytes)));
    match result {
        Err(_) => out.push(Mismatch::new(
            "registry-decode-panic",
            format!(
                "case {index}: decode panicked on mutated input ({} bytes)",
                bytes.len()
            ),
        )),
        Ok(Err(RegistryError::Oversized { field, value, cap })) if value <= cap => {
            out.push(Mismatch::new(
                "registry-oversized-lie",
                format!("case {index}: Oversized({field}) reported for {value} <= cap {cap}"),
            ))
        }
        Ok(_) => {}
    }
}

/// Fuzzes the CSMR container codec with `cases` seed-replayable cases
/// (each contributing [`MUTATIONS_PER_CASE`] hostile mutations on top
/// of the valid and poisoned round trips); returns every contract
/// violation found (empty = clean sweep).
pub fn fuzz_container(seed: u64, cases: u64) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let mut scan = 0u64;
    for index in 0..cases {
        // The generator interleaves conv and LSTM cases; keep scanning
        // until the next FC network, which is what the container holds.
        let fc = loop {
            let case = gen::generate(seed, scan);
            scan += 1;
            if let CaseKind::FcNet(fc) = case.kind {
                break fc;
            }
        };
        let art = match diff::build_fc(&fc) {
            Ok(a) => a,
            Err(m) => {
                out.push(m);
                continue;
            }
        };
        let mut rng = CaseRng::new(seed ^ 0xC5_C5, index);
        let artifact = artifact_from(&art, "fuzz.model-1", index as u32);

        let bytes = check_roundtrip(&artifact, "valid", index, &mut out);
        let poisoned = poison(&artifact, &mut rng);
        check_roundtrip(&poisoned, "poisoned", index, &mut out);

        if let Some(bytes) = bytes {
            for _ in 0..MUTATIONS_PER_CASE {
                let mutated = mutate(&mut rng, &bytes);
                check_decode_total(&mutated, index, &mut out);
            }
        }
        if out.len() > 16 {
            break; // a broken codec fails every case; don't flood
        }
    }
    out
}

/// The corpus leg for `registry: true` entries: the case's compiled
/// layers through a real on-disk store — save → load → save must
/// preserve both the bytes and the decoded artifact exactly.
pub fn check_store_roundtrip(art: &FcArtifacts, seed: u64, case: u64) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let artifact = artifact_from(art, "corpus.model", (case as u32).max(1));
    let bytes = match check_roundtrip(&artifact, "corpus", case, &mut out) {
        Some(b) => b,
        None => return out,
    };

    let dir = std::env::temp_dir().join(format!(
        "cs-conformance-registry-{}-{seed}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let stored = RegistryStore::open(&dir)
        .and_then(|store| {
            store.save(&artifact)?;
            store.load_bytes(&artifact.name, artifact.version)
        })
        .map_err(|e| {
            Mismatch::new(
                "registry-store-roundtrip",
                format!("seed {seed} case {case}: store save/load failed: {e}"),
            )
        });
    match stored {
        Ok(loaded) if loaded == bytes => {}
        Ok(loaded) => out.push(Mismatch::new(
            "registry-store-bytes",
            format!(
                "seed {seed} case {case}: store returned {} bytes, saved {}",
                loaded.len(),
                bytes.len()
            ),
        )),
        Err(m) => out.push(m),
    }
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 sweep: 125 cases x 4 mutations = 500 hostile decodes
    /// on top of 250 byte-exact round trips (125 of them poisoned with
    /// NaN/±0.0/inf payloads).
    #[test]
    fn container_fuzz_sweep_is_clean() {
        let mismatches = fuzz_container(0xC5, 125);
        assert!(
            mismatches.is_empty(),
            "container fuzz found violations: {mismatches:?}"
        );
    }

    #[test]
    fn container_fuzz_is_deterministic() {
        let a = fuzz_container(0xF00D, 24);
        let b = fuzz_container(0xF00D, 24);
        assert_eq!(a.len(), b.len(), "fuzz sweep must be seed-replayable");
    }

    #[test]
    fn garbage_and_empty_inputs_yield_typed_errors() {
        assert!(decode_model(&[]).is_err());
        assert!(decode_model(b"CSMR").is_err());
        assert!(decode_model(&[0xFF; 64]).is_err());
    }
}
