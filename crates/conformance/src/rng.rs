//! Deterministic, seed-replayable random source for the generator.
//!
//! SplitMix64: every `(seed, case-index)` pair yields an independent,
//! platform-stable stream, so a failing case is exactly reproducible
//! from its replay command on any host. No state outside the struct —
//! cloning a [`CaseRng`] forks the stream.

/// SplitMix64 generator seeded from a `(seed, index)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseRng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CaseRng {
    /// A stream for case `index` of run `seed`. The two inputs are
    /// mixed before use so consecutive indices do not correlate.
    pub fn new(seed: u64, index: u64) -> Self {
        CaseRng {
            state: mix(seed ^ GOLDEN).wrapping_add(mix(index.wrapping_mul(GOLDEN))),
        }
    }

    /// A stream seeded from a single value (weight/input fills).
    pub fn from_seed(seed: u64) -> Self {
        CaseRng::new(seed, 0)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform pick from a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.range(0, xs.len() as u64) as usize]
    }

    /// A deterministic `f32` vector in `[-0.5, 0.5)`, with every
    /// `zero_every`-th entry exactly `0.0` (dynamic sparsity); pass
    /// `zero_every = 0` for a fully dense fill.
    pub fn fill_f32(&mut self, n: usize, zero_every: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let v = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32 - 0.5;
                if zero_every > 0 && i % zero_every == 0 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_index_separated() {
        let mut a = CaseRng::new(42, 7);
        let mut b = CaseRng::new(42, 7);
        let mut c = CaseRng::new(42, 8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_and_f64_stay_in_bounds() {
        let mut r = CaseRng::new(1, 1);
        for _ in 0..1000 {
            let v = r.range(3, 9);
            assert!((3..9).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_zeroes_the_requested_stride() {
        let mut r = CaseRng::new(5, 0);
        let v = r.fill_f32(12, 3);
        for (i, x) in v.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*x, 0.0);
            }
            assert!(x.is_finite());
        }
        let dense = r.fill_f32(12, 0);
        assert!(dense.iter().filter(|x| **x == 0.0).count() < 12);
    }
}
