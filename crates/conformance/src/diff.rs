//! Differential executor: one generated case, every backend, one
//! verdict.
//!
//! Each case is materialized once into [`FcArtifacts`] / conv artifacts
//! (weights → coarse mask → shared-index layer → compiled engine layer →
//! densified twin) and then pushed through every execution path the repo
//! has. The equivalence contract (`DESIGN.md` §9):
//!
//! * dense reference vs sparse engine (serial): **bit-identical** on
//!   finite inputs — the engine accumulates surviving terms in the same
//!   ascending order and skipped terms are exact `±0.0`;
//! * serial vs pooled engine at any thread count: **bit-identical** —
//!   strips write disjoint windows with unchanged per-strip arithmetic;
//!   on non-finite (poisoned) inputs the comparison identifies all NaN
//!   encodings, since NaN payload propagation across distinct kernel
//!   paths is unspecified by IEEE 754 and LLVM alike;
//! * dense conv2d vs sparse conv (serial and pooled): **bit-identical**;
//! * functional simulator vs dense chain: **tolerance-bounded** — the
//!   simulator accumulates per (tile, group) in hardware order, which is
//!   a different (still deterministic) float summation order.
//!
//! [`Fault::ReverseAccumulation`] swaps the serial engine kernel for
//! [`forward_reversed`], which adds the same terms in *descending* input
//! order — a deliberately planted defect the harness must catch. The
//! planted kernel targets coarse block-CSR layers; structured 2:4 and
//! bank-balanced layers always run their production kernels.

use cs_accel::config::AccelConfig;
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_compress::engine::{CompiledConvLayer, CompiledFcLayer, FcKernel};
use cs_compress::format::{BankBalancedFcLayer, FcLayerFormat, SharedIndexLayer, TwoFourFcLayer};
use cs_compress::gate::{GatePlan, GatePolicy};
use cs_parallel::ThreadPool;
use cs_sparsity::coarse::{self, CoarseConfig};
use cs_sparsity::{structured, Mask, PruneMode};
use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor};

use crate::gen::{Case, CaseKind, ConvCase, FcLayerCase, FcNetCase, InputPoison};
use crate::rng::CaseRng;
use crate::{Fault, Mismatch};

/// Everything built for one FC layer of a case.
#[derive(Debug, Clone)]
pub struct FcLayerArtifacts {
    /// The compiled storage format (coarse shared-index, packed 2:4, or
    /// bank-balanced) — what the serving registry ingests.
    pub format: FcLayerFormat,
    /// Shared-index view of `format` (simulator input; for structured
    /// patterns this is the exact identity-codebook bridge).
    pub shared: SharedIndexLayer,
    /// The compiled engine kernel for the pattern, bias attached.
    pub engine: FcKernel,
    /// Densified twin of the engine layer (the dense-reference operand).
    pub dense: Tensor,
    /// The pruning mask.
    pub mask: Mask,
    /// Per-output bias, when the case carries one.
    pub bias: Option<Vec<f32>>,
    /// Activation after this layer (ReLU between layers, None last).
    pub activation: Activation,
}

/// A whole FC case materialized for execution.
#[derive(Debug, Clone)]
pub struct FcArtifacts {
    /// The layers in execution order.
    pub layers: Vec<FcLayerArtifacts>,
    /// The case's input vector.
    pub input: Vec<f32>,
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn first_diff(a: &[f32], b: &[f32]) -> Option<(usize, f32, f32)> {
    a.iter()
        .zip(b)
        .enumerate()
        .find(|(_, (x, y))| x.to_bits() != y.to_bits())
        .map(|(i, (x, y))| (i, *x, *y))
}

/// Bit equality with every NaN encoding identified. IEEE 754 leaves NaN
/// payload/sign propagation unspecified and LLVM exploits that freedom
/// (commuting `fadd`/`fmul` operands, whose order decides which NaN x86
/// keeps), so two kernel paths adding the *same terms in the same
/// order* — say the AVX2 strip and the scalar remainder — can return
/// different NaN bits when two distinct NaNs meet in one add (an input
/// NaN and the 0xFFC00000 indefinite from `inf * 0.0`). NaN-ness must
/// still match positionally, and every non-NaN value stays exact-bit.
fn first_diff_nan_canonical(a: &[f32], b: &[f32]) -> Option<(usize, f32, f32)> {
    a.iter()
        .zip(b)
        .enumerate()
        .find(|(_, (x, y))| x.to_bits() != y.to_bits() && !(x.is_nan() && y.is_nan()))
        .map(|(i, (x, y))| (i, *x, *y))
}

/// Seed offset separating bias fills from weight fills.
const BIAS_SALT: u64 = 0xB1A5_B1A5_B1A5_B1A5;

/// Materializes one FC layer case.
///
/// # Errors
///
/// Any build failure (pruner rejection, non-shared mask) is itself a
/// conformance finding and comes back as a [`Mismatch`].
pub fn build_fc_layer(
    case: &FcLayerCase,
    li: usize,
    last: bool,
) -> Result<FcLayerArtifacts, Mismatch> {
    let n = case.n_in * case.n_out;
    let data = if case.zero_weights {
        vec![0.0f32; n]
    } else {
        CaseRng::from_seed(case.weight_seed).fill_f32(n, 0)
    };
    let w = Tensor::from_vec(Shape::d2(case.n_in, case.n_out), data)
        .map_err(|e| Mismatch::new("build-weights", format!("layer {li}: {e:?}")))?;
    let name = format!("fc{li}");
    let (mask, format) = match case.pattern {
        PruneMode::Coarse => {
            let cfg = CoarseConfig::fc(case.block_in, case.block_out, case.metric);
            let mask = coarse::prune_to_density(&w, &cfg, case.density)
                .map_err(|e| Mismatch::new("build-prune", format!("layer {li}: {e:?}")))?;
            // The shared-index group width must match the (clamped)
            // pruning block along the output dimension, or the mask is
            // not shared.
            let group_size = case.block_out.min(case.n_out).max(1);
            let shared =
                SharedIndexLayer::from_fc(name.as_str(), &w, &mask, group_size, case.quant_bits)
                    .map_err(|e| {
                        Mismatch::new(
                            "build-shared-index",
                            format!("layer {li}: coarse mask rejected by the format: {e:?}"),
                        )
                    })?;
            (mask, FcLayerFormat::Shared(shared))
        }
        PruneMode::TwoFour => {
            let mask = structured::two_four_mask(&w)
                .map_err(|e| Mismatch::new("build-prune", format!("layer {li}: {e:?}")))?;
            let layer = TwoFourFcLayer::from_fc(name.as_str(), &w, &mask).map_err(|e| {
                Mismatch::new(
                    "build-two-four",
                    format!("layer {li}: 2:4 mask rejected by the format: {e:?}"),
                )
            })?;
            (mask, FcLayerFormat::TwoFour(layer))
        }
        PruneMode::BankBalanced { bank, k } => {
            let mask = structured::bank_balanced_mask(&w, bank, k)
                .map_err(|e| Mismatch::new("build-prune", format!("layer {li}: {e:?}")))?;
            let layer =
                BankBalancedFcLayer::from_fc(name.as_str(), &w, &mask, bank, k).map_err(|e| {
                    Mismatch::new(
                        "build-bank-balanced",
                        format!("layer {li}: bank-balanced mask rejected by the format: {e:?}"),
                    )
                })?;
            (mask, FcLayerFormat::BankBalanced(layer))
        }
    };
    let shared = format.to_shared();
    let mut engine = FcKernel::compile(&format);
    let bias = case
        .bias
        .then(|| CaseRng::from_seed(case.weight_seed ^ BIAS_SALT).fill_f32(case.n_out, 0));
    if let Some(b) = &bias {
        engine = engine.with_bias(b.clone());
    }
    let dense = engine.to_dense();
    Ok(FcLayerArtifacts {
        format,
        shared,
        engine,
        dense,
        mask,
        bias,
        activation: if last {
            Activation::None
        } else {
            Activation::Relu
        },
    })
}

/// Materializes a whole FC case.
///
/// # Errors
///
/// Propagates the first layer build failure as a [`Mismatch`].
pub fn build_fc(case: &FcNetCase) -> Result<FcArtifacts, Mismatch> {
    let count = case.layers.len();
    let layers = case
        .layers
        .iter()
        .enumerate()
        .map(|(li, l)| build_fc_layer(l, li, li + 1 == count))
        .collect::<Result<Vec<_>, _>>()?;
    let mut input =
        CaseRng::from_seed(case.input_seed).fill_f32(layers[0].engine.n_in(), case.zero_every);
    match case.poison {
        InputPoison::None => {}
        InputPoison::NegZero => input[0] = -0.0,
        InputPoison::NonFinite => {
            input[0] = f32::NAN;
            if let Some(v) = input.get_mut(1) {
                *v = f32::INFINITY;
            }
        }
    }
    Ok(FcArtifacts { layers, input })
}

/// The planted [`Fault::ReverseAccumulation`] kernel: same strips, same
/// terms, but each strip accumulates in *descending* input order, so the
/// float rounding disagrees with the dense reference on almost any case
/// with two or more surviving inputs per strip.
pub fn forward_reversed(layer: &CompiledFcLayer, input: &[f32], out: &mut [f32]) {
    assert_eq!(input.len(), layer.n_in, "input length mismatch");
    assert_eq!(out.len(), layer.n_out, "output length mismatch");
    out.fill(0.0);
    for strip in &layer.strips {
        let width = strip.out_end - strip.out_start;
        let window = &mut out[strip.out_start..strip.out_end];
        let mut pos = strip.survivors;
        for &(s, e) in strip.runs.iter().rev() {
            for i in (s..e).rev() {
                pos -= 1;
                let xi = input[i as usize];
                let row = &strip.values[pos * width..(pos + 1) * width];
                for (o, &wv) in window.iter_mut().zip(row) {
                    *o += xi * wv;
                }
            }
        }
    }
    if let Some(b) = &layer.bias {
        for (o, bv) in out.iter_mut().zip(b) {
            *o += *bv;
        }
    }
}

/// Runs an FC case through every backend and collects contract
/// violations. `pools` is the set of thread pools the pooled engine leg
/// is exercised at (the runner passes 1/2/4 threads).
pub fn check_fc(art: &FcArtifacts, fault: Fault, pools: &[ThreadPool]) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let accel = Accelerator::new(AccelConfig::paper_default());
    let mut x = art.input.clone();
    for (li, la) in art.layers.iter().enumerate() {
        let n_out = la.engine.n_out();
        // Non-finite inputs void the dense bit contract (the dense twin
        // multiplies poison through explicitly-zeroed pruned weights the
        // sparse kernels never touch), so poisoned layers drop the
        // dense and simulator legs and hold the engine paths —
        // serial, pooled, gated — bit-identical to each other instead
        // (up to NaN encoding across serial/pooled path splits).
        let finite = x.iter().all(|v| v.is_finite());
        // Dense reference: matmul + element-wise bias, the exact op
        // sequence of the serving dense lane.
        let dense_out = match dense_forward(&la.dense, la.bias.as_deref(), &x) {
            Ok(v) => v,
            Err(m) => {
                out.push(m);
                return out;
            }
        };

        let mut sparse = vec![0.0f32; n_out];
        match (fault, &la.engine) {
            (Fault::ReverseAccumulation, FcKernel::BlockCsr(l)) => {
                forward_reversed(l, &x, &mut sparse);
            }
            _ => la.engine.forward(&x, &mut sparse),
        }
        if finite {
            if let Some((i, s, d)) = first_diff(&sparse, &dense_out) {
                out.push(Mismatch::new(
                    "fc-dense-vs-sparse-bits",
                    format!(
                        "layer {li} output {i}: sparse {s:e} ({:#010x}) vs dense {d:e} ({:#010x})",
                        s.to_bits(),
                        d.to_bits()
                    ),
                ));
            }
        }

        for pool in pools {
            let mut pooled = vec![0.0f32; n_out];
            la.engine.forward_pooled(&x, &mut pooled, pool);
            if finite {
                if let Some((i, p, d)) = first_diff(&pooled, &dense_out) {
                    out.push(Mismatch::new(
                        "fc-dense-vs-pooled-bits",
                        format!(
                            "layer {li} output {i} at {} threads: pooled {p:e} vs dense {d:e}",
                            pool.threads()
                        ),
                    ));
                }
            } else if let Some((i, p, s)) = first_diff_nan_canonical(&pooled, &sparse) {
                out.push(Mismatch::new(
                    "fc-pooled-vs-engine-bits",
                    format!(
                        "layer {li} output {i} at {} threads on poisoned input: \
                         pooled {p:e} vs serial {s:e}",
                        pool.threads()
                    ),
                ));
            }
        }

        // Gated engine legs: the prescan gate is a pure scheduling
        // decision, so the gated kernel must match the dense reference
        // bit-for-bit on finite inputs and the (production) serial
        // engine on poisoned ones — `-0.0`/NaN/inf blocks are never
        // skipped. The benefit model may decline these toy geometries;
        // a forced small block keeps the gated path exercised anyway.
        let plan = la
            .engine
            .plan_gate(GatePolicy::Auto)
            .unwrap_or(GatePlan { block: 4 });
        let mut gated = vec![0.0f32; n_out];
        let gstats = la.engine.forward_gated(&x, &mut gated, &plan);
        let ungated;
        let (gate_ref, gate_leg): (&[f32], &str) = if finite {
            (&dense_out, "fc-gated-vs-dense-bits")
        } else {
            ungated = la.engine.forward_alloc(&x);
            (&ungated, "fc-gated-vs-engine-bits")
        };
        if let Some((i, g, r)) = first_diff(&gated, gate_ref) {
            out.push(Mismatch::new(
                gate_leg,
                format!(
                    "layer {li} output {i} at gate block {}: gated {g:e} ({:#010x}) \
                     vs reference {r:e} ({:#010x})",
                    plan.block,
                    g.to_bits(),
                    r.to_bits()
                ),
            ));
        }
        for pool in pools {
            let mut gp = vec![0.0f32; n_out];
            let pstats = la.engine.forward_gated_pooled(&x, &mut gp, &plan, pool);
            // Pooled chunk widths pick different kernel paths than the
            // full-width serial call, so poisoned layers compare up to
            // NaN encoding (see `first_diff_nan_canonical`).
            let gp_diff = if finite {
                first_diff(&gp, &gated)
            } else {
                first_diff_nan_canonical(&gp, &gated)
            };
            if let Some((i, p, g)) = gp_diff {
                out.push(Mismatch::new(
                    "fc-gated-pooled-bits",
                    format!(
                        "layer {li} output {i} at {} threads: gated pooled {p:e} \
                         vs gated serial {g:e}",
                        pool.threads()
                    ),
                ));
            }
            // The stats come from the prescan bitmap alone, so they
            // are thread-count independent by construction.
            if pstats != gstats {
                out.push(Mismatch::new(
                    "fc-gated-stats",
                    format!(
                        "layer {li} at {} threads: pooled gate stats {pstats:?} \
                         vs serial {gstats:?}",
                        pool.threads()
                    ),
                ));
            }
        }

        // Next layer's input on every leg: activation over the dense
        // reference when the contract holds, over the engine output on
        // poisoned layers (ReLU then washes the poison out downstream).
        let next: Vec<f32> = if finite {
            dense_out.iter().map(|v| la.activation.apply(*v)).collect()
        } else {
            sparse.iter().map(|v| la.activation.apply(*v)).collect()
        };

        // Simulator leg: tolerance-bounded, and only for bias-free
        // layers on finite inputs (the datapath has no bias
        // instruction, and the tolerance is meaningless against NaN).
        if la.bias.is_none() && finite {
            match accel.run_layer(&la.shared, &x, la.activation) {
                Ok(run) => {
                    let scale = next.iter().fold(1.0f32, |m, v| m.max(v.abs()));
                    let tol = 1e-3 * scale;
                    if let Some((i, s, d)) = run
                        .outputs
                        .iter()
                        .zip(&next)
                        .enumerate()
                        .find(|(_, (s, d))| (*s - *d).abs() > tol)
                        .map(|(i, (s, d))| (i, *s, *d))
                    {
                        out.push(Mismatch::new(
                            "fc-sim-vs-dense-tolerance",
                            format!("layer {li} output {i}: sim {s} vs dense {d} (tol {tol:e})"),
                        ));
                    }
                }
                Err(e) => out.push(Mismatch::new("fc-sim-error", format!("layer {li}: {e:?}"))),
            }
        }

        x = next;
    }
    out
}

fn dense_forward(weights: &Tensor, bias: Option<&[f32]>, x: &[f32]) -> Result<Vec<f32>, Mismatch> {
    let xt = Tensor::from_vec(Shape::d2(1, x.len()), x.to_vec())
        .map_err(|e| Mismatch::new("dense-ref-error", format!("{e:?}")))?;
    let mm = ops::matmul(&xt, weights)
        .map_err(|e| Mismatch::new("dense-ref-error", format!("{e:?}")))?;
    let mut out = mm.as_slice().to_vec();
    if let Some(b) = bias {
        for (o, bv) in out.iter_mut().zip(b) {
            *o += *bv;
        }
    }
    Ok(out)
}

/// Artifacts for one conv case.
#[derive(Debug, Clone)]
pub struct ConvArtifacts {
    /// The compiled sparse conv layer, bias attached.
    pub layer: CompiledConvLayer,
    /// The coarse pruning mask over `(n_fin, n_fout, kx, ky)`.
    pub mask: Mask,
    /// Per-output-map bias, when the case carries one.
    pub bias: Option<Vec<f32>>,
    /// The `(n_fin, h, w)` input tensor.
    pub input: Tensor,
    /// Convolution geometry.
    pub geom: Conv2dGeometry,
}

/// Materializes a conv case.
///
/// # Errors
///
/// Build failures come back as [`Mismatch`] findings.
pub fn build_conv(case: &ConvCase) -> Result<ConvArtifacts, Mismatch> {
    let n = case.n_fin * case.n_fout * case.k * case.k;
    let data = CaseRng::from_seed(case.weight_seed).fill_f32(n, 0);
    let w = Tensor::from_vec(Shape::d4(case.n_fin, case.n_fout, case.k, case.k), data)
        .map_err(|e| Mismatch::new("build-weights", format!("{e:?}")))?;
    let (bf, bo, bx, by) = case.block;
    let cfg = CoarseConfig::conv(bf, bo, bx, by, case.metric);
    let mask = coarse::prune_to_density(&w, &cfg, case.density)
        .map_err(|e| Mismatch::new("build-prune", format!("{e:?}")))?;
    let geom = Conv2dGeometry::square(case.k, 1, case.pad);
    let group_size = bo.min(case.n_fout).max(1);
    let mut layer =
        CompiledConvLayer::compile_conv("conv", &w, &mask, group_size, case.quant_bits, geom)
            .map_err(|e| {
                Mismatch::new(
                    "build-shared-index",
                    format!("coarse conv mask rejected by the format: {e:?}"),
                )
            })?;
    let bias = case
        .bias
        .then(|| CaseRng::from_seed(case.weight_seed ^ BIAS_SALT).fill_f32(case.n_fout, 0));
    if let Some(b) = &bias {
        layer = layer.with_bias(b.clone());
    }
    let input = Tensor::from_vec(
        Shape::d3(case.n_fin, case.h, case.w),
        CaseRng::from_seed(case.input_seed).fill_f32(case.n_fin * case.h * case.w, 3),
    )
    .map_err(|e| Mismatch::new("build-input", format!("{e:?}")))?;
    Ok(ConvArtifacts {
        layer,
        mask,
        bias,
        input,
        geom,
    })
}

/// Runs a conv case: dense `conv2d` vs the sparse conv engine, serial
/// and pooled, all bit-identical. (The planted fault targets the FC
/// serial kernel, so conv cases always run the production kernels.)
pub fn check_conv(art: &ConvArtifacts, pools: &[ThreadPool]) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let dense4 = art.layer.to_dense();
    let want = match ops::conv2d(&art.input, &dense4, art.bias.as_deref(), &art.geom) {
        Ok(t) => t,
        Err(e) => {
            out.push(Mismatch::new("dense-ref-error", format!("{e:?}")));
            return out;
        }
    };
    match art.layer.forward(&art.input) {
        Ok(got) => {
            if got.shape() != want.shape() {
                out.push(Mismatch::new(
                    "conv-shape",
                    format!("sparse {:?} vs dense {:?}", got.shape(), want.shape()),
                ));
            } else if let Some((i, s, d)) = first_diff(got.as_slice(), want.as_slice()) {
                out.push(Mismatch::new(
                    "conv-dense-vs-sparse-bits",
                    format!("element {i}: sparse {s:e} vs dense {d:e}"),
                ));
            }
        }
        Err(e) => out.push(Mismatch::new("conv-engine-error", format!("{e:?}"))),
    }
    for pool in pools {
        match art.layer.forward_pooled(&art.input, pool) {
            Ok(got) => {
                if bits(got.as_slice()) != bits(want.as_slice()) {
                    out.push(Mismatch::new(
                        "conv-dense-vs-pooled-bits",
                        format!("mismatch at {} threads", pool.threads()),
                    ));
                }
            }
            Err(e) => out.push(Mismatch::new(
                "conv-engine-error",
                format!("pooled at {} threads: {e:?}", pool.threads()),
            )),
        }
    }
    out
}

/// Runs every check that applies to `case` — differential legs plus the
/// structural invariants — and returns all violations found. This is the
/// single predicate the runner, the shrinker, and `replay` share.
pub fn check_case(case: &Case, fault: Fault, pools: &[ThreadPool]) -> Vec<Mismatch> {
    match &case.kind {
        CaseKind::FcNet(c) => match build_fc(c) {
            Ok(art) => {
                let mut m = check_fc(&art, fault, pools);
                m.extend(crate::invariants::check_fc(c, &art));
                m
            }
            Err(m) => vec![m],
        },
        CaseKind::Conv(c) => match build_conv(c) {
            Ok(art) => {
                let mut m = check_conv(&art, pools);
                m.extend(crate::invariants::check_conv(c, &art));
                m
            }
            Err(m) => vec![m],
        },
        CaseKind::LstmTiming(c) => crate::invariants::check_lstm(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(2)]
    }

    #[test]
    fn production_kernels_pass_a_case_batch() {
        let pools = pools();
        for k in 0..24 {
            let case = gen::generate(20180601, k);
            let m = check_case(&case, Fault::None, &pools);
            assert!(
                m.is_empty(),
                "case {k} ({}) failed: {:?}",
                case.kind.summary(),
                m
            );
        }
    }

    #[test]
    fn reversed_accumulation_differs_from_forward() {
        // A case with enough survivors per strip for summation order to
        // matter.
        let case = FcLayerCase {
            n_in: 32,
            n_out: 16,
            block_in: 4,
            block_out: 16,
            metric: cs_sparsity::coarse::PruneMetric::Average,
            density: 0.8,
            quant_bits: 8,
            bias: false,
            zero_weights: false,
            weight_seed: 7,
            pattern: PruneMode::Coarse,
        };
        let la = build_fc_layer(&case, 0, true).unwrap();
        let x = CaseRng::from_seed(11).fill_f32(32, 0);
        let fwd = la.engine.forward_alloc(&x);
        let FcKernel::BlockCsr(csr) = &la.engine else {
            panic!("coarse case compiled to a non-block-CSR kernel");
        };
        let mut rev = vec![0.0f32; 16];
        forward_reversed(csr, &x, &mut rev);
        // Same value to float tolerance, different bits somewhere.
        for (a, b) in fwd.iter().zip(&rev) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_ne!(bits(&fwd), bits(&rev), "reversal changed no rounding");
    }

    #[test]
    fn structured_patterns_pass_every_differential_leg() {
        // Hand-built nets covering both structured patterns on ragged
        // widths, with an all-zero layer and a biased layer mixed in.
        let pools = pools();
        for (pattern, bias, zero) in [
            (PruneMode::TwoFour, false, false),
            (PruneMode::TwoFour, true, true),
            (PruneMode::BankBalanced { bank: 8, k: 3 }, false, false),
            (PruneMode::BankBalanced { bank: 4, k: 1 }, true, false),
        ] {
            let net = FcNetCase {
                layers: vec![
                    FcLayerCase {
                        n_in: 17,
                        n_out: 24,
                        block_in: 4,
                        block_out: 8,
                        metric: cs_sparsity::coarse::PruneMetric::Average,
                        density: 0.5,
                        quant_bits: 8,
                        bias,
                        zero_weights: zero,
                        weight_seed: 19,
                        pattern,
                    },
                    FcLayerCase {
                        n_in: 24,
                        n_out: 5,
                        block_in: 2,
                        block_out: 2,
                        metric: cs_sparsity::coarse::PruneMetric::Max,
                        density: 0.4,
                        quant_bits: 4,
                        bias: false,
                        zero_weights: false,
                        weight_seed: 23,
                        pattern: PruneMode::Coarse,
                    },
                ],
                input_seed: 31,
                zero_every: 3,
                poison: InputPoison::None,
            };
            let art = build_fc(&net).unwrap();
            assert_eq!(art.layers[0].engine.kind(), pattern.name());
            let m = check_fc(&art, Fault::None, &pools);
            assert!(m.is_empty(), "{pattern:?} bias {bias} zero {zero}: {m:?}");
        }
    }

    #[test]
    fn poisoned_inputs_pass_the_engine_only_legs() {
        // NaN/inf inputs void the dense contract; the executor must
        // fall back to engine-vs-engine legs (serial/pooled/gated) and
        // still come back green — and the planted fault must still be
        // caught on the poisoned path.
        let pools = pools();
        for poison in [InputPoison::NegZero, InputPoison::NonFinite] {
            let net = FcNetCase {
                layers: vec![FcLayerCase {
                    n_in: 24,
                    n_out: 16,
                    block_in: 4,
                    block_out: 16,
                    metric: cs_sparsity::coarse::PruneMetric::Average,
                    density: 0.6,
                    quant_bits: 8,
                    bias: false,
                    zero_weights: false,
                    weight_seed: 41,
                    pattern: PruneMode::Coarse,
                }],
                input_seed: 43,
                zero_every: 2,
                poison,
            };
            let art = build_fc(&net).unwrap();
            match poison {
                InputPoison::NegZero => {
                    assert_eq!(art.input[0].to_bits(), (-0.0f32).to_bits());
                }
                _ => assert!(art.input[0].is_nan() && art.input[1].is_infinite()),
            }
            let m = check_fc(&art, Fault::None, &pools);
            assert!(m.is_empty(), "{poison:?}: {m:?}");
            // The planted fault must still be caught on the finite
            // poison. (NaN/inf can saturate every output with the same
            // poison bits, where reversal legitimately has nothing to
            // change — so NonFinite makes no catch promise.)
            if poison == InputPoison::NegZero {
                let caught = check_fc(&art, Fault::ReverseAccumulation, &pools);
                assert!(
                    !caught.is_empty(),
                    "planted fault escaped on {poison:?} input"
                );
            }
        }
    }

    #[test]
    fn two_nan_payloads_across_kernel_paths_are_identified() {
        // Regression (seed 42 case 396): a 2:4 layer whose survivors
        // all carry exact-zero weights turns the poisoned input's inf
        // into a second NaN payload (`inf * 0.0` = 0xFFC00000 vs the
        // input's 0x7FC00000), and the serial call's AVX2 strip may
        // keep a different payload than the narrower pooled chunks'
        // scalar kernel. The engine-vs-engine legs must treat every
        // NaN encoding as equal rather than comparing payload bits.
        let pools = pools();
        let net = FcNetCase {
            layers: vec![FcLayerCase {
                n_in: 4,
                n_out: 8,
                block_in: 16,
                block_out: 16,
                metric: cs_sparsity::coarse::PruneMetric::Average,
                density: 1.0,
                quant_bits: 8,
                bias: false,
                zero_weights: true,
                weight_seed: 3,
                pattern: PruneMode::TwoFour,
            }],
            input_seed: 5,
            zero_every: 0,
            poison: InputPoison::NonFinite,
        };
        let art = build_fc(&net).unwrap();
        let m = check_fc(&art, Fault::None, &pools);
        assert!(m.is_empty(), "{m:?}");
    }
}
