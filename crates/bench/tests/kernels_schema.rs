//! Golden-file test for the `exp_kernels` JSONL metric schema.
//!
//! Downstream dashboards key on the field names and types of the lines
//! `--metrics-out` writes; values change every run and are not part of
//! the contract. This test renders one representative line per
//! experiment through the *same* constructors the binary uses, reduces
//! each to its `name:type` schema, and compares against the checked-in
//! golden file.
//!
//! To bless an intentional schema change:
//!
//! ```text
//! KERNELS_BLESS=1 cargo test -p cs-bench --test kernels_schema
//! ```
//!
//! and commit the updated `tests/golden/kernels_schema.txt` together
//! with the downstream consumers.

use cs_bench::kernels_jsonl::{
    conv_line, fc_line, field_schema, gated_line, matmul_line, structured_line,
};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/kernels_schema.txt"
);

/// One schema line per experiment: `experiment field:type field:type …`.
fn current_schema() -> String {
    // Representative values only — the schema must be value-independent,
    // which `schema_extraction_sees_names_and_types_not_values` in the
    // unit tests already guarantees.
    let lines = [
        ("fc", fc_line(256, 256, 0.25, 10_000.0, 2_000.0, 5.0)),
        (
            "structured",
            structured_line("two_four", 256, 256, 0.5, 9_000.0, 4_000.0, 2.2),
        ),
        (
            "gated",
            gated_line("spiking", 1024, 1024, 8, 0.94, 8_000.0, 1_500.0, 5.3),
        ),
        ("conv", conv_line(16, 32, 14, 9_000.0, 3_000.0, 3.0)),
        ("matmul_scaling", matmul_line(160, 4, 8_000.0, 2_500.0, 3.2)),
    ];
    let mut out = String::new();
    for (name, line) in lines {
        let schema = field_schema(&line).unwrap_or_else(|e| panic!("{name}: {e}"));
        let fields: Vec<String> = schema.iter().map(|(n, t)| format!("{n}:{t}")).collect();
        out.push_str(&format!("{name} {}\n", fields.join(" ")));
    }
    out
}

#[test]
fn jsonl_schema_matches_golden() {
    let current = current_schema();
    if std::env::var("KERNELS_BLESS").as_deref() == Ok("1") {
        std::fs::write(GOLDEN, &current).expect("writing the golden file");
        eprintln!("blessed {GOLDEN}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN} ({e}); bless with KERNELS_BLESS=1")
    });
    assert_eq!(
        golden, current,
        "exp_kernels JSONL schema drifted from {GOLDEN}.\n\
         If the change is intentional, re-bless with:\n  \
         KERNELS_BLESS=1 cargo test -p cs-bench --test kernels_schema\n\
         and update downstream dashboard consumers."
    );
}

#[test]
fn every_line_declares_its_experiment_first() {
    // The `experiment` discriminator must stay the first field so
    // streaming consumers can route lines without full parses.
    for line in [
        fc_line(1, 1, 0.1, 1.0, 1.0, 1.0),
        structured_line("bank_balanced", 1, 1, 0.1, 1.0, 1.0, 1.0),
        gated_line("dense", 1, 1, 8, 0.0, 1.0, 1.0, 1.0),
        conv_line(1, 1, 1, 1.0, 1.0, 1.0),
        matmul_line(1, 1, 1.0, 1.0, 1.0),
    ] {
        let schema = field_schema(&line).unwrap();
        assert_eq!(schema[0].0, "experiment");
        assert_eq!(schema[0].1, "string");
    }
}
