//! Micro-benchmarks of the pruning passes and the irregularity metric.

use cambricon_s::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_nn::init::{self, ConvergenceProfile};
use cs_sparsity::{coarse, fine};
use cs_tensor::Shape;

fn bench_coarse_prune(c: &mut Criterion) {
    let mut g = c.benchmark_group("coarse_prune");
    for n in [256usize, 1024] {
        let w = init::local_convergence(
            Shape::d2(n, n),
            &ConvergenceProfile::with_target_density(0.1),
            3,
        );
        let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| coarse::prune_to_density(&w, &cfg, 0.1).unwrap());
        });
    }
    g.finish();
}

fn bench_fine_prune(c: &mut Criterion) {
    let w = init::gaussian(Shape::d2(1024, 1024), 0.1, 5);
    c.bench_function("fine_prune_1M", |b| {
        b.iter(|| fine::prune_to_density(&w, 0.1).unwrap());
    });
}

fn bench_block_scores(c: &mut Criterion) {
    let w = init::gaussian(Shape::d4(64, 128, 3, 3), 0.1, 7);
    let cfg = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
    c.bench_function("block_scores_conv_64x128x3x3", |b| {
        b.iter(|| coarse::block_scores(&w, &cfg));
    });
}

fn bench_irregularity(c: &mut Criterion) {
    let w = init::local_convergence(
        Shape::d2(512, 512),
        &ConvergenceProfile::with_target_density(0.1).with_block(16),
        9,
    );
    let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
    c.bench_function("irregularity_512x512", |b| {
        b.iter(|| cs_compress::irregularity::measure(&w, &cfg, 0.1).unwrap());
    });
}

criterion_group!(
    benches,
    bench_coarse_prune,
    bench_fine_prune,
    bench_block_scores,
    bench_irregularity
);
criterion_main!(benches);
