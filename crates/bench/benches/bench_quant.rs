//! Micro-benchmarks of k-means clustering and local quantization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_quant::{kmeans_1d, quantize_global, quantize_local};

fn values(n: usize) -> Vec<f32> {
    let mut x = 42u64;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans_1d");
    for n in [10_000usize, 100_000] {
        let v = values(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| kmeans_1d(&v, 16, 25));
        });
    }
    g.finish();
}

fn bench_quantize(c: &mut Criterion) {
    let v = values(100_000);
    c.bench_function("quantize_global_100k_4bit", |b| {
        b.iter(|| quantize_global(&v, 4).unwrap());
    });
    c.bench_function("quantize_local_100k_4bit_8regions", |b| {
        b.iter(|| quantize_local(&v, 4, 8).unwrap());
    });
}

criterion_group!(benches, bench_kmeans, bench_quantize);
criterion_main!(benches);
