//! Benchmarks of the accelerator simulators themselves: functional layer
//! execution and the per-network timing sweep that drives Figs. 15–18.

use cambricon_s::prelude::*;
use cambricon_s::workload::paper_workload;
use criterion::{criterion_group, criterion_main, Criterion};
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_baselines::{cambricon_x_layer, diannao_layer};
use cs_nn::init::{self, ConvergenceProfile};
use cs_sparsity::coarse;
use cs_tensor::Shape;

fn bench_functional_exec(c: &mut Criterion) {
    let w = init::local_convergence(
        Shape::d2(4096, 64),
        &ConvergenceProfile::with_target_density(0.1).with_block(16),
        3,
    );
    let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
    let mask = coarse::prune_to_density(&w, &cfg, 0.1).unwrap();
    let sil = SharedIndexLayer::from_fc("b", &w, &mask, 16, 4).unwrap();
    let accel = Accelerator::new(AccelConfig::paper_default());
    let input: Vec<f32> = (0..4096)
        .map(|i| {
            if i % 3 == 0 {
                0.0
            } else {
                (i % 7) as f32 * 0.1
            }
        })
        .collect();
    c.bench_function("functional_exec_fc_4096x64", |b| {
        b.iter(|| accel.run_layer(&sil, &input, Activation::Relu).unwrap());
    });
}

fn bench_timing_model(c: &mut Criterion) {
    let cfg = AccelConfig::paper_default();
    let wl = paper_workload(Model::AlexNet, Scale::Full);
    c.bench_function("timing_alexnet_ours", |b| {
        b.iter(|| wl.run_ours(&cfg));
    });
    c.bench_function("timing_alexnet_baselines", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for l in &wl.layers {
                total += diannao_layer(&l.timing).stats.cycles;
                total += cambricon_x_layer(&l.timing).stats.cycles;
            }
            total
        });
    });
}

fn bench_compile(c: &mut Criterion) {
    let w = init::local_convergence(
        Shape::d2(8192, 256),
        &ConvergenceProfile::with_target_density(0.1).with_block(16),
        5,
    );
    let ccfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
    let mask = coarse::prune_to_density(&w, &ccfg, 0.1).unwrap();
    let sil = SharedIndexLayer::from_fc("c", &w, &mask, 16, 4).unwrap();
    let cfg = AccelConfig::paper_default();
    c.bench_function("compile_fc_8192x256", |b| {
        b.iter(|| cs_accel::compiler::compile_layer(&sil, &cfg, Activation::None));
    });
}

criterion_group!(
    benches,
    bench_functional_exec,
    bench_timing_model,
    bench_compile
);
criterion_main!(benches);
