//! Micro-benchmarks of the entropy and bilevel codecs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cs_coding::arith::{BitModel, Decoder, Encoder};
use cs_coding::bilevel::{self, BiLevelImage};
use cs_coding::huffman;

fn skewed_symbols(n: usize) -> Vec<u16> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(6_364_136_223_846_793_005) >> 33;
            // Geometric-ish distribution over 16 symbols.
            (x % 100).min(15).min((x % 7).pow(2)) as u16
        })
        .collect()
}

fn blocky_bitmap(side: usize) -> Vec<bool> {
    (0..side * side)
        .map(|i| ((i / side / 16) + (i % side / 16)).is_multiple_of(3))
        .collect()
}

fn bench_huffman(c: &mut Criterion) {
    let symbols = skewed_symbols(65_536);
    let encoded = huffman::encode(&symbols).unwrap();
    let mut g = c.benchmark_group("huffman");
    g.throughput(Throughput::Elements(symbols.len() as u64));
    g.bench_function("encode_64k", |b| {
        b.iter(|| huffman::encode(&symbols).unwrap());
    });
    g.bench_function("decode_64k", |b| {
        b.iter(|| huffman::decode(&encoded).unwrap());
    });
    g.finish();
}

fn bench_arith(c: &mut Criterion) {
    let bits: Vec<bool> = (0..65_536).map(|i| i % 23 == 0).collect();
    c.bench_function("arith_encode_64k_bits", |b| {
        b.iter(|| {
            let mut m = BitModel::new();
            let mut e = Encoder::new();
            for bit in &bits {
                e.encode(&mut m, *bit);
            }
            e.finish()
        });
    });
    let mut m = BitModel::new();
    let mut e = Encoder::new();
    for bit in &bits {
        e.encode(&mut m, *bit);
    }
    let bytes = e.finish();
    c.bench_function("arith_decode_64k_bits", |b| {
        b.iter(|| {
            let mut m = BitModel::new();
            let mut d = Decoder::new(&bytes).unwrap();
            let mut count = 0usize;
            for _ in 0..bits.len() {
                if d.decode(&mut m).unwrap() {
                    count += 1;
                }
            }
            count
        });
    });
}

fn bench_bilevel(c: &mut Criterion) {
    let bits = blocky_bitmap(256);
    let img = BiLevelImage::from_bits(&bits, 256).unwrap();
    c.bench_function("bilevel_compress_256x256", |b| {
        b.iter(|| bilevel::compress(&img));
    });
}

criterion_group!(benches, bench_huffman, bench_arith, bench_bilevel);
criterion_main!(benches);
