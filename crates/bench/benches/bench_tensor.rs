//! Micro-benchmarks of the dense reference kernels.

use cambricon_s::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let a = Tensor::from_fn(Shape::d2(n, n), |i| (i % 17) as f32 * 0.1);
        let b = Tensor::from_fn(Shape::d2(n, n), |i| (i % 13) as f32 * 0.1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| ops::matmul(&a, &b).unwrap());
        });
    }
    g.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let input = Tensor::from_fn(Shape::d3(16, 28, 28), |i| (i % 7) as f32 * 0.1);
    let w = Tensor::from_fn(Shape::d4(16, 32, 3, 3), |i| (i % 5) as f32 * 0.01);
    let geom = Conv2dGeometry::square(3, 1, 1);
    c.bench_function("conv2d_16x32_28x28", |b| {
        b.iter(|| ops::conv2d(&input, &w, None, &geom).unwrap());
    });
}

fn bench_network_forward(c: &mut Criterion) {
    let net = Network::small_cnn("bench", (3, 16, 16), 10, 3);
    let x = Tensor::from_fn(Shape::d3(3, 16, 16), |i| (i % 11) as f32 * 0.1);
    c.bench_function("small_cnn_forward", |b| {
        b.iter(|| net.forward(&x).unwrap());
    });
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_network_forward);
criterion_main!(benches);
