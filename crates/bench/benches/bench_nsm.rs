//! Micro-benchmarks of the selection datapath (NSM / SSM / WDM logic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cs_accel::{nsm, ssm};
use cs_quant::Codebook;

fn window(density_pct: u64) -> (Vec<f32>, Vec<bool>) {
    let mut x = 3u64;
    let mut step = move || {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        x >> 33
    };
    let neurons: Vec<f32> = (0..4096)
        .map(|_| {
            if step() % 100 < 60 {
                (step() % 97) as f32 * 0.01
            } else {
                0.0
            }
        })
        .collect();
    let index: Vec<bool> = (0..4096).map(|_| step() % 100 < density_pct).collect();
    (neurons, index)
}

fn bench_nsm_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("nsm_select_4096");
    for density in [10u64, 35, 100] {
        let (neurons, index) = window(density);
        g.throughput(Throughput::Elements(4096));
        g.bench_with_input(BenchmarkId::from_parameter(density), &density, |b, _| {
            b.iter(|| nsm::select(&neurons, &index));
        });
    }
    g.finish();
}

fn bench_ssm_mux(c: &mut Criterion) {
    let compact: Vec<f32> = (0..1024).map(|i| i as f32 * 0.01).collect();
    let indexing: Vec<usize> = (0..1024).step_by(3).collect();
    c.bench_function("ssm_select_340_of_1024", |b| {
        b.iter(|| ssm::select_weights(&compact, &indexing));
    });
}

fn bench_wdm_decode(c: &mut Criterion) {
    let wdm = ssm::Wdm::new(Codebook::new((0..256).map(|i| i as f32 * 0.01).collect()));
    let indices: Vec<u16> = (0..4096).map(|i| (i % 256) as u16).collect();
    c.bench_function("wdm_decode_4096", |b| {
        b.iter(|| wdm.decode_all(&indices));
    });
}

criterion_group!(benches, bench_nsm_select, bench_ssm_mux, bench_wdm_decode);
criterion_main!(benches);
