//! JSONL metric lines emitted by the `exp_kernels` binary.
//!
//! The line formats live here — not inline in the binary — so the
//! golden schema test (`tests/kernels_schema.rs`) and the binary can
//! never drift apart: both call the same constructors. Downstream
//! dashboards key on the **field names and types**, so those are the
//! contract; the values are free to change between runs.

/// The `experiment:"fc"` line: dense vs sparse FC kernel timing.
pub fn fc_line(
    n_in: usize,
    n_out: usize,
    density: f64,
    dense_ns: f64,
    sparse_ns: f64,
    speedup: f64,
) -> String {
    format!(
        "{{\"experiment\":\"fc\",\"n_in\":{n_in},\"n_out\":{n_out},\"density\":{density:.4},\"dense_ns\":{dense_ns:.0},\"sparse_ns\":{sparse_ns:.0},\"speedup\":{speedup:.3}}}\n"
    )
}

/// The `experiment:"structured"` line: dense vs structured-sparse FC
/// kernel timing for one pattern (`"two_four"` or `"bank_balanced"`).
pub fn structured_line(
    pattern: &str,
    n_in: usize,
    n_out: usize,
    density: f64,
    dense_ns: f64,
    sparse_ns: f64,
    speedup: f64,
) -> String {
    format!(
        "{{\"experiment\":\"structured\",\"pattern\":\"{pattern}\",\"n_in\":{n_in},\"n_out\":{n_out},\"density\":{density:.4},\"dense_ns\":{dense_ns:.0},\"sparse_ns\":{sparse_ns:.0},\"speedup\":{speedup:.3}}}\n"
    )
}

/// The `experiment:"gated"` line: the sparse FC kernel with and
/// without the activation gate on one input kind (`"spiking"` for LIF
/// frames, `"dense"` for fully-occupied inputs).
#[allow(clippy::too_many_arguments)]
pub fn gated_line(
    input: &str,
    n_in: usize,
    n_out: usize,
    block: usize,
    skip_fraction: f64,
    ungated_ns: f64,
    gated_ns: f64,
    speedup: f64,
) -> String {
    format!(
        "{{\"experiment\":\"gated\",\"input\":\"{input}\",\"n_in\":{n_in},\"n_out\":{n_out},\"block\":{block},\"skip_fraction\":{skip_fraction:.4},\"ungated_ns\":{ungated_ns:.0},\"gated_ns\":{gated_ns:.0},\"speedup\":{speedup:.3}}}\n"
    )
}

/// The `experiment:"conv"` line: dense vs sparse conv kernel timing.
pub fn conv_line(
    fin: usize,
    fout: usize,
    hw: usize,
    dense_ns: f64,
    sparse_ns: f64,
    speedup: f64,
) -> String {
    format!(
        "{{\"experiment\":\"conv\",\"fin\":{fin},\"fout\":{fout},\"hw\":{hw},\"dense_ns\":{dense_ns:.0},\"sparse_ns\":{sparse_ns:.0},\"speedup\":{speedup:.3}}}\n"
    )
}

/// The `experiment:"matmul_scaling"` line: pooled matmul at one thread
/// count against the serial kernel.
pub fn matmul_line(
    n: usize,
    threads: usize,
    serial_ns: f64,
    pooled_ns: f64,
    speedup: f64,
) -> String {
    format!(
        "{{\"experiment\":\"matmul_scaling\",\"n\":{n},\"threads\":{threads},\"serial_ns\":{serial_ns:.0},\"pooled_ns\":{pooled_ns:.0},\"speedup\":{speedup:.3}}}\n"
    )
}

/// Minimal JSON scanner: extracts `(name, type)` pairs from one flat
/// JSONL object line, in order. Types are the JSON primitives the
/// schema contract cares about: `string`, `int`, or `float`.
///
/// This is deliberately not a full JSON parser — the lines are flat
/// objects produced by the constructors above; nesting is out of
/// contract.
pub fn field_schema(line: &str) -> Result<Vec<(String, &'static str)>, String> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line}"))?;
    let mut out = Vec::new();
    for pair in split_top_level(body) {
        let (name, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("not a key:value pair: {pair}"))?;
        let name = name
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted field name: {name}"))?;
        let value = value.trim();
        let ty = if value.starts_with('"') {
            "string"
        } else if value.parse::<i64>().is_ok() {
            "int"
        } else if value.parse::<f64>().is_ok() {
            "float"
        } else {
            return Err(format!("field {name}: unsupported value {value}"));
        };
        out.push((name.to_string(), ty));
    }
    Ok(out)
}

/// Splits a flat JSON object body on commas outside quoted strings.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() {
        out.push(&body[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_extraction_sees_names_and_types_not_values() {
        let a = field_schema(&fc_line(256, 256, 0.25, 10_000.0, 2_000.0, 5.0)).unwrap();
        let b = field_schema(&fc_line(1024, 1024, 0.3091, 99.9, 1.0, 99.9)).unwrap();
        assert_eq!(a, b, "schema must be value-independent");
        assert_eq!(a[0], ("experiment".to_string(), "string"));
        assert!(a.iter().any(|(n, t)| n == "speedup" && *t == "float"));
    }

    #[test]
    fn all_line_kinds_are_flat_parseable_objects() {
        for line in [
            fc_line(1, 2, 0.5, 1.0, 1.0, 1.0),
            structured_line("two_four", 1, 2, 0.5, 1.0, 1.0, 1.0),
            gated_line("spiking", 1, 2, 8, 0.9, 1.0, 1.0, 1.0),
            conv_line(1, 2, 3, 1.0, 1.0, 1.0),
            matmul_line(1, 2, 1.0, 1.0, 1.0),
        ] {
            let schema = field_schema(&line).unwrap();
            assert!(schema.len() >= 5);
        }
    }

    #[test]
    fn structured_lines_share_one_schema_across_patterns() {
        let a = field_schema(&structured_line("two_four", 256, 256, 0.5, 9.0, 3.0, 3.0)).unwrap();
        let b = field_schema(&structured_line("bank_balanced", 8, 8, 0.1, 1.0, 1.0, 1.0)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[1], ("pattern".to_string(), "string"));
    }
}
