//! Regenerates Table IV: compression results for all seven networks.
use cambricon_s::experiments::tab04;

fn main() {
    let scale = cs_bench::scale_from_args();
    let r = tab04::run(scale, cs_bench::SEED).expect("compression pipeline");
    println!("{}", r.render());
    println!(
        "mean R(Irr) = {:.2}x (paper: 20.13x)",
        r.mean_irregularity()
    );
}
