//! Extension: design-space exploration of block size and dictionary widths.
use cambricon_s::experiments::ext_dse;

fn main() {
    let scale = cs_bench::scale_from_args();
    println!("{}", ext_dse::run(scale, cs_bench::SEED).render());
}
