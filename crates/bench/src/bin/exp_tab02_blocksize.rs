//! Regenerates Table II: AlexNet compression vs pruning block size.
use cambricon_s::experiments::tab02;

fn main() {
    let scale = cs_bench::scale_from_args();
    let r = tab02::run(scale, cs_bench::SEED).expect("compression pipeline");
    println!("{}", r.render());
    println!("best block size N = {}", r.best_n());
}
