//! Regenerates Table III: SSS/SNS/DNS per network.
use cambricon_s::experiments::tab03;

fn main() {
    let scale = cs_bench::scale_from_args();
    println!("{}", tab03::run(scale, cs_bench::SEED).render());
}
