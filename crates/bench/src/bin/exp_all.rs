//! Regenerates every table and figure in one run, writing each artifact
//! to `results/<experiment>.txt`.
//!
//! ```text
//! cargo run --release -p cs-bench --bin exp_all -- --scale 2
//! ```

use cambricon_s::experiments::*;
use cambricon_s::prelude::LayerClass;
use std::fs;
use std::path::Path;

fn save(name: &str, content: &str) {
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join(format!("{name}.txt")), content).expect("write artifact");
    println!("wrote results/{name}.txt");
}

fn main() {
    let scale = cs_bench::scale_from_args();
    let seed = cs_bench::SEED;
    let quick = std::env::args().any(|a| a == "--quick");

    save(
        "exp_fig01_local_convergence",
        &fig01::run(256, seed).render(),
    );
    save("exp_fig04_cdf", &fig04::run(scale, seed).render());
    save(
        "exp_tab02_blocksize",
        &tab02::run(scale, seed).expect("tab02").render(),
    );
    save("exp_tab03_sparsity", &tab03::run(scale, seed).render());
    let fig08_params = if quick {
        fig08::Fig08Params::smoke()
    } else {
        fig08::Fig08Params::full()
    };
    save(
        "exp_fig08_max_vs_avg",
        &fig08::run(&fig08_params).expect("fig08").render(),
    );
    save(
        "exp_tab04_compression",
        &tab04::run(scale, seed).expect("tab04").render(),
    );
    save(
        "exp_tab05_comparison",
        &tab05::run(scale, seed).expect("tab05").render(),
    );
    save("exp_tab06_hw", &tab06::run().render());
    save("exp_fig15_speedup", &fig15::run(None).render());
    save(
        "exp_fig16_conv_speedup",
        &fig15::run(Some(LayerClass::Convolutional)).render(),
    );
    save(
        "exp_fig17_fc_speedup",
        &fig15::run(Some(LayerClass::FullyConnected)).render(),
    );
    let energy = fig18::run();
    save("exp_fig18_energy", &energy.render());
    save("exp_fig19_breakdown", &energy.render_fig19());
    save("exp_fig20_breakdown_onchip", &energy.render_fig20());
    save("exp_fig21_sensitivity", &fig21::run().render());
    save("exp_tab07_eie", &tab07::run().render());
    save("exp_disc_ablations", &disc::run().render());
    save(
        "exp_ext_entropy",
        &ext_entropy::run(scale, seed).expect("ext_entropy").render(),
    );
    save("exp_ext_dse", &ext_dse::run(scale, seed).render());
    save("exp_ext_table1", &ext_table1::run().render());
    save("exp_ext_scaling", &ext_scaling::run().render());
    let ext_structured_params = if quick {
        ext_structured::ExtStructuredParams::smoke()
    } else {
        ext_structured::ExtStructuredParams::full()
    };
    save(
        "exp_ext_structured",
        &ext_structured::run(&ext_structured_params)
            .expect("ext_structured")
            .render(),
    );
    println!("all artifacts regenerated");
}
