//! Regenerates the dynamic-activation-sparsity gate sweep.
use cambricon_s::experiments::ext_actsparsity::{self, ExtActSparsityParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = if quick {
        ExtActSparsityParams::smoke()
    } else {
        ExtActSparsityParams::full()
    };
    let r = ext_actsparsity::run(&p).expect("sweep succeeds");
    println!("{}", r.render());
    if r.total_mismatches() > 0 {
        eprintln!("FAIL: gated kernel diverged from the dense reference");
        std::process::exit(2);
    }
}
