//! Regenerates Fig. 1: local-convergence weight maps.
use cambricon_s::experiments::fig01;

fn main() {
    let r = fig01::run(256, cs_bench::SEED);
    println!("{}", r.render());
}
