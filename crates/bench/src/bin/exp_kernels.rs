//! Kernel microbenchmarks: dense reference vs the compiled block-CSR
//! sparse engine, and single- vs multi-thread matmul scaling.
//!
//! Three experiments, each with a bit-identity check before timing:
//!
//! 1. **FC dense vs sparse** at the paper's FC setting (16×16 blocks,
//!    25% density): [`cs_compress::engine::CompiledFcLayer`] against a
//!    dense matmul over its decoded twin weights. Acceptance floor:
//!    sparse ≥ 2× dense.
//!    1a. **Activation-gated FC**: the same block-CSR kernel behind
//!    the prescan-and-skip gate, on a LIF spike frame (floor: gated ≥
//!    1.5× ungated) and on a fully-dense input (bound: gated ≤ 1.03×
//!    ungated). `-0.0`/NaN/inf-poisoned frames are asserted
//!    bit-identical — the gate never skips them.
//! 2. **Structured FC kernels at 50%**: the branch-free 2:4 and
//!    bank-balanced (8-of-16) kernels against a dense matmul over each
//!    kernel's densified twin. Acceptance floors: 2:4 ≥ 2× dense,
//!    bank-balanced ≥ 1× (parity).
//! 3. **Conv dense vs sparse** at the paper's conv setting
//!    (`(1,16,1,1)` blocks): [`cs_compress::engine::CompiledConvLayer`]
//!    against `ops::conv2d` on the twin weights (informational).
//! 4. **Parallel matmul scaling**: `ops::matmul_pooled` at 1/2/4
//!    threads vs the serial kernel. Acceptance floor: ≥ 2× at 4
//!    threads — checked only when the host actually has ≥ 4 cores,
//!    otherwise reported as a warning (CI containers are often
//!    single-core).
//!
//! `--metrics-out <path>` writes every measurement as JSONL.
//! `--threads <n>` caps the thread counts swept (CI uses 2).
//!
//! ```text
//! cargo run --release -p cs-bench --bin exp_kernels
//! cargo run --release -p cs-bench --bin exp_kernels -- --quick --threads 2 --metrics-out kernels.jsonl
//! ```

use std::time::Instant;

use cs_bench::kernels_jsonl;
use cs_compress::engine::{CompiledConvLayer, CompiledFcLayer, FcKernel};
use cs_compress::format::{BankBalancedFcLayer, FcLayerFormat, TwoFourFcLayer};
use cs_compress::gate::{self, GatePlan, GatePolicy};
use cs_nn::data::lif_spike_train;
use cs_parallel::ThreadPool;
use cs_sparsity::coarse::{prune_to_density, CoarseConfig};
use cs_sparsity::{structured, PruneMode};
use cs_tensor::ops::{self, Conv2dGeometry};
use cs_tensor::{Shape, Tensor};

/// Paper FC setting: 16×16 blocks, quantized to 8-bit codebooks.
const STRIP_WIDTH: usize = 16;
const QUANT_BITS: u8 = 8;
const DENSITY: f64 = 0.25;

struct Args {
    quick: bool,
    threads_cap: usize,
    metrics_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut quick = false;
    let mut threads_cap = 4usize;
    let mut metrics_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads_cap = n,
                _ => {
                    eprintln!("error: --threads requires a positive integer");
                    std::process::exit(1);
                }
            },
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path.into()),
                None => {
                    eprintln!("error: --metrics-out requires a path");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(1);
            }
        }
    }
    Args {
        quick,
        threads_cap,
        metrics_out,
    }
}

/// Deterministic xorshift values in [-0.5, 0.5), seeded per tensor.
fn fill(seed: u64, n: usize) -> Vec<f32> {
    let mut s = seed.wrapping_add(cs_bench::SEED) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect()
}

/// Minimum-of-runs wall time for `f`, in nanoseconds per call.
///
/// The minimum is the noise-floor estimator: scheduler preemption and
/// frequency throttling only ever *add* time, and the speedup gates
/// compare two separately-timed kernels, so taking each one's fastest
/// window keeps the ratio stable on noisy shared hosts where a median
/// still lets one side eat a throttled window.
fn time_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up call keeps first-touch page faults out of the figure.
    f();
    (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_nanos() as f64 / reps as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Minimum-of-runs wall time for a *pair* of kernels timed in
/// alternating windows, in nanoseconds per call each.
///
/// The gated-vs-ungated bounds are tight ratios (3% on the dense leg),
/// and two separately-timed blocks drift apart on throttling hosts:
/// the block that runs while the clock is lower eats the difference.
/// Alternating the windows exposes both sides to the same conditions,
/// so each side's minimum is taken from comparable windows.
fn time_pair_ns(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b();
    let (mut ta, mut tb) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..8 {
        let t0 = Instant::now();
        for _ in 0..reps {
            a();
        }
        ta = ta.min(t0.elapsed().as_nanos() as f64 / reps as f64);
        let t0 = Instant::now();
        for _ in 0..reps {
            b();
        }
        tb = tb.min(t0.elapsed().as_nanos() as f64 / reps as f64);
    }
    (ta, tb)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn main() {
    let args = parse_args();
    let mut jsonl = String::new();
    let mut failures: Vec<String> = Vec::new();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "exp_kernels: host cores = {host_cores}, thread cap = {}, {}",
        args.threads_cap,
        if args.quick { "quick" } else { "full" }
    );

    // ---- 1. FC dense vs sparse at the paper setting -------------------
    let (n_in, n_out, fc_reps) = if args.quick {
        (256, 256, 40)
    } else {
        (1024, 1024, 40)
    };
    let weights = Tensor::from_vec(Shape::d2(n_in, n_out), fill(1, n_in * n_out))
        .unwrap_or_else(|e| panic!("fc weights: {e}"));
    let mask = prune_to_density(&weights, &CoarseConfig::paper_fc(), DENSITY)
        .unwrap_or_else(|e| panic!("fc prune: {e}"));
    let compiled = CompiledFcLayer::compile_fc("fc", &weights, &mask, STRIP_WIDTH, QUANT_BITS)
        .unwrap_or_else(|e| panic!("fc compile: {e}"));
    let twin = compiled.to_dense();
    let x = fill(2, n_in);
    let xt =
        Tensor::from_vec(Shape::d2(1, n_in), x.clone()).unwrap_or_else(|e| panic!("fc input: {e}"));

    let dense_out = ops::matmul(&xt, &twin).unwrap_or_else(|e| panic!("fc dense: {e}"));
    let sparse_out = compiled.forward_alloc(&x);
    assert_eq!(
        bits(dense_out.as_slice()),
        bits(&sparse_out),
        "sparse FC output must be bit-identical to the dense reference"
    );

    let mut out = vec![0.0f32; n_out];
    let dense_ns = time_ns(fc_reps, || {
        let r = ops::matmul(&xt, &twin).unwrap_or_else(|e| panic!("fc dense: {e}"));
        std::hint::black_box(r);
    });
    let sparse_ns = time_ns(fc_reps, || {
        compiled.forward(&x, &mut out);
        std::hint::black_box(&out);
    });
    let fc_speedup = dense_ns / sparse_ns;
    println!(
        "fc {n_in}x{n_out} @ density {:.2}: dense {:.1} µs, sparse {:.1} µs, speedup {fc_speedup:.2}x",
        compiled.density(),
        dense_ns / 1e3,
        sparse_ns / 1e3,
    );
    jsonl.push_str(&kernels_jsonl::fc_line(
        n_in,
        n_out,
        compiled.density(),
        dense_ns,
        sparse_ns,
        fc_speedup,
    ));
    if fc_speedup < 2.0 {
        failures.push(format!(
            "sparse FC kernel speedup {fc_speedup:.2}x is below the 2x acceptance floor"
        ));
    }

    // ---- 1a. Activation gating on the sparse FC kernel ----------------
    // The block-CSR kernel behind the prescan gate, driven two ways: a
    // LIF spike frame (mostly exact zeros — the gate's home turf,
    // floored at 1.5x over the ungated kernel) and a fully-dense input
    // (every block occupied — the gate must cost at most 3% over the
    // ungated kernel). Bit-identity is asserted on both, plus
    // -0.0/NaN-poisoned frames which the gate must never skip.
    //
    // This arm keeps 1024x1024 even in quick mode: both bounds are
    // ratios against the ungated kernel at representative size, and at
    // toy sizes the gate's fixed per-call cost (one prescan, one
    // bitmap) dominates the 3% budget no matter how good the kernel is.
    let (g_in, g_out) = (1024usize, 1024);
    let gweights = Tensor::from_vec(Shape::d2(g_in, g_out), fill(1, g_in * g_out))
        .unwrap_or_else(|e| panic!("gated weights: {e}"));
    let gmask = prune_to_density(&gweights, &CoarseConfig::paper_fc(), DENSITY)
        .unwrap_or_else(|e| panic!("gated prune: {e}"));
    let gated_fc = CompiledFcLayer::compile_fc("fcg", &gweights, &gmask, STRIP_WIDTH, QUANT_BITS)
        .unwrap_or_else(|e| panic!("gated compile: {e}"));
    let gtwin = gated_fc.to_dense();
    let plan = gate::plan_fc(GatePolicy::Auto, g_in, g_out, gated_fc.density())
        .unwrap_or(GatePlan { block: 16 });
    let spike: Vec<f32> = lif_spike_train(g_in, 20, 0.25, 9).as_slice().to_vec();
    let spike_active = spike.iter().filter(|v| **v != 0.0).count();
    let mut gated_out = vec![0.0f32; g_out];
    let spike_stats = gated_fc.forward_gated(&spike, &mut gated_out, &plan);
    assert_eq!(
        bits(&gated_fc.forward_alloc(&spike)),
        bits(&gated_out),
        "gated FC output must be bit-identical to the ungated kernel on spikes"
    );
    let spike_t = Tensor::from_vec(Shape::d2(1, g_in), spike.clone())
        .unwrap_or_else(|e| panic!("spike input: {e}"));
    let spike_dense = ops::matmul(&spike_t, &gtwin).unwrap_or_else(|e| panic!("spike dense: {e}"));
    assert_eq!(
        bits(spike_dense.as_slice()),
        bits(&gated_out),
        "gated FC output must be bit-identical to the dense reference on spikes"
    );
    let mut poisoned = spike.clone();
    poisoned[0] = -0.0;
    poisoned[1] = f32::NAN;
    poisoned[2] = f32::INFINITY;
    gated_fc.forward_gated(&poisoned, &mut gated_out, &plan);
    assert_eq!(
        bits(&gated_fc.forward_alloc(&poisoned)),
        bits(&gated_out),
        "gated FC must never skip -0.0/NaN/inf blocks"
    );
    let gx = fill(2, g_in);
    let mut gout = vec![0.0f32; g_out];
    let mut gout2 = vec![0.0f32; g_out];
    let (ungated_spike_ns, gated_spike_ns) = time_pair_ns(
        fc_reps,
        || {
            gated_fc.forward(&spike, &mut gout);
            std::hint::black_box(&gout);
        },
        || {
            gated_fc.forward_gated(&spike, &mut gout2, &plan);
            std::hint::black_box(&gout2);
        },
    );
    let gated_speedup = ungated_spike_ns / gated_spike_ns;
    println!(
        "gated fc {g_in}x{g_out} block {}: spike input {:.1}% active, skip {:.1}%, \
         ungated {:.1} µs, gated {:.1} µs, speedup {gated_speedup:.2}x",
        plan.block,
        100.0 * spike_active as f64 / g_in as f64,
        100.0 * spike_stats.skip_fraction(),
        ungated_spike_ns / 1e3,
        gated_spike_ns / 1e3,
    );
    jsonl.push_str(&kernels_jsonl::gated_line(
        "spiking",
        g_in,
        g_out,
        plan.block,
        spike_stats.skip_fraction(),
        ungated_spike_ns,
        gated_spike_ns,
        gated_speedup,
    ));
    if gated_speedup < 1.5 {
        failures.push(format!(
            "gated FC speedup {gated_speedup:.2}x on the spiking input is below the \
             1.5x acceptance floor"
        ));
    }
    let (ungated_dense_ns, gated_dense_ns) = time_pair_ns(
        fc_reps,
        || {
            gated_fc.forward(&gx, &mut gout);
            std::hint::black_box(&gout);
        },
        || {
            gated_fc.forward_gated(&gx, &mut gout2, &plan);
            std::hint::black_box(&gout2);
        },
    );
    let dense_ratio = gated_dense_ns / ungated_dense_ns;
    println!(
        "gated fc {g_in}x{g_out} block {}: dense input, ungated {:.1} µs, gated {:.1} µs, \
         overhead {:.1}%",
        plan.block,
        ungated_dense_ns / 1e3,
        gated_dense_ns / 1e3,
        100.0 * (dense_ratio - 1.0),
    );
    jsonl.push_str(&kernels_jsonl::gated_line(
        "dense",
        g_in,
        g_out,
        plan.block,
        0.0,
        ungated_dense_ns,
        gated_dense_ns,
        ungated_dense_ns / gated_dense_ns,
    ));
    if dense_ratio > 1.03 {
        failures.push(format!(
            "gated FC kernel is {dense_ratio:.3}x the ungated time on dense input, \
             above the 1.03x no-regression bound"
        ));
    }

    // ---- 1b. Structured FC kernels at 50% density ---------------------
    // Both patterns prune the same-shaped weights to exactly 50%: 2:4
    // by construction, bank-balanced as 8-of-16 per bank. The dense
    // reference is a matmul over each kernel's densified twin, so the
    // MAC counts differ only by the pattern's 2x skip rate.
    //
    // The structured arms use 512x512 in full mode, not the fc arm's
    // 1024x1024: at 50% density the sparse side still streams 9/16 of
    // the dense bytes (full-width f32 values keep the bit-identity
    // contract), so once a matvec spills to L3 *any* 50%-density kernel
    // is bandwidth-capped below 2x no matter how good its inner loop
    // is. 512x512 keeps the working set cache-resident and measures the
    // kernels themselves.
    let (s_in, s_out) = if args.quick { (256, 256) } else { (512, 512) };
    let sweights = Tensor::from_vec(Shape::d2(s_in, s_out), fill(1, s_in * s_out))
        .unwrap_or_else(|e| panic!("structured weights: {e}"));
    let sx = fill(2, s_in);
    let sxt = Tensor::from_vec(Shape::d2(1, s_in), sx.clone())
        .unwrap_or_else(|e| panic!("structured input: {e}"));
    for mode in [
        PruneMode::TwoFour,
        PruneMode::BankBalanced { bank: 16, k: 8 },
    ] {
        let smask = structured::structured_mask(&sweights, &mode)
            .unwrap_or_else(|e| panic!("{} prune: {e}", mode.name()));
        let format = match mode {
            PruneMode::TwoFour => FcLayerFormat::TwoFour(
                TwoFourFcLayer::from_fc("fc24", &sweights, &smask)
                    .unwrap_or_else(|e| panic!("2:4 pack: {e}")),
            ),
            PruneMode::BankBalanced { bank, k } => FcLayerFormat::BankBalanced(
                BankBalancedFcLayer::from_fc("fcbb", &sweights, &smask, bank, k)
                    .unwrap_or_else(|e| panic!("bank pack: {e}")),
            ),
            PruneMode::Coarse => unreachable!("coarse is benched above"),
        };
        let kernel = FcKernel::compile(&format);
        let stwin = kernel.to_dense();
        let sdense =
            ops::matmul(&sxt, &stwin).unwrap_or_else(|e| panic!("{} dense: {e}", mode.name()));
        let ssparse = kernel.forward_alloc(&sx);
        assert_eq!(
            bits(sdense.as_slice()),
            bits(&ssparse),
            "{} output must be bit-identical to the dense reference",
            mode.name()
        );
        let sdense_ns = time_ns(fc_reps, || {
            let r =
                ops::matmul(&sxt, &stwin).unwrap_or_else(|e| panic!("{} dense: {e}", mode.name()));
            std::hint::black_box(r);
        });
        let mut sout = vec![0.0f32; s_out];
        let ssparse_ns = time_ns(fc_reps, || {
            kernel.forward(&sx, &mut sout);
            std::hint::black_box(&sout);
        });
        let s_speedup = sdense_ns / ssparse_ns;
        println!(
            "{} {s_in}x{s_out} @ density {:.2}: dense {:.1} µs, sparse {:.1} µs, speedup {s_speedup:.2}x",
            mode.name(),
            kernel.density(),
            sdense_ns / 1e3,
            ssparse_ns / 1e3,
        );
        jsonl.push_str(&kernels_jsonl::structured_line(
            mode.name(),
            s_in,
            s_out,
            kernel.density(),
            sdense_ns,
            ssparse_ns,
            s_speedup,
        ));
        // 2:4 halves the MACs and its metadata decodes branch-free, so
        // it carries the hard 2x floor; bank-balanced gathers through
        // byte offsets and is floored at parity with dense.
        let floor = match mode {
            PruneMode::TwoFour => 2.0,
            _ => 1.0,
        };
        if s_speedup < floor {
            failures.push(format!(
                "{} kernel speedup {s_speedup:.2}x is below the {floor}x acceptance floor",
                mode.name()
            ));
        }
    }

    // ---- 2. Conv dense vs sparse --------------------------------------
    let (fin, fout, hw, conv_reps) = if args.quick {
        (16, 32, 14, 20)
    } else {
        (64, 128, 28, 20)
    };
    let geom = Conv2dGeometry::square(3, 1, 1);
    let cw = Tensor::from_vec(Shape::d4(fin, fout, 3, 3), fill(3, fin * fout * 9))
        .unwrap_or_else(|e| panic!("conv weights: {e}"));
    let cmask = prune_to_density(&cw, &CoarseConfig::paper_conv(), DENSITY)
        .unwrap_or_else(|e| panic!("conv prune: {e}"));
    let cconv = CompiledConvLayer::compile_conv("conv", &cw, &cmask, STRIP_WIDTH, QUANT_BITS, geom)
        .unwrap_or_else(|e| panic!("conv compile: {e}"));
    let ctwin = cconv.to_dense();
    let cin = Tensor::from_vec(Shape::d3(fin, hw, hw), fill(4, fin * hw * hw))
        .unwrap_or_else(|e| panic!("conv input: {e}"));

    let conv_dense = ops::conv2d(&cin, &ctwin, None, &geom).unwrap_or_else(|e| panic!("conv: {e}"));
    let conv_sparse = cconv
        .forward(&cin)
        .unwrap_or_else(|e| panic!("conv sparse: {e}"));
    assert_eq!(
        bits(conv_dense.as_slice()),
        bits(conv_sparse.as_slice()),
        "sparse conv output must be bit-identical to the dense reference"
    );

    let conv_dense_ns = time_ns(conv_reps, || {
        let r = ops::conv2d(&cin, &ctwin, None, &geom).unwrap_or_else(|e| panic!("conv: {e}"));
        std::hint::black_box(r);
    });
    let conv_sparse_ns = time_ns(conv_reps, || {
        let r = cconv
            .forward(&cin)
            .unwrap_or_else(|e| panic!("conv sparse: {e}"));
        std::hint::black_box(r);
    });
    let conv_speedup = conv_dense_ns / conv_sparse_ns;
    println!(
        "conv {fin}->{fout} {hw}x{hw} k3: dense {:.1} µs, sparse {:.1} µs, speedup {conv_speedup:.2}x",
        conv_dense_ns / 1e3,
        conv_sparse_ns / 1e3,
    );
    jsonl.push_str(&kernels_jsonl::conv_line(
        fin,
        fout,
        hw,
        conv_dense_ns,
        conv_sparse_ns,
        conv_speedup,
    ));

    // ---- 3. Parallel matmul scaling -----------------------------------
    let (mm, mm_reps) = if args.quick { (160, 4) } else { (384, 4) };
    let a = Tensor::from_vec(Shape::d2(mm, mm), fill(5, mm * mm))
        .unwrap_or_else(|e| panic!("mm a: {e}"));
    let b = Tensor::from_vec(Shape::d2(mm, mm), fill(6, mm * mm))
        .unwrap_or_else(|e| panic!("mm b: {e}"));
    let serial = ops::matmul(&a, &b).unwrap_or_else(|e| panic!("mm serial: {e}"));
    let serial_ns = time_ns(mm_reps, || {
        let r = ops::matmul(&a, &b).unwrap_or_else(|e| panic!("mm serial: {e}"));
        std::hint::black_box(r);
    });
    println!("matmul {mm}^3 serial: {:.2} ms", serial_ns / 1e6);
    let mut speedup_at_4 = None;
    for threads in [1usize, 2, 4] {
        if threads > args.threads_cap {
            continue;
        }
        let pool = ThreadPool::new(threads);
        let pooled = ops::matmul_pooled(&a, &b, &pool).unwrap_or_else(|e| panic!("mm pooled: {e}"));
        assert_eq!(
            bits(serial.as_slice()),
            bits(pooled.as_slice()),
            "pooled matmul must be bit-identical to serial at any thread count"
        );
        let pooled_ns = time_ns(mm_reps, || {
            let r = ops::matmul_pooled(&a, &b, &pool).unwrap_or_else(|e| panic!("mm pooled: {e}"));
            std::hint::black_box(r);
        });
        let speedup = serial_ns / pooled_ns;
        if threads == 4 {
            speedup_at_4 = Some(speedup);
        }
        println!(
            "matmul {mm}^3 @ {threads} threads: {:.2} ms, speedup {speedup:.2}x",
            pooled_ns / 1e6
        );
        jsonl.push_str(&kernels_jsonl::matmul_line(
            mm, threads, serial_ns, pooled_ns, speedup,
        ));
    }
    match speedup_at_4 {
        Some(s) if host_cores >= 4 => {
            if s < 2.0 {
                failures.push(format!(
                    "parallel matmul speedup {s:.2}x at 4 threads is below the 2x floor"
                ));
            }
        }
        Some(s) => {
            eprintln!("warning: host has {host_cores} core(s); 4-thread speedup {s:.2}x not gated")
        }
        None => eprintln!(
            "warning: thread cap {} skipped the 4-thread point; scaling floor not checked",
            args.threads_cap
        ),
    }

    if let Some(path) = args.metrics_out {
        match std::fs::write(&path, jsonl) {
            Ok(()) => println!("metrics written to {}", path.display()),
            Err(e) => {
                eprintln!("writing {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(2);
    }
    println!("all kernel acceptance floors passed");
}
