//! Serving saturation sweep: offered load × worker count × batch size.
//!
//! Drives the `cs-serve` runtime with closed-loop clients against the
//! paper's MLP compressed at the given scale, and prints the saturation
//! table. The headline figure is the simulated-hardware throughput
//! (each worker models one Cambricon-S accelerator), which must scale
//! with the worker count once the offered load saturates the pool.
//!
//! ```text
//! cargo run --release -p cs-bench --bin exp_serve_load -- --scale 4
//! cargo run --release -p cs-bench --bin exp_serve_load -- --quick
//! ```

use cs_serve::loadgen::{run_sweep, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = SweepConfig {
        scale: cs_bench::scale_from_args(),
        seed: cs_bench::SEED,
        requests: if quick { 64 } else { 384 },
        clients: if quick { vec![8] } else { vec![1, 4, 16] },
        workers: vec![1, 2, 4],
        max_batches: if quick { vec![8] } else { vec![1, 8] },
        ..SweepConfig::default()
    };
    let report = match run_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve load sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("Serving saturation sweep ({} requests/point)", cfg.requests);
    println!("{}", report.render());
    match report.scaling(1, 4) {
        Some(s) => {
            println!("1 -> 4 worker hardware throughput scaling at saturation: {s:.2}x");
            if s < 1.5 {
                eprintln!("warning: scaling below the 1.5x acceptance floor");
                std::process::exit(2);
            }
        }
        None => eprintln!("warning: sweep missing 1- or 4-worker points"),
    }
}
