//! Serving saturation sweep: offered load × worker count × batch size.
//!
//! Drives the `cs-serve` runtime with closed-loop clients against the
//! paper's MLP compressed at the given scale, and prints the saturation
//! table. The headline figure is the simulated-hardware throughput
//! (each worker models one Cambricon-S accelerator), which must scale
//! with the worker count once the offered load saturates the pool.
//!
//! `--metrics-out <path>` additionally threads a telemetry registry
//! through every operating point and writes the accumulated metrics
//! (queue waits, batch sizes, compute/DRAM-stall cycles, worker
//! busy/idle time, …) as JSONL, one series per line.
//!
//! ```text
//! cargo run --release -p cs-bench --bin exp_serve_load -- --scale 4
//! cargo run --release -p cs-bench --bin exp_serve_load -- --quick
//! cargo run --release -p cs-bench --bin exp_serve_load -- --quick --metrics-out serve_metrics.jsonl
//! ```

use std::sync::Arc;

use cs_serve::loadgen::{run_sweep_with_recorder, SweepConfig};
use cs_serve::{Recorder, Registry};

fn metrics_out_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--metrics-out" {
            match args.next() {
                Some(path) => return Some(path.into()),
                None => {
                    eprintln!("error: --metrics-out requires a path");
                    std::process::exit(1);
                }
            }
        }
    }
    None
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let metrics_out = metrics_out_path();
    let cfg = SweepConfig {
        scale: cs_bench::scale_from_args(),
        seed: cs_bench::SEED,
        requests: if quick { 64 } else { 384 },
        clients: if quick { vec![8] } else { vec![1, 4, 16] },
        workers: vec![1, 2, 4],
        max_batches: if quick { vec![8] } else { vec![1, 8] },
        ..SweepConfig::default()
    };
    let registry = Arc::new(Registry::new());
    let report = match run_sweep_with_recorder(&cfg, registry.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve load sweep failed: {e}");
            std::process::exit(1);
        }
    };
    println!("Serving saturation sweep ({} requests/point)", cfg.requests);
    println!("{}", report.render());
    if let Some(path) = metrics_out {
        let jsonl = registry.jsonl().unwrap_or_default();
        match std::fs::write(&path, jsonl) {
            Ok(()) => println!("telemetry written to {}", path.display()),
            Err(e) => {
                eprintln!("writing {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    match report.scaling(1, 4) {
        Some(s) => {
            println!("1 -> 4 worker hardware throughput scaling at saturation: {s:.2}x");
            if s < 1.5 {
                eprintln!("warning: scaling below the 1.5x acceptance floor");
                std::process::exit(2);
            }
        }
        None => eprintln!("warning: sweep missing 1- or 4-worker points"),
    }
}
