//! Regenerates Table VII: FC-layer latency vs EIE.
use cambricon_s::experiments::tab07;

fn main() {
    println!("{}", tab07::run().render());
}
