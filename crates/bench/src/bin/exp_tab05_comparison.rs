//! Regenerates Table V: comparison vs Deep Compression / CNNpack.
use cambricon_s::experiments::tab05;

fn main() {
    let scale = cs_bench::scale_from_args();
    println!(
        "{}",
        tab05::run(scale, cs_bench::SEED)
            .expect("pipeline")
            .render()
    );
}
