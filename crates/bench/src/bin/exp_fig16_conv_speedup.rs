//! Regenerates Fig. 16: convolutional-layer speedup.
use cambricon_s::experiments::fig15;
use cambricon_s::prelude::LayerClass;

fn main() {
    println!("{}", fig15::run(Some(LayerClass::Convolutional)).render());
}
