//! Regenerates the discussion-section ablations (entropy decoding,
//! shared NSM/SIB, WDM, index traffic).
use cambricon_s::experiments::disc;

fn main() {
    println!("{}", disc::run().render());
}
