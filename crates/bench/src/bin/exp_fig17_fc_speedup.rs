//! Regenerates Fig. 17: fully-connected-layer speedup.
use cambricon_s::experiments::fig15;
use cambricon_s::prelude::LayerClass;

fn main() {
    println!("{}", fig15::run(Some(LayerClass::FullyConnected)).render());
}
