//! Regenerates Fig. 15: overall speedup over CPU/GPU/DianNao/Cambricon-X.
use cambricon_s::experiments::fig15;

fn main() {
    println!("{}", fig15::run(None).render());
}
