//! Regenerates Fig. 8: max vs average pruning accuracy.
use cambricon_s::experiments::fig08::{self, Fig08Params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = if quick {
        Fig08Params::smoke()
    } else {
        Fig08Params::full()
    };
    let r = fig08::run(&p).expect("training succeeds");
    println!("{}", r.render());
}
