//! Regenerates Fig. 4: larger-weight CDFs for five layers + random init.
use cambricon_s::experiments::fig04;

fn main() {
    let scale = cs_bench::scale_from_args();
    println!("{}", fig04::run(scale, cs_bench::SEED).render());
}
