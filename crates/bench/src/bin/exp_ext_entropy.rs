//! Extension: Huffman vs adaptive arithmetic coding in the entropy stage.
use cambricon_s::experiments::ext_entropy;

fn main() {
    let scale = cs_bench::scale_from_args();
    println!(
        "{}",
        ext_entropy::run(scale, cs_bench::SEED)
            .expect("pipeline")
            .render()
    );
}
