//! Regenerates Fig. 18: energy efficiency over GPU/DianNao/Cambricon-X.
use cambricon_s::experiments::fig18;

fn main() {
    println!("{}", fig18::run().render());
}
