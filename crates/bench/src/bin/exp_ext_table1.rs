//! Extension: measured Table I capability matrix.
use cambricon_s::experiments::ext_table1;

fn main() {
    println!("{}", ext_table1::run().render());
}
