//! Regenerates the structured-pattern accuracy-vs-density table.
use cambricon_s::experiments::ext_structured::{self, ExtStructuredParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = if quick {
        ExtStructuredParams::smoke()
    } else {
        ExtStructuredParams::full()
    };
    let r = ext_structured::run(&p).expect("training succeeds");
    println!("{}", r.render());
}
