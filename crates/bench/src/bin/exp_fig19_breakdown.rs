//! Regenerates Fig. 19: energy breakdown including off-chip accesses.
use cambricon_s::experiments::fig18;

fn main() {
    println!("{}", fig18::run().render_fig19());
}
