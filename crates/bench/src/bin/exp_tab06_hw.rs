//! Regenerates Table VI: hardware characteristics.
use cambricon_s::experiments::tab06;

fn main() {
    println!("{}", tab06::run().render());
}
