//! Extension: PE-array scaling sweep.
use cambricon_s::experiments::ext_scaling;

fn main() {
    println!("{}", ext_scaling::run().render());
}
