//! Regenerates Fig. 21: sparsity sensitivity sweeps.
use cambricon_s::experiments::fig21;

fn main() {
    println!("{}", fig21::run().render());
}
