//! Regenerates Fig. 20: on-chip energy breakdown.
use cambricon_s::experiments::fig18;

fn main() {
    println!("{}", fig18::run().render_fig20());
}
