//! Benchmark harness for the Cambricon-S reproduction.
//!
//! * `src/bin/exp_*.rs` — one binary per paper table/figure; each prints
//!   the regenerated rows/series. Pass `--scale N` to change the
//!   model-materialization scale (default 4; `--scale 1` = published layer
//!   sizes) for the compression experiments; timing experiments always
//!   use the full layer geometries (they are shape-driven and cheap).
//! * `benches/*.rs` — Criterion micro-benchmarks of the core kernels
//!   (selection logic, codecs, k-means, pruning, the timing simulator).

use cambricon_s::prelude::Scale;

pub mod kernels_jsonl;

/// Parses `--scale N` from process arguments (default `Reduced(4)`,
/// `--scale 1` = `Full`).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            if let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                return if n <= 1 {
                    Scale::Full
                } else {
                    Scale::Reduced(n)
                };
            }
        }
    }
    Scale::Reduced(4)
}

/// Deterministic seed shared by the experiment binaries.
pub const SEED: u64 = 20181020; // MICRO 2018

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_reduced_4() {
        // No --scale flag in the test harness arguments.
        assert_eq!(scale_from_args(), Scale::Reduced(4));
    }
}
