//! Failover and routing integration tests: real orchestrator, real
//! worker nodes, real TCP on loopback.

use std::sync::{Arc, Barrier};

use cs_cluster::{LocalCluster, LocalClusterConfig, Orchestrator, OrchestratorConfig, WorkerState};
use cs_net::wire::ErrorCode;
use cs_net::{Client, NetError};
use cs_nn::spec::Scale;
use cs_serve::loadgen::request_input;
use cs_serve::{ModelRegistry, ServableModel};
use cs_telemetry::Registry;

const SCALE: usize = 8;
const SEED: u64 = 42;

fn mlp_registry(_node: usize) -> Result<ModelRegistry, cs_serve::ServeError> {
    let mut registry = ModelRegistry::new();
    registry.register(ServableModel::mlp(Scale::Reduced(SCALE), SEED)?)?;
    Ok(registry)
}

fn mlp_n_in() -> usize {
    ServableModel::mlp(Scale::Reduced(SCALE), SEED)
        .expect("model")
        .n_in
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry
        .find_counter(name, &[])
        .map(|c| c.get())
        .unwrap_or(0)
}

/// The acceptance property: killing one of two replicas mid-sweep
/// loses zero admitted requests — every request gets exactly one
/// successful response, and everything after the kill lands on the
/// survivor.
#[test]
fn killing_one_replica_loses_zero_admitted_requests() {
    const CONNS: usize = 4;
    const BEFORE: usize = 8;
    const AFTER: usize = 16;

    let registry = Arc::new(Registry::new());
    let mut cluster = LocalCluster::start(
        &LocalClusterConfig {
            nodes: 2,
            ..LocalClusterConfig::default()
        },
        registry.clone(),
        &mlp_registry,
    )
    .expect("cluster up");
    let addr = cluster.orch_addr();
    let n_in = mlp_n_in();

    // Two barrier stops: all clients pause after the first half, the
    // main thread kills node-0, then the second half runs against a
    // one-replica cluster.
    let barrier = Arc::new(Barrier::new(CONNS + 1));
    let handles: Vec<_> = (0..CONNS)
        .map(|conn| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Vec<String> {
                let mut client = Client::connect(&addr).expect("connect");
                let mut nodes = Vec::with_capacity(BEFORE + AFTER);
                for i in 0..BEFORE {
                    let rid = (conn * (BEFORE + AFTER) + i) as u64;
                    let resp = client
                        .request("mlp", &request_input(n_in, rid, SEED))
                        .expect("request before kill");
                    nodes.push(resp.node);
                }
                barrier.wait();
                barrier.wait();
                for i in BEFORE..BEFORE + AFTER {
                    let rid = (conn * (BEFORE + AFTER) + i) as u64;
                    let resp = client
                        .request("mlp", &request_input(n_in, rid, SEED))
                        .expect("request after kill");
                    nodes.push(resp.node);
                }
                nodes
            })
        })
        .collect();

    barrier.wait();
    cluster.kill(0).expect("node-0 was alive");
    barrier.wait();

    let mut total = 0usize;
    let mut after_kill_on_survivor = 0usize;
    for handle in handles {
        let nodes = handle.join().expect("client thread");
        // Exactly one response per admitted request: the client API is
        // synchronous, so a missing or duplicate reply would show up as
        // a hang, an error, or a protocol violation above.
        assert_eq!(nodes.len(), BEFORE + AFTER);
        total += nodes.len();
        after_kill_on_survivor += nodes[BEFORE..].iter().filter(|n| *n == "node-1").count();
    }
    assert_eq!(total, CONNS * (BEFORE + AFTER));
    // Everything after the kill must come from the survivor.
    assert_eq!(after_kill_on_survivor, CONNS * AFTER);

    let orch = cluster.orchestrator().expect("orchestrator");
    assert_eq!(
        orch.membership().state_of("node-0"),
        Some(WorkerState::Dead)
    );
    assert_eq!(
        orch.membership().state_of("node-1"),
        Some(WorkerState::Healthy)
    );
    assert!(
        counter(&registry, "cluster_failovers_total") >= 1,
        "the kill must be recorded as a failover"
    );
    assert_eq!(
        counter(&registry, "cluster_requests_routed_total"),
        (CONNS * (BEFORE + AFTER)) as u64
    );
    assert_eq!(counter(&registry, "cluster_requests_failed_total"), 0);

    let snapshots = cluster.stop().expect("graceful stop");
    let survivor_completed: u64 = snapshots
        .iter()
        .filter(|(n, _)| n == "node-1")
        .map(|(_, s)| s.completed)
        .sum();
    assert!(survivor_completed >= (CONNS * AFTER) as u64);
}

/// A replica that dies mid-request is retried on a survivor exactly
/// once, invisibly to the client: the roster here holds one unreachable
/// "ghost" worker and one real node, so the first pick of the ghost
/// fails over deterministically.
#[test]
fn transport_failure_fails_over_to_a_survivor_exactly_once() {
    let registry = Arc::new(Registry::new());
    let cluster = LocalCluster::start(
        &LocalClusterConfig {
            nodes: 1,
            ..LocalClusterConfig::default()
        },
        registry.clone(),
        &mlp_registry,
    )
    .expect("cluster up");
    let orch = cluster.orchestrator().expect("orchestrator");
    // Port 1 refuses instantly: a worker that died without a goodbye.
    orch.membership()
        .register("ghost", "127.0.0.1:1", vec!["mlp".to_string()])
        .expect("register ghost");

    let n_in = mlp_n_in();
    let mut client = Client::connect(&cluster.orch_addr()).expect("connect");
    // Both replicas idle: the rotation guarantees the ghost is picked
    // within the first two requests, and that request must still
    // succeed via the survivor.
    for i in 0..4u64 {
        let resp = client
            .request("mlp", &request_input(n_in, i, SEED))
            .expect("request survives the ghost");
        assert_eq!(resp.node, "node-0");
    }
    assert!(counter(&registry, "cluster_requests_retried_total") >= 1);
    assert_eq!(
        orch.membership().state_of("ghost"),
        Some(WorkerState::Dead),
        "the failed forward must evict the ghost"
    );
    assert_eq!(counter(&registry, "cluster_requests_failed_total"), 0);
    cluster.stop().expect("stop");
}

/// The retry is bounded: when every replica is unreachable the second
/// transport failure surfaces as a typed `WorkerLost`, not an infinite
/// loop — and once the roster is empty the answer is `NoReplica`.
#[test]
fn exhausted_failover_returns_typed_errors() {
    let registry = Arc::new(Registry::new());
    let orch = Orchestrator::start_with_recorder(OrchestratorConfig::default(), registry.clone())
        .expect("orchestrator up");
    let mut client = Client::connect(&orch.local_addr().to_string()).expect("connect");

    // Empty roster: typed NoReplica.
    let err = client.request("mlp", &[0.0; 4]).expect_err("no replicas");
    assert!(matches!(
        err,
        NetError::Remote {
            code: ErrorCode::NoReplica,
            ..
        }
    ));

    // Two unreachable replicas: first fails, retried once, second
    // fails, typed WorkerLost.
    orch.membership()
        .register("ghost-a", "127.0.0.1:1", vec!["mlp".to_string()])
        .expect("ghost-a");
    orch.membership()
        .register("ghost-b", "127.0.0.1:1", vec!["mlp".to_string()])
        .expect("ghost-b");
    let err = client.request("mlp", &[0.0; 4]).expect_err("all dead");
    assert!(matches!(
        err,
        NetError::Remote {
            code: ErrorCode::WorkerLost,
            ..
        }
    ));
    assert_eq!(counter(&registry, "cluster_requests_retried_total"), 1);
    assert_eq!(counter(&registry, "cluster_requests_failed_total"), 2);
    assert_eq!(counter(&registry, "cluster_failovers_total"), 2);
    assert_eq!(orch.membership().healthy_count(), 0);

    // Both ghosts evicted: back to NoReplica, and the connection
    // survived every typed error.
    let err = client.request("mlp", &[0.0; 4]).expect_err("roster dead");
    assert!(matches!(
        err,
        NetError::Remote {
            code: ErrorCode::NoReplica,
            ..
        }
    ));
    orch.shutdown();
}

/// A worker whose process dies (control connection drops without a
/// deregister) is evicted promptly and re-admits cleanly when it comes
/// back under the same name.
#[test]
fn crashed_worker_is_evicted_and_may_reregister() {
    let registry = Arc::new(Registry::new());
    let mut cluster = LocalCluster::start(
        &LocalClusterConfig {
            nodes: 2,
            ..LocalClusterConfig::default()
        },
        registry.clone(),
        &mlp_registry,
    )
    .expect("cluster up");
    let orch_addr = cluster.orch_addr();
    assert_eq!(
        cluster
            .orchestrator()
            .expect("orchestrator")
            .membership()
            .healthy_count(),
        2
    );

    cluster.kill(1).expect("node-1 was alive");
    let orch = cluster.orchestrator().expect("orchestrator");
    // Eviction is driven by the control connection dropping; poll
    // briefly rather than assuming the thread has run.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while orch.membership().state_of("node-1") != Some(WorkerState::Dead) {
        assert!(
            std::time::Instant::now() < deadline,
            "crashed worker was never evicted"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(orch.membership().healthy_count(), 1);

    // The name is free again: a replacement node can register as
    // node-1 (dead entries may be replaced).
    orch.membership()
        .register("node-1", "127.0.0.1:1", vec!["mlp".to_string()])
        .expect("re-register over a dead entry");
    assert_eq!(orch.membership().healthy_count(), 2);
    // Put it back down so routing ignores it for the rest of the test.
    assert!(orch.membership().mark_dead("node-1"));

    let n_in = mlp_n_in();
    let mut client = Client::connect(&orch_addr).expect("connect");
    let resp = client
        .request("mlp", &request_input(n_in, 0, SEED))
        .expect("survivor serves");
    assert_eq!(resp.node, "node-0");
    cluster.stop().expect("stop");
}
