//! Cluster-mode load sweep: drive an in-process [`LocalCluster`] at
//! 1→N nodes and measure aggregate hardware throughput scaling.
//!
//! Every point stands up a fresh cluster replicating the same
//! compressed MLP across all nodes, runs the same seeded closed-loop
//! client load against the orchestrator (request shapes come from
//! [`cs_serve::loadgen::request_input`], so a sweep is replayable from
//! its seed), and reads each node's final serving snapshot.
//!
//! The scaling metric is **aggregate hw-throughput**: total
//! hardware-completed requests divided by the *slowest* node's
//! simulated makespan —
//! `Σ hw_completed × freq / max(makespan_cycles)` — the honest
//! cluster number, because nodes run concurrently and the stragglers
//! bound the finish line. Perfectly balanced routing scales it by the
//! node count; imbalance shows up directly as a sub-linear curve.

use std::sync::Arc;

use cs_net::{Client, RetryPolicy, Transport};
use cs_nn::spec::Scale;
use cs_serve::loadgen::request_input;
use cs_serve::{ExecBackend, ModelRegistry, ServableModel, ServeConfig};

use crate::error::ClusterError;
use crate::local::{LocalCluster, LocalClusterConfig};

/// Sweep shape.
#[derive(Debug, Clone)]
pub struct ClusterSweepConfig {
    /// Cluster sizes to sweep (each point is a fresh cluster).
    pub node_counts: Vec<usize>,
    /// Concurrent client connections per point.
    pub conns: usize,
    /// Requests each connection issues.
    pub requests_per_conn: usize,
    /// Seed for request shapes, model weights, and retry jitter.
    pub seed: u64,
    /// Reduced model scale (as `cs-serve`'s loadgen).
    pub scale: usize,
    /// Serving lanes per node.
    pub workers_per_node: usize,
    /// Execution backend for every node.
    pub backend: ExecBackend,
    /// Network data plane for every node's request frontend.
    pub transport: Transport,
}

impl Default for ClusterSweepConfig {
    fn default() -> Self {
        ClusterSweepConfig {
            node_counts: vec![1, 2, 4],
            conns: 8,
            requests_per_conn: 40,
            seed: 42,
            scale: 8,
            workers_per_node: 2,
            backend: ExecBackend::Simulator,
            transport: Transport::default(),
        }
    }
}

/// One measured cluster size.
#[derive(Debug, Clone)]
pub struct ClusterSweepPoint {
    /// Nodes in this point's cluster.
    pub nodes: usize,
    /// Requests answered with a routed response.
    pub completed: u64,
    /// Requests answered with an error (after client-side retry).
    pub errors: u64,
    /// Responses grouped by the node identity stamped in the reply
    /// (sorted by node name).
    pub per_node_completed: Vec<(String, u64)>,
    /// Total hardware-completed requests across all nodes.
    pub hw_completed: u64,
    /// Slowest node's simulated makespan.
    pub max_makespan_cycles: u64,
    /// Aggregate hardware throughput, requests/second.
    pub aggregate_hw_rps: f64,
}

/// A full sweep, replayable from its config.
#[derive(Debug, Clone)]
pub struct ClusterSweepReport {
    /// The configuration that produced the points.
    pub cfg: ClusterSweepConfig,
    /// Simulated clock frequency used for the throughput conversion.
    pub freq_ghz: f64,
    /// One point per cluster size, in sweep order.
    pub points: Vec<ClusterSweepPoint>,
}

impl ClusterSweepReport {
    /// Aggregate hw-throughput of the last point over the first — the
    /// sweep's scaling factor (e.g. 1→4 nodes ideally approaches 4.0).
    pub fn scaling(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) if first.aggregate_hw_rps > 0.0 => {
                last.aggregate_hw_rps / first.aggregate_hw_rps
            }
            _ => 0.0,
        }
    }

    /// One JSONL record per point plus a trailing summary record.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let per_node: Vec<String> = p
                    .per_node_completed
                    .iter()
                    .map(|(n, c)| format!("{{\"node\":{:?},\"completed\":{c}}}", n))
                    .collect();
                format!(
                    "{{\"type\":\"cluster_sweep_point\",\"nodes\":{},\"completed\":{},\
                     \"errors\":{},\"hw_completed\":{},\"max_makespan_cycles\":{},\
                     \"aggregate_hw_rps\":{:.3},\"per_node\":[{}]}}",
                    p.nodes,
                    p.completed,
                    p.errors,
                    p.hw_completed,
                    p.max_makespan_cycles,
                    p.aggregate_hw_rps,
                    per_node.join(",")
                )
            })
            .collect();
        lines.push(format!(
            "{{\"type\":\"cluster_sweep_summary\",\"seed\":{},\"conns\":{},\
             \"requests_per_conn\":{},\"scale\":{},\"workers_per_node\":{},\
             \"points\":{},\"scaling\":{:.3}}}",
            self.cfg.seed,
            self.cfg.conns,
            self.cfg.requests_per_conn,
            self.cfg.scale,
            self.cfg.workers_per_node,
            self.points.len(),
            self.scaling()
        ));
        lines
    }
}

/// Runs the sweep. Each point is an independent cluster; the load is
/// closed-loop (every connection keeps exactly one request in flight)
/// with seeded-backoff retry on overload, so admission control shapes
/// the curve instead of failing it.
///
/// # Errors
///
/// Cluster startup failures, client transport errors, or a client
/// thread dying.
pub fn run_cluster_sweep(cfg: &ClusterSweepConfig) -> Result<ClusterSweepReport, ClusterError> {
    if cfg.node_counts.is_empty() || cfg.conns == 0 || cfg.requests_per_conn == 0 {
        return Err(ClusterError::InvalidConfig(
            "sweep needs node counts, connections, and requests".to_string(),
        ));
    }
    let freq_ghz = ServeConfig::default().freq_ghz;
    // Probe the model shape once; every node replicates this model.
    let n_in = ServableModel::mlp(Scale::Reduced(cfg.scale), cfg.seed)?.n_in;
    let mut points = Vec::with_capacity(cfg.node_counts.len());
    for &nodes in &cfg.node_counts {
        points.push(run_point(cfg, nodes, n_in, freq_ghz)?);
    }
    Ok(ClusterSweepReport {
        cfg: cfg.clone(),
        freq_ghz,
        points,
    })
}

fn run_point(
    cfg: &ClusterSweepConfig,
    nodes: usize,
    n_in: usize,
    freq_ghz: f64,
) -> Result<ClusterSweepPoint, ClusterError> {
    let scale = cfg.scale;
    let seed = cfg.seed;
    let cluster = LocalCluster::start(
        &LocalClusterConfig {
            nodes,
            workers_per_node: cfg.workers_per_node,
            backend: cfg.backend,
            transport: cfg.transport,
            ..LocalClusterConfig::default()
        },
        Arc::new(cs_telemetry::NoopRecorder),
        &move |_i| {
            let mut registry = ModelRegistry::new();
            registry.register(ServableModel::mlp(Scale::Reduced(scale), seed)?)?;
            Ok(registry)
        },
    )?;
    let addr = cluster.orch_addr();
    let requests = cfg.requests_per_conn;
    let mut handles = Vec::with_capacity(cfg.conns);
    for conn in 0..cfg.conns {
        let addr = addr.clone();
        let handle = std::thread::Builder::new()
            .name(format!("cs-cluster-load-{conn}"))
            .spawn(move || -> Result<(Vec<(String, u64)>, u64), ClusterError> {
                let mut client = Client::connect(&addr)?;
                let policy = RetryPolicy {
                    seed: seed ^ conn as u64,
                    ..RetryPolicy::default()
                };
                let mut by_node: Vec<(String, u64)> = Vec::new();
                let mut errors = 0u64;
                for i in 0..requests {
                    let rid = (conn * requests + i) as u64;
                    let input = request_input(n_in, rid, seed);
                    match client.request_with_retry("mlp", &input, &policy) {
                        Ok(resp) => match by_node.iter_mut().find(|(n, _)| *n == resp.node) {
                            Some((_, c)) => *c += 1,
                            None => by_node.push((resp.node, 1)),
                        },
                        Err(cs_net::NetError::Remote { .. }) => errors += 1,
                        Err(e) => return Err(ClusterError::Net(e)),
                    }
                }
                Ok((by_node, errors))
            })
            .map_err(|e| ClusterError::InvalidConfig(format!("spawning load thread: {e}")))?;
        handles.push(handle);
    }
    let mut per_node: Vec<(String, u64)> = Vec::new();
    let mut completed = 0u64;
    let mut errors = 0u64;
    for handle in handles {
        let (by_node, errs) = handle
            .join()
            .map_err(|_| ClusterError::InvalidConfig("load thread panicked".to_string()))??;
        errors += errs;
        for (node, count) in by_node {
            completed += count;
            match per_node.iter_mut().find(|(n, _)| *n == node) {
                Some((_, c)) => *c += count,
                None => per_node.push((node, count)),
            }
        }
    }
    per_node.sort_by(|a, b| a.0.cmp(&b.0));
    let snapshots = cluster.stop()?;
    let hw_completed: u64 = snapshots.iter().map(|(_, s)| s.hw_completed).sum();
    let max_makespan_cycles = snapshots
        .iter()
        .map(|(_, s)| s.makespan_cycles())
        .max()
        .unwrap_or(0);
    let aggregate_hw_rps = if max_makespan_cycles == 0 {
        0.0
    } else {
        hw_completed as f64 * freq_ghz * 1e9 / max_makespan_cycles as f64
    };
    Ok(ClusterSweepPoint {
        nodes,
        completed,
        errors,
        per_node_completed: per_node,
        hw_completed,
        max_makespan_cycles,
        aggregate_hw_rps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(nodes: usize, rps: f64) -> ClusterSweepPoint {
        ClusterSweepPoint {
            nodes,
            completed: 100,
            errors: 0,
            per_node_completed: vec![("node-0".to_string(), 100)],
            hw_completed: 100,
            max_makespan_cycles: 1000,
            aggregate_hw_rps: rps,
        }
    }

    #[test]
    fn scaling_is_last_over_first() {
        let report = ClusterSweepReport {
            cfg: ClusterSweepConfig::default(),
            freq_ghz: 1.0,
            points: vec![point(1, 250.0), point(2, 480.0), point(4, 900.0)],
        };
        assert!((report.scaling() - 3.6).abs() < 1e-9);
    }

    #[test]
    fn empty_or_zero_reports_scale_zero() {
        let report = ClusterSweepReport {
            cfg: ClusterSweepConfig::default(),
            freq_ghz: 1.0,
            points: Vec::new(),
        };
        assert_eq!(report.scaling(), 0.0);
        let report = ClusterSweepReport {
            cfg: ClusterSweepConfig::default(),
            freq_ghz: 1.0,
            points: vec![point(1, 0.0), point(4, 10.0)],
        };
        assert_eq!(report.scaling(), 0.0);
    }

    #[test]
    fn jsonl_has_one_record_per_point_plus_summary() {
        let report = ClusterSweepReport {
            cfg: ClusterSweepConfig::default(),
            freq_ghz: 1.0,
            points: vec![point(1, 250.0), point(4, 900.0)],
        };
        let lines = report.jsonl_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"cluster_sweep_point\""));
        assert!(lines[0].contains("\"nodes\":1"));
        assert!(lines[2].contains("\"type\":\"cluster_sweep_summary\""));
        assert!(lines[2].contains("\"scaling\":3.600"));
    }
}
