//! In-process cluster harness: one orchestrator plus N worker nodes on
//! loopback, all inside the calling process.
//!
//! Each node is a full production stack — a [`cs_serve::Server`] with
//! its own worker lanes, a [`cs_net::NetServer`] request plane, and a
//! [`cs_net::WorkerAgent`] control plane — joined to a real
//! [`Orchestrator`] over real TCP. Nothing is mocked, so the failover
//! tests, the conformance cluster leg, and the `cs-netload --cluster`
//! sweep all exercise exactly the frames and threads production uses.
//!
//! Telemetry layout: the **cluster** series (membership gauges, router
//! counters) land on the recorder passed to [`LocalCluster::start`];
//! each node's **serve/net** series land on a private per-node
//! [`Registry`]. Sharing one recorder across nodes would merge
//! same-named per-lane series from different nodes into one counter
//! and corrupt every per-node statistic.

use std::sync::Arc;

use cs_net::{AgentConfig, Client, NetConfig, NetServer, Transport, WorkerAgent};
use cs_serve::{ExecBackend, ModelRegistry, ServeConfig, ServeSnapshot, Server};
use cs_telemetry::{MonotonicClock, Recorder, Registry};

use crate::error::ClusterError;
use crate::orchestrator::{Orchestrator, OrchestratorConfig};

/// Shape of an in-process cluster.
#[derive(Debug, Clone)]
pub struct LocalClusterConfig {
    /// Worker nodes to stand up (named `node-0` … `node-{N-1}`).
    pub nodes: usize,
    /// Serving lanes per node.
    pub workers_per_node: usize,
    /// Execution backend for every node.
    pub backend: ExecBackend,
    /// Whether nodes sleep out simulated hardware time (off for fast
    /// CI sweeps; the hw-cycle accounting is identical either way).
    pub emulate_hw_time: bool,
    /// Heartbeat interval the orchestrator dictates.
    pub heartbeat_ms: u32,
    /// Heartbeat eviction deadline.
    pub heartbeat_timeout_ms: u32,
    /// Network data plane for every node's request frontend (the
    /// orchestrator's control plane stays threaded — it holds a few
    /// long-lived agent connections, not a fan-in of clients).
    pub transport: Transport,
}

impl Default for LocalClusterConfig {
    fn default() -> Self {
        LocalClusterConfig {
            nodes: 2,
            workers_per_node: 2,
            backend: ExecBackend::Simulator,
            emulate_hw_time: false,
            heartbeat_ms: 50,
            heartbeat_timeout_ms: 200,
            transport: Transport::default(),
        }
    }
}

/// One live node: request plane + control plane.
struct NodeHandle {
    name: String,
    net: NetServer,
    agent: WorkerAgent,
}

/// The running in-process cluster.
pub struct LocalCluster {
    orch: Option<Orchestrator>,
    nodes: Vec<Option<NodeHandle>>,
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("nodes", &self.nodes.len())
            .finish_non_exhaustive()
    }
}

impl LocalCluster {
    /// Stands the cluster up: orchestrator first, then every node
    /// (serve runtime → net frontend → agent join). `make_registry`
    /// builds node `i`'s model registry — return identical registries
    /// to replicate one model across all nodes, or different ones to
    /// place distinct models on distinct nodes. Cluster-level telemetry
    /// lands on `recorder`.
    ///
    /// # Errors
    ///
    /// Config validation, model build, bind, or registration failures;
    /// on error everything already started is torn down by drop.
    pub fn start(
        cfg: &LocalClusterConfig,
        recorder: Arc<dyn Recorder>,
        make_registry: &dyn Fn(usize) -> Result<ModelRegistry, cs_serve::ServeError>,
    ) -> Result<LocalCluster, ClusterError> {
        if cfg.nodes == 0 {
            return Err(ClusterError::InvalidConfig(
                "cluster needs at least one node".to_string(),
            ));
        }
        let orch = Orchestrator::start_with_recorder(
            OrchestratorConfig {
                heartbeat_ms: cfg.heartbeat_ms,
                heartbeat_timeout_ms: cfg.heartbeat_timeout_ms,
                ..OrchestratorConfig::default()
            },
            recorder,
        )?;
        let orch_addr = orch.local_addr().to_string();
        let mut nodes = Vec::with_capacity(cfg.nodes);
        for i in 0..cfg.nodes {
            let name = format!("node-{i}");
            let models = make_registry(i)?;
            let model_names: Vec<String> =
                models.names().iter().map(|n| (*n).to_string()).collect();
            // Per-node registry: serve/net series must not merge across
            // nodes (see module docs).
            let node_registry = Arc::new(Registry::new());
            let serve = Server::start_with_recorder(
                models,
                ServeConfig {
                    workers: cfg.workers_per_node,
                    backend: cfg.backend,
                    emulate_hw_time: cfg.emulate_hw_time,
                    node: name.clone(),
                    ..ServeConfig::default()
                },
                Arc::new(MonotonicClock::new()),
                node_registry.clone(),
            )?;
            let net = NetServer::start_with_recorder(
                serve,
                NetConfig {
                    transport: cfg.transport,
                    ..NetConfig::default()
                },
                node_registry,
            )?;
            let agent = WorkerAgent::join(
                AgentConfig::new(
                    orch_addr.clone(),
                    name.clone(),
                    net.local_addr().to_string(),
                    model_names,
                ),
                net.shutdown_handle(),
            )?;
            nodes.push(Some(NodeHandle { name, net, agent }));
        }
        Ok(LocalCluster {
            orch: Some(orch),
            nodes,
        })
    }

    /// The orchestrator's client-facing address.
    pub fn orch_addr(&self) -> String {
        match &self.orch {
            Some(o) => o.local_addr().to_string(),
            None => String::new(),
        }
    }

    /// The orchestrator handle (tests inspect membership through it).
    pub fn orchestrator(&self) -> Option<&Orchestrator> {
        self.orch.as_ref()
    }

    /// Kills node `i` the way a crashed process dies: the control
    /// connection drops without a deregister and the request plane
    /// stops answering. Returns the node's final serving snapshot, or
    /// `None` if it was already gone.
    pub fn kill(&mut self, i: usize) -> Option<(String, ServeSnapshot)> {
        let node = self.nodes.get_mut(i)?.take()?;
        node.agent.crash();
        let snapshot = node.net.shutdown();
        Some((node.name, snapshot))
    }

    /// Gracefully drains the whole cluster through the protocol — a
    /// client shutdown frame to the orchestrator cascades to every
    /// worker — then collects each surviving node's final snapshot.
    ///
    /// # Errors
    ///
    /// Transport errors reaching the orchestrator.
    pub fn stop(mut self) -> Result<Vec<(String, ServeSnapshot)>, ClusterError> {
        if let Some(orch) = &self.orch {
            let mut client = Client::connect(&orch.local_addr().to_string())?;
            client.shutdown_server()?;
        }
        let mut snapshots = Vec::new();
        for slot in &mut self.nodes {
            if let Some(node) = slot.take() {
                // The cascade already drained the node; the agent's
                // control loop ended on its shutdown ack.
                node.agent.leave();
                node.net.wait_for_shutdown();
                snapshots.push((node.name, node.net.shutdown()));
            }
        }
        if let Some(orch) = self.orch.take() {
            orch.shutdown();
        }
        Ok(snapshots)
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        for slot in &mut self.nodes {
            if let Some(node) = slot.take() {
                node.agent.crash();
                let _ = node.net.shutdown();
            }
        }
        if let Some(orch) = self.orch.take() {
            orch.shutdown();
        }
    }
}
