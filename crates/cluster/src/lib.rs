//! # cs-cluster — distributed sharded serving for the Cambricon-S stack
//!
//! `cs-serve` batches and executes on one node; `cs-net` puts one node
//! on the wire. This crate scales out: an [`Orchestrator`] control
//! plane that workers join over the same versioned frame protocol, a
//! router that spreads client requests across healthy replicas, and
//! failover that survives a node dying mid-stream. Everything is std
//! plus the workspace crates — no external dependencies.
//!
//! * [`orchestrator`] — the control plane: registration, heartbeat
//!   deadlines, least-outstanding routing with round-robin tie-break,
//!   exactly-once failover retry, typed `NoReplica`/`WorkerLost`
//!   errors, and the cluster-wide drain cascade.
//! * [`membership`] — the worker roster ([`Membership`]): states,
//!   injected-clock eviction, [`Lease`] guards feeding per-worker
//!   outstanding gauges.
//! * [`pool`] — pooled request-plane connections to workers.
//! * [`local`] — [`LocalCluster`]: a full in-process N-node cluster on
//!   loopback (real TCP, real threads) for tests, conformance, and
//!   sweeps.
//! * [`sweep`] — the 1→N node scaling sweep behind
//!   `cs-netload --cluster`.
//!
//! Placement falls out of registration: every worker announces the
//! models it serves, so "replicate one model N ways" and "shard
//! distinct models across nodes" are the same mechanism.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use cs_cluster::{LocalCluster, LocalClusterConfig};
//! use cs_net::Client;
//! use cs_nn::spec::Scale;
//! use cs_serve::{ModelRegistry, ServableModel};
//!
//! let cluster = LocalCluster::start(
//!     &LocalClusterConfig { nodes: 2, ..LocalClusterConfig::default() },
//!     Arc::new(cs_telemetry::NoopRecorder),
//!     &|_node| {
//!         let mut registry = ModelRegistry::new();
//!         registry.register(ServableModel::mlp(Scale::Reduced(8), 7)?)?;
//!         Ok(registry)
//!     },
//! )
//! .unwrap();
//! let mut client = Client::connect(&cluster.orch_addr()).unwrap();
//! let model = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
//! let out = client.request("mlp", &vec![0.5; model.n_in]).unwrap();
//! assert!(out.node.starts_with("node-"));
//! cluster.stop().unwrap();
//! ```

#![deny(missing_docs)]
// A panic in the control plane would orphan every worker; `unwrap`/
// `expect` stay banned outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod local;
pub mod membership;
pub mod orchestrator;
pub mod pool;
pub mod sweep;

pub use error::ClusterError;
pub use local::{LocalCluster, LocalClusterConfig};
pub use membership::{Lease, Membership, WorkerState};
pub use orchestrator::{Orchestrator, OrchestratorConfig};
pub use pool::ClientPool;
pub use sweep::{run_cluster_sweep, ClusterSweepConfig, ClusterSweepPoint, ClusterSweepReport};
