//! `cs-netload` — closed-loop load generator for single servers and
//! clusters.
//!
//! **Server mode** (default): opens `--conns` TCP connections to a
//! running `cs-netserve` *or* `cs-orchestrate` endpoint (they speak the
//! same protocol), asks for the model's input width, then drives
//! `--requests` inferences per connection closed-loop, reusing the
//! deterministic request shapes the in-process load generator uses
//! (`cs_serve::loadgen::request_input`), so a network sweep is
//! replayable by seed. Overload rejections are retried through
//! `cs-net`'s seeded exponential-backoff policy and counted, not
//! failed.
//!
//! **Cluster mode** (`--cluster`): ignores `--addr` and instead stands
//! up fresh in-process clusters at each `--nodes` count (orchestrator +
//! N full worker nodes on loopback), drives the same seeded load
//! through the orchestrator, and reports aggregate hw-throughput
//! scaling as JSONL. `--min-scaling F` turns the scaling factor into an
//! exit-code gate for CI.
//!
//! ```text
//! cs-netload --addr 127.0.0.1:4885 --conns 4 --requests 64 --shutdown
//! cs-netload --cluster --nodes 1,2,4 --out sweep.jsonl --min-scaling 3.0
//! ```
//!
//! Exit codes: `0` success, `1` bad usage or connect failure, `2` any
//! request failed with a non-overload error (or the scaling gate
//! failed).

use std::time::Instant;

use cs_cluster::{run_cluster_sweep, ClusterSweepConfig};
use cs_net::{Client, RetryPolicy};
use cs_serve::loadgen::request_input;
use cs_serve::ExecBackend;

struct Args {
    addr: String,
    conns: usize,
    requests: u64,
    seed: u64,
    model: String,
    out: Option<String>,
    shutdown: bool,
    wait_ready_secs: u64,
    cluster: bool,
    nodes: Vec<usize>,
    scale: usize,
    workers_per_node: usize,
    backend: ExecBackend,
    min_scaling: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: cs-netload --addr HOST:PORT [--conns N] [--requests N] [--seed N]\n\
         \x20                [--model NAME] [--out PATH] [--shutdown]\n\
         \x20                [--wait-ready SECS]\n\
         \x20      cs-netload --cluster [--nodes N,N,..] [--conns N] [--requests N]\n\
         \x20                [--seed N] [--scale N] [--workers N]\n\
         \x20                [--backend simulator|sparse|dense] [--out PATH]\n\
         \x20                [--min-scaling F]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        conns: 4,
        requests: 64,
        seed: 7,
        model: "mlp".to_string(),
        out: None,
        shutdown: false,
        wait_ready_secs: 0,
        cluster: false,
        nodes: vec![1, 2, 4],
        scale: 8,
        workers_per_node: 2,
        backend: ExecBackend::Simulator,
        min_scaling: 0.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--conns" => out.conns = parse_num(&value("--conns"), "--conns") as usize,
            "--requests" => out.requests = parse_num(&value("--requests"), "--requests"),
            "--seed" => out.seed = parse_num(&value("--seed"), "--seed"),
            "--model" => out.model = value("--model"),
            "--out" => out.out = Some(value("--out")),
            "--shutdown" => out.shutdown = true,
            "--wait-ready" => {
                out.wait_ready_secs = parse_num(&value("--wait-ready"), "--wait-ready")
            }
            "--cluster" => out.cluster = true,
            "--nodes" => {
                out.nodes = value("--nodes")
                    .split(',')
                    .map(|s| parse_num(s, "--nodes") as usize)
                    .collect();
            }
            "--scale" => out.scale = parse_num(&value("--scale"), "--scale") as usize,
            "--workers" => {
                out.workers_per_node = parse_num(&value("--workers"), "--workers") as usize
            }
            "--backend" => {
                out.backend = match value("--backend").as_str() {
                    "simulator" | "sim" => ExecBackend::Simulator,
                    "sparse" => ExecBackend::Sparse,
                    "dense" => ExecBackend::Dense,
                    other => {
                        eprintln!("error: unknown backend {other:?}");
                        usage();
                    }
                }
            }
            "--min-scaling" => {
                out.min_scaling = match value("--min-scaling").parse() {
                    Ok(f) => f,
                    Err(_) => {
                        eprintln!("error: --min-scaling expects a number");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    if !out.cluster && out.addr.is_empty() {
        eprintln!("error: --addr is required (or use --cluster)");
        usage();
    }
    if out.conns == 0 || out.requests == 0 {
        eprintln!("error: --conns and --requests must be at least 1");
        usage();
    }
    if out.cluster && (out.nodes.is_empty() || out.nodes.contains(&0)) {
        eprintln!("error: --nodes needs positive counts");
        usage();
    }
    out
}

fn parse_num(s: &str, flag: &str) -> u64 {
    match s.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {s:?}");
            usage();
        }
    }
}

/// Per-connection sweep outcome.
struct ConnResult {
    conn: usize,
    completed: u64,
    overload_rounds: u64,
    latencies_us: Vec<u64>,
    error: Option<String>,
}

fn run_connection(args: &Args, conn: usize) -> ConnResult {
    let mut result = ConnResult {
        conn,
        completed: 0,
        overload_rounds: 0,
        latencies_us: Vec::with_capacity(args.requests as usize),
        error: None,
    };
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            result.error = Some(format!("connect: {e}"));
            return result;
        }
    };
    let n_in = match client.model_info(&args.model) {
        Ok((n_in, _)) => n_in as usize,
        Err(e) => {
            result.error = Some(format!("model query: {e}"));
            return result;
        }
    };
    let policy = RetryPolicy {
        seed: args.seed ^ conn as u64,
        ..RetryPolicy::default()
    };
    for i in 0..args.requests {
        // Globally unique request id -> unique deterministic input,
        // exactly as the in-process loadgen shapes its traffic.
        let request_id = (conn as u64) * args.requests + i;
        let input = request_input(n_in, request_id, args.seed);
        loop {
            let t0 = Instant::now();
            match client.request_with_retry(&args.model, &input, &policy) {
                Ok(_) => {
                    result.latencies_us.push(t0.elapsed().as_micros() as u64);
                    result.completed += 1;
                    break;
                }
                Err(e) if e.is_overloaded() => {
                    // The whole retry budget drained and the server is
                    // still shedding: stay closed-loop and go again.
                    result.overload_rounds += 1;
                }
                Err(e) => {
                    result.error = Some(format!("request {request_id}: {e}"));
                    return result;
                }
            }
        }
    }
    result
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn jsonl_line(r: &ConnResult) -> String {
    let mut sorted = r.latencies_us.clone();
    sorted.sort_unstable();
    format!(
        "{{\"conn\":{},\"completed\":{},\"overload_rounds\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"error\":{}}}",
        r.conn,
        r.completed,
        r.overload_rounds,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        match &r.error {
            Some(e) => format!("{:?}", e),
            None => "null".to_string(),
        }
    )
}

fn run_cluster_mode(args: &Args) -> ! {
    let cfg = ClusterSweepConfig {
        node_counts: args.nodes.clone(),
        conns: args.conns,
        requests_per_conn: args.requests as usize,
        seed: args.seed,
        scale: args.scale,
        workers_per_node: args.workers_per_node,
        backend: args.backend,
    };
    println!(
        "cs-netload --cluster: nodes {:?}, {} conns x {} requests, seed {}",
        cfg.node_counts, cfg.conns, cfg.requests_per_conn, cfg.seed
    );
    let report = match run_cluster_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster sweep failed: {e}");
            std::process::exit(1);
        }
    };
    for p in &report.points {
        let per_node: Vec<String> = p
            .per_node_completed
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        println!(
            "  {} node(s): {} completed, {} errors, aggregate hw {:.0} req/s ({})",
            p.nodes,
            p.completed,
            p.errors,
            p.aggregate_hw_rps,
            per_node.join(", ")
        );
    }
    let scaling = report.scaling();
    println!(
        "scaling {:.2}x across {} -> {} nodes",
        scaling,
        report.points.first().map_or(0, |p| p.nodes),
        report.points.last().map_or(0, |p| p.nodes)
    );
    if let Some(path) = &args.out {
        let body = report.jsonl_lines().join("\n") + "\n";
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(2);
        }
        println!("results written to {path}");
    }
    if args.min_scaling > 0.0 && scaling < args.min_scaling {
        eprintln!(
            "error: scaling {scaling:.2}x is below the required {:.2}x",
            args.min_scaling
        );
        std::process::exit(2);
    }
    std::process::exit(0);
}

/// Polls the endpoint until the target model resolves (or the deadline
/// passes). Against an orchestrator this waits out the window between
/// "listener up" and "first worker registered", so scripted multi-process
/// bring-up doesn't race worker registration.
fn wait_ready(args: &Args) {
    let deadline = Instant::now() + std::time::Duration::from_secs(args.wait_ready_secs);
    loop {
        let ready = Client::connect(&args.addr)
            .and_then(|mut c| c.model_info(&args.model))
            .is_ok();
        if ready {
            return;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "error: {} did not serve model {:?} within {}s",
                args.addr, args.model, args.wait_ready_secs
            );
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

fn main() {
    let args = parse_args();
    if args.cluster {
        run_cluster_mode(&args);
    }
    if args.wait_ready_secs > 0 {
        wait_ready(&args);
    }

    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|conn| {
                scope.spawn({
                    let args = &args;
                    move || run_connection(args, conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(conn, h)| {
                h.join().unwrap_or_else(|_| ConnResult {
                    conn,
                    completed: 0,
                    overload_rounds: 0,
                    latencies_us: Vec::new(),
                    error: Some("connection thread panicked".to_string()),
                })
            })
            .collect()
    });

    let mut all: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_us.iter().copied())
        .collect();
    all.sort_unstable();
    let completed: u64 = results.iter().map(|r| r.completed).sum();
    let retries: u64 = results.iter().map(|r| r.overload_rounds).sum();
    let failed: Vec<&ConnResult> = results.iter().filter(|r| r.error.is_some()).collect();

    println!(
        "cs-netload: {} conns x {} requests against {} (model \"{}\", seed {})",
        args.conns, args.requests, args.addr, args.model, args.seed
    );
    println!(
        "completed {completed}, overload rounds {retries}, socket latency p50 {} us, p95 {} us, p99 {} us",
        percentile(&all, 0.50),
        percentile(&all, 0.95),
        percentile(&all, 0.99),
    );
    for r in &failed {
        eprintln!(
            "conn {} failed: {}",
            r.conn,
            r.error.as_deref().unwrap_or("")
        );
    }

    if let Some(path) = &args.out {
        let mut lines: Vec<String> = results.iter().map(jsonl_line).collect();
        lines.push(format!(
            "{{\"aggregate\":true,\"conns\":{},\"completed\":{},\"overload_rounds\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            args.conns,
            completed,
            retries,
            percentile(&all, 0.50),
            percentile(&all, 0.95),
            percentile(&all, 0.99),
        ));
        let body = lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(2);
        }
        println!("results written to {path}");
    }

    if args.shutdown {
        match Client::connect(&args.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("server drained and stopped"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if !failed.is_empty() {
        std::process::exit(2);
    }
}
