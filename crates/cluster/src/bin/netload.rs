//! `cs-netload` — closed-loop load generator for single servers and
//! clusters.
//!
//! **Server mode** (default): opens `--conns` TCP connections to a
//! running `cs-netserve` *or* `cs-orchestrate` endpoint (they speak the
//! same protocol), asks for the model's input width, then drives
//! `--requests` inferences per connection closed-loop, reusing the
//! deterministic request shapes the in-process load generator uses
//! (`cs_serve::loadgen::request_input`), so a network sweep is
//! replayable by seed. Overload rejections are retried through
//! `cs-net`'s seeded exponential-backoff policy and counted, not
//! failed. `--think-ms` inserts pacing between a connection's requests
//! so high connection counts measure concurrency, not queueing from a
//! saturating closed loop; the pause is jittered per connection from
//! the seed (uniform in `[0.5, 1.5] × think`, plus a random initial
//! offset), because a thousand connections pacing in lock-step would
//! arrive as synchronized waves and measure the wave, not the server.
//!
//! **Connection sweep** (`--conns-sweep N1,N2,..`): repeats the server
//! mode run at each connection count against the same endpoint and
//! emits one `conn_sweep_point` JSONL record per count. On Linux the
//! sweep client is itself event-driven: one thread multiplexes every
//! connection through the same `cs_net::poll` epoll shim and
//! `FrameAssembler` the reactor uses, because a thousand loadgen
//! *threads* would swamp the scheduler of a small CI host and the tail
//! latency would measure the client's own run queue, not the server
//! (non-Linux falls back to thread-per-connection). The gated latency
//! is the **server-reported** `latency_us` stamped in every response
//! (decode→reply time on the server). `--max-p99-ratio F` turns the
//! sweep into a CI gate: the last point's server-side p99 must stay
//! within `F ×` the first point's.
//!
//! **Cluster mode** (`--cluster`): ignores `--addr` and instead stands
//! up fresh in-process clusters at each `--nodes` count (orchestrator +
//! N full worker nodes on loopback, node frontends on `--transport`),
//! drives the same seeded load through the orchestrator, and reports
//! aggregate hw-throughput scaling as JSONL. `--min-scaling F` turns
//! the scaling factor into an exit-code gate for CI.
//!
//! ```text
//! cs-netload --addr 127.0.0.1:4885 --conns 4 --requests 64 --shutdown
//! cs-netload --addr 127.0.0.1:4885 --conns-sweep 64,1000 --requests 10 \
//!            --think-ms 50 --max-p99-ratio 2.0 --out sweep.jsonl
//! cs-netload --cluster --nodes 1,2,4 --out sweep.jsonl --min-scaling 3.0
//! ```
//!
//! **Lifecycle driving**: `--load NAME@VERSION[:PCT]` (repeatable)
//! sends `LoadModel` control frames before the sweep starts — how a
//! registry-backed server started `--empty` gets its models, and how a
//! canary is opened (`:25` routes 25% of the model's traffic to the
//! new version). `--mid-load NAME@VERSION[:PCT]` (repeatable, plain
//! server mode only) fires its loads from a side connection once half
//! the sweep's requests have completed, so promotion, budget-driven
//! eviction and reload all land *under* live traffic.
//!
//! Exit codes: `0` success, `1` bad usage or connect failure, `2` any
//! request failed with a non-overload error (or a scaling / p99 gate
//! failed).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use cs_cluster::{run_cluster_sweep, ClusterSweepConfig};
use cs_net::{Client, RetryPolicy, Transport};
use cs_serve::loadgen::request_input;
use cs_serve::ExecBackend;

struct Args {
    addr: String,
    conns: usize,
    conns_sweep: Vec<usize>,
    requests: u64,
    seed: u64,
    model: String,
    out: Option<String>,
    shutdown: bool,
    wait_ready_secs: u64,
    think_ms: u64,
    warmup: u64,
    max_p99_ratio: f64,
    cluster: bool,
    nodes: Vec<usize>,
    scale: usize,
    workers_per_node: usize,
    backend: ExecBackend,
    transport: Transport,
    min_scaling: f64,
    /// Number of synthetic tenants to spread connections across
    /// (`tenant-0..tenant-N-1`); 0 sends untenanted traffic.
    tenants: usize,
    /// Relative connection share per tenant; empty means equal shares.
    tenant_weights: Vec<u64>,
    /// Lifecycle loads applied before the sweep starts.
    loads: Vec<LoadSpec>,
    /// Lifecycle loads fired once half the sweep's requests completed.
    mid_loads: Vec<LoadSpec>,
}

/// One `--load`/`--mid-load` directive: `name@version[:canary_pct]`.
#[derive(Clone)]
struct LoadSpec {
    model: String,
    version: u32,
    canary_pct: u8,
}

fn parse_load_spec(s: &str, flag: &str) -> LoadSpec {
    let bad = || -> ! {
        eprintln!("error: {flag} expects NAME@VERSION[:PCT], got {s:?}");
        usage();
    };
    let (model, rest) = match s.split_once('@') {
        Some((m, r)) if !m.is_empty() => (m.to_string(), r),
        _ => bad(),
    };
    let (version, pct) = match rest.split_once(':') {
        Some((v, p)) => (v, p.parse().unwrap_or_else(|_| bad())),
        None => (rest, 0u8),
    };
    if pct > 100 {
        bad();
    }
    LoadSpec {
        model,
        version: version.parse().unwrap_or_else(|_| bad()),
        canary_pct: pct,
    }
}

/// Completed requests across every connection thread; the mid-sweep
/// loader watches it to fire at the halfway mark.
static PROGRESS: AtomicU64 = AtomicU64::new(0);
/// Set when the sweep finishes, so the mid-sweep loader can never hang
/// waiting for a halfway mark that errors prevented.
static SWEEP_DONE: AtomicBool = AtomicBool::new(false);

/// Tenant label for one connection. Connections are dealt round-robin
/// across a weight-expanded pattern (weights `2,1` → `t0,t0,t1`
/// repeating), so the traffic mix tracks the weights at any connection
/// count with no randomness to un-replay.
fn tenant_of(args: &Args, conn: usize) -> String {
    if args.tenants == 0 {
        return String::new();
    }
    let mut pattern: Vec<usize> = Vec::new();
    for (t, &w) in args.tenant_weights.iter().enumerate() {
        pattern.extend(std::iter::repeat_n(t, w as usize));
    }
    if pattern.is_empty() {
        pattern = (0..args.tenants).collect();
    }
    format!("tenant-{}", pattern[conn % pattern.len()])
}

fn usage() -> ! {
    eprintln!(
        "usage: cs-netload --addr HOST:PORT [--conns N | --conns-sweep N,N,..]\n\
         \x20                [--requests N] [--seed N] [--model NAME] [--out PATH]\n\
         \x20                [--think-ms N] [--warmup N] [--max-p99-ratio F] [--shutdown]\n\
         \x20                [--wait-ready SECS] [--tenants N] [--tenant-weights W,W,..]\n\
         \x20                [--load NAME@VER[:PCT]]... [--mid-load NAME@VER[:PCT]]...\n\
         \x20      cs-netload --cluster [--nodes N,N,..] [--conns N] [--requests N]\n\
         \x20                [--seed N] [--scale N] [--workers N]\n\
         \x20                [--backend simulator|sparse|dense]\n\
         \x20                [--transport threaded|reactor] [--out PATH]\n\
         \x20                [--min-scaling F]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: String::new(),
        conns: 4,
        conns_sweep: Vec::new(),
        requests: 64,
        seed: 7,
        model: "mlp".to_string(),
        out: None,
        shutdown: false,
        wait_ready_secs: 0,
        think_ms: 0,
        warmup: 0,
        max_p99_ratio: 0.0,
        cluster: false,
        nodes: vec![1, 2, 4],
        scale: 8,
        workers_per_node: 2,
        backend: ExecBackend::Simulator,
        transport: Transport::default(),
        min_scaling: 0.0,
        tenants: 0,
        tenant_weights: Vec::new(),
        loads: Vec::new(),
        mid_loads: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--load" => out.loads.push(parse_load_spec(&value("--load"), "--load")),
            "--mid-load" => out
                .mid_loads
                .push(parse_load_spec(&value("--mid-load"), "--mid-load")),
            "--conns" => out.conns = parse_num(&value("--conns"), "--conns") as usize,
            "--conns-sweep" => {
                out.conns_sweep = value("--conns-sweep")
                    .split(',')
                    .map(|s| parse_num(s, "--conns-sweep") as usize)
                    .collect();
            }
            "--requests" => out.requests = parse_num(&value("--requests"), "--requests"),
            "--seed" => out.seed = parse_num(&value("--seed"), "--seed"),
            "--model" => out.model = value("--model"),
            "--out" => out.out = Some(value("--out")),
            "--shutdown" => out.shutdown = true,
            "--wait-ready" => {
                out.wait_ready_secs = parse_num(&value("--wait-ready"), "--wait-ready")
            }
            "--think-ms" => out.think_ms = parse_num(&value("--think-ms"), "--think-ms"),
            "--warmup" => out.warmup = parse_num(&value("--warmup"), "--warmup"),
            "--max-p99-ratio" => {
                out.max_p99_ratio = match value("--max-p99-ratio").parse() {
                    Ok(f) => f,
                    Err(_) => {
                        eprintln!("error: --max-p99-ratio expects a number");
                        usage();
                    }
                }
            }
            "--cluster" => out.cluster = true,
            "--nodes" => {
                out.nodes = value("--nodes")
                    .split(',')
                    .map(|s| parse_num(s, "--nodes") as usize)
                    .collect();
            }
            "--scale" => out.scale = parse_num(&value("--scale"), "--scale") as usize,
            "--workers" => {
                out.workers_per_node = parse_num(&value("--workers"), "--workers") as usize
            }
            "--backend" => {
                out.backend = match value("--backend").as_str() {
                    "simulator" | "sim" => ExecBackend::Simulator,
                    "sparse" => ExecBackend::Sparse,
                    "dense" => ExecBackend::Dense,
                    other => {
                        eprintln!("error: unknown backend {other:?}");
                        usage();
                    }
                }
            }
            "--transport" => {
                out.transport = match value("--transport").parse() {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {e}");
                        usage();
                    }
                }
            }
            "--tenants" => out.tenants = parse_num(&value("--tenants"), "--tenants") as usize,
            "--tenant-weights" => {
                out.tenant_weights = value("--tenant-weights")
                    .split(',')
                    .map(|s| parse_num(s, "--tenant-weights"))
                    .collect();
            }
            "--min-scaling" => {
                out.min_scaling = match value("--min-scaling").parse() {
                    Ok(f) => f,
                    Err(_) => {
                        eprintln!("error: --min-scaling expects a number");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    if !out.cluster && out.addr.is_empty() {
        eprintln!("error: --addr is required (or use --cluster)");
        usage();
    }
    if out.conns == 0 || out.requests == 0 {
        eprintln!("error: --conns and --requests must be at least 1");
        usage();
    }
    if out.conns_sweep.contains(&0) {
        eprintln!("error: --conns-sweep needs positive counts");
        usage();
    }
    if out.cluster && (out.nodes.is_empty() || out.nodes.contains(&0)) {
        eprintln!("error: --nodes needs positive counts");
        usage();
    }
    if !out.tenant_weights.is_empty() {
        if out.tenant_weights.len() != out.tenants {
            eprintln!("error: --tenant-weights needs one weight per tenant");
            usage();
        }
        if out.tenant_weights.contains(&0) {
            eprintln!("error: --tenant-weights needs positive weights");
            usage();
        }
    }
    out
}

fn parse_num(s: &str, flag: &str) -> u64 {
    match s.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {s:?}");
            usage();
        }
    }
}

/// SplitMix64 for think-time jitter: deterministic per seed, so a
/// sweep's arrival process replays exactly.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Per-connection sweep outcome.
struct ConnResult {
    conn: usize,
    /// Tenant this connection billed its traffic to (empty when
    /// `--tenants` is off).
    tenant: String,
    completed: u64,
    overload_rounds: u64,
    /// Overload rejections whose error frame echoed a different tenant
    /// than this connection sent — any nonzero count means the tenant
    /// label was lost somewhere between admission and the wire.
    mislabeled_overloads: u64,
    /// Client-observed round-trip latencies.
    latencies_us: Vec<u64>,
    /// Server-reported per-request latencies (`latency_us` in each
    /// response frame): decode→reply time on the server, free of
    /// client-side scheduling noise.
    server_latencies_us: Vec<u64>,
    error: Option<String>,
}

fn run_connection(args: &Args, conn: usize) -> ConnResult {
    let mut result = ConnResult {
        conn,
        tenant: tenant_of(args, conn),
        completed: 0,
        overload_rounds: 0,
        mislabeled_overloads: 0,
        latencies_us: Vec::with_capacity(args.requests as usize),
        server_latencies_us: Vec::with_capacity(args.requests as usize),
        error: None,
    };
    let mut client = match Client::connect(&args.addr) {
        Ok(c) => c,
        Err(e) => {
            result.error = Some(format!("connect: {e}"));
            return result;
        }
    };
    let n_in = match client.model_info(&args.model) {
        Ok((n_in, _)) => n_in as usize,
        Err(e) => {
            result.error = Some(format!("model query: {e}"));
            return result;
        }
    };
    let policy = RetryPolicy {
        seed: args.seed ^ conn as u64,
        ..RetryPolicy::default()
    };
    let mut jitter = SplitMix64(args.seed.wrapping_mul(0x9E37).wrapping_add(conn as u64));
    if args.think_ms > 0 {
        // Random initial offset in [0, think): without it every
        // connection fires its first request at the same instant and
        // the opening wave dominates a short run's tail latency.
        let offset = jitter.next() % (args.think_ms * 1000);
        std::thread::sleep(std::time::Duration::from_micros(offset));
    }
    for i in 0..args.requests {
        // Globally unique request id -> unique deterministic input,
        // exactly as the in-process loadgen shapes its traffic.
        let request_id = (conn as u64) * args.requests + i;
        let input = request_input(n_in, request_id, args.seed);
        loop {
            let t0 = Instant::now();
            match client.request_with_retry_as(&args.model, &result.tenant, &input, &policy) {
                Ok(resp) => {
                    // Warmup requests complete but don't enter the
                    // latency stats: the opening connect storm (every
                    // connection dials at t=0) is a start transient,
                    // not the steady state the percentiles describe.
                    if i >= args.warmup {
                        result.latencies_us.push(t0.elapsed().as_micros() as u64);
                        result.server_latencies_us.push(resp.latency_us);
                    }
                    result.completed += 1;
                    PROGRESS.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                Err(e) if e.is_overloaded() => {
                    // The whole retry budget drained and the server is
                    // still shedding: stay closed-loop and go again.
                    if let cs_net::NetError::Remote { tenant, .. } = &e {
                        if !result.tenant.is_empty() && *tenant != result.tenant {
                            result.mislabeled_overloads += 1;
                        }
                    }
                    result.overload_rounds += 1;
                }
                Err(e) => {
                    result.error = Some(format!("request {request_id}: {e}"));
                    return result;
                }
            }
        }
        if args.think_ms > 0 {
            // Uniform in [0.5, 1.5] × think: same mean rate, no waves.
            let us = args.think_ms * 500 + jitter.next() % (args.think_ms * 1000);
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }
    result
}

/// Drives `conns` concurrent closed-loop connections to completion.
fn run_load(args: &Args, conns: usize) -> Vec<ConnResult> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| {
                scope.spawn({
                    let args = &args;
                    move || run_connection(args, conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(conn, h)| {
                h.join().unwrap_or_else(|_| ConnResult {
                    conn,
                    tenant: tenant_of(args, conn),
                    completed: 0,
                    overload_rounds: 0,
                    mislabeled_overloads: 0,
                    latencies_us: Vec::new(),
                    server_latencies_us: Vec::new(),
                    error: Some("connection thread panicked".to_string()),
                })
            })
            .collect()
    })
}

/// Event-driven sweep client (Linux only): one thread multiplexes every
/// connection through the reactor's own readiness shim
/// ([`cs_net::poll`]) and incremental codec ([`cs_net::FrameAssembler`]
/// / [`cs_net::WriteBuffer`]). A thousand closed-loop connections cost
/// one runnable thread instead of a thousand, so on a small host the
/// measured tail belongs to the server under test, not to the load
/// generator's own scheduler queue.
#[cfg(target_os = "linux")]
mod evloop {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    use std::io::Read;
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::time::{Duration, Instant};

    use cs_net::poll::{Epoll, EpollEvent, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
    use cs_net::{ErrorCode, Frame, FrameAssembler, WriteBuffer, DEFAULT_MAX_PAYLOAD};
    use cs_serve::loadgen::request_input;

    use super::{Args, ConnResult, SplitMix64};

    /// Closed-loop state of one multiplexed connection.
    enum Phase {
        /// Waiting out a pacing pause before (re)issuing request `index`.
        Thinking,
        /// Request `index` is on the wire awaiting its reply.
        InFlight,
        /// All requests answered, or the connection errored out.
        Done,
    }

    struct Conn {
        stream: TcpStream,
        asm: FrameAssembler,
        wbuf: WriteBuffer,
        jitter: SplitMix64,
        phase: Phase,
        /// When `Thinking` ends and the next request goes out.
        next_send_at: Instant,
        /// Current request number in `0..requests`; overload retries
        /// reuse it, so the request id and input replay deterministically.
        index: u64,
        /// Send instant of the in-flight request (client-side latency).
        sent_at: Instant,
        /// Whether `EPOLLOUT` interest is currently registered.
        want_write: bool,
        result: ConnResult,
    }

    fn failed_result(args: &Args, conn: usize, err: String) -> ConnResult {
        ConnResult {
            conn,
            tenant: super::tenant_of(args, conn),
            completed: 0,
            overload_rounds: 0,
            mislabeled_overloads: 0,
            latencies_us: Vec::new(),
            server_latencies_us: Vec::new(),
            error: Some(err),
        }
    }

    /// Drives `conns` closed-loop connections to completion on one
    /// thread. A setup failure (epoll, connect, register) fails the
    /// whole point: every connection reports the error.
    pub fn run_load_event(args: &Args, conns: usize, n_in: usize) -> Vec<ConnResult> {
        match drive(args, conns, n_in) {
            Ok(results) => results,
            Err(e) => (0..conns)
                .map(|conn| failed_result(args, conn, format!("event loop: {e}")))
                .collect(),
        }
    }

    fn drive(args: &Args, conns: usize, n_in: usize) -> std::io::Result<Vec<ConnResult>> {
        let epoll = Epoll::new()?;
        let start = Instant::now();
        let mut heap: BinaryHeap<Reverse<(Instant, usize)>> = BinaryHeap::new();
        let mut table: Vec<Conn> = Vec::with_capacity(conns);
        for conn in 0..conns {
            let mut jitter = SplitMix64(args.seed.wrapping_mul(0x9E37).wrapping_add(conn as u64));
            // Random initial offset in [0, think): same de-synchronized
            // arrival process as the threaded path.
            let offset_us = if args.think_ms > 0 {
                jitter.next() % (args.think_ms * 1000)
            } else {
                0
            };
            let stream = TcpStream::connect(&args.addr)?;
            let _ = stream.set_nodelay(true);
            stream.set_nonblocking(true)?;
            epoll.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, conn as u64)?;
            let next_send_at = start + Duration::from_micros(offset_us);
            heap.push(Reverse((next_send_at, conn)));
            table.push(Conn {
                stream,
                asm: FrameAssembler::new(DEFAULT_MAX_PAYLOAD),
                wbuf: WriteBuffer::new(),
                jitter,
                phase: Phase::Thinking,
                next_send_at,
                index: 0,
                sent_at: start,
                want_write: false,
                result: ConnResult {
                    conn,
                    tenant: super::tenant_of(args, conn),
                    completed: 0,
                    overload_rounds: 0,
                    mislabeled_overloads: 0,
                    latencies_us: Vec::with_capacity(args.requests as usize),
                    server_latencies_us: Vec::with_capacity(args.requests as usize),
                    error: None,
                },
            });
        }
        let mut active = conns;
        let mut events = vec![EpollEvent::zeroed(); 256];
        let mut scratch = vec![0u8; 64 * 1024];
        while active > 0 {
            let now = Instant::now();
            while let Some(&Reverse((t, id))) = heap.peek() {
                if t > now {
                    break;
                }
                heap.pop();
                let c = &mut table[id];
                // Stale entries (the conn advanced past this deadline)
                // just fall out of the heap.
                if !matches!(c.phase, Phase::Thinking) || c.next_send_at != t {
                    continue;
                }
                if let Err(e) = send_request(c, id, args, n_in, &epoll) {
                    fail(c, e, &epoll, &mut active);
                }
            }
            let timeout_ms = match heap.peek() {
                Some(&Reverse((t, _))) => {
                    let dur = t.saturating_duration_since(Instant::now());
                    (dur.as_millis() as i64 + 1).min(1_000) as i32
                }
                None => 1_000,
            };
            let n = epoll.wait(&mut events, timeout_ms)?;
            for ev in events.iter().take(n) {
                let id = ev.token() as usize;
                let mask = ev.events();
                if matches!(table[id].phase, Phase::Done) {
                    continue;
                }
                if mask & (EPOLLERR | EPOLLHUP) != 0 {
                    let err = "socket error/hangup".to_string();
                    fail(&mut table[id], err, &epoll, &mut active);
                    continue;
                }
                if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                    match on_readable(&mut table[id], id, args, &mut scratch, &mut heap) {
                        Ok(()) => {
                            if matches!(table[id].phase, Phase::Done) {
                                let _ = epoll.delete(table[id].stream.as_raw_fd());
                                active -= 1;
                            }
                        }
                        Err(e) => fail(&mut table[id], e, &epoll, &mut active),
                    }
                }
                if mask & EPOLLOUT != 0 && !matches!(table[id].phase, Phase::Done) {
                    if let Err(e) = flush(&mut table[id], id, &epoll) {
                        fail(&mut table[id], e, &epoll, &mut active);
                    }
                }
            }
        }
        Ok(table.into_iter().map(|c| c.result).collect())
    }

    /// Marks a connection failed and drops it from the loop.
    fn fail(c: &mut Conn, err: String, epoll: &Epoll, active: &mut usize) {
        if !matches!(c.phase, Phase::Done) {
            let _ = epoll.delete(c.stream.as_raw_fd());
            *active -= 1;
        }
        c.phase = Phase::Done;
        if c.result.error.is_none() {
            c.result.error = Some(err);
        }
    }

    /// Issues request `index` for connection `id` and flushes.
    fn send_request(
        c: &mut Conn,
        id: usize,
        args: &Args,
        n_in: usize,
        epoll: &Epoll,
    ) -> Result<(), String> {
        let rid = (id as u64) * args.requests + c.index;
        let input = request_input(n_in, rid, args.seed);
        let frame = Frame::Request {
            id: rid,
            model: args.model.clone(),
            tenant: c.result.tenant.clone(),
            input,
        };
        c.wbuf.push(&frame.encode());
        c.sent_at = Instant::now();
        c.phase = Phase::InFlight;
        flush(c, id, epoll)
    }

    /// Flushes as much as the socket accepts and keeps `EPOLLOUT`
    /// interest in sync with whether bytes remain.
    fn flush(c: &mut Conn, id: usize, epoll: &Epoll) -> Result<(), String> {
        let mut w = &c.stream;
        if let Err(e) = c.wbuf.flush_to(&mut w) {
            return Err(format!("write: {e}"));
        }
        let pending = !c.wbuf.is_empty();
        if pending != c.want_write {
            let interest = if pending {
                EPOLLIN | EPOLLOUT | EPOLLRDHUP
            } else {
                EPOLLIN | EPOLLRDHUP
            };
            epoll
                .modify(c.stream.as_raw_fd(), interest, id as u64)
                .map_err(|e| format!("epoll: {e}"))?;
            c.want_write = pending;
        }
        Ok(())
    }

    /// Reads until `WouldBlock`, feeding the assembler and handling
    /// every completed frame.
    fn on_readable(
        c: &mut Conn,
        id: usize,
        args: &Args,
        scratch: &mut [u8],
        heap: &mut BinaryHeap<Reverse<(Instant, usize)>>,
    ) -> Result<(), String> {
        loop {
            let n = {
                let mut r = &c.stream;
                match r.read(scratch) {
                    Ok(0) => return Err("server closed the connection".to_string()),
                    Ok(n) => n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(format!("read: {e}")),
                }
            };
            c.asm.push(&scratch[..n]);
            loop {
                match c.asm.next_frame() {
                    Ok(Some(frame)) => on_frame(c, id, frame, args, heap)?,
                    Ok(None) => break,
                    Err(e) => return Err(format!("decode: {e}")),
                }
            }
            if matches!(c.phase, Phase::Done) {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Advances the closed loop on one reply frame.
    fn on_frame(
        c: &mut Conn,
        id: usize,
        frame: Frame,
        args: &Args,
        heap: &mut BinaryHeap<Reverse<(Instant, usize)>>,
    ) -> Result<(), String> {
        let rid = (id as u64) * args.requests + c.index;
        match frame {
            Frame::Response {
                id: got,
                latency_us,
                ..
            } => {
                if !matches!(c.phase, Phase::InFlight) || got != rid {
                    return Err(format!("unexpected response id {got} (expected {rid})"));
                }
                let now = Instant::now();
                // Warmup requests complete but stay out of the stats
                // (start transient, not steady state).
                if c.index >= args.warmup {
                    c.result
                        .latencies_us
                        .push(now.duration_since(c.sent_at).as_micros() as u64);
                    c.result.server_latencies_us.push(latency_us);
                }
                c.result.completed += 1;
                c.index += 1;
                if c.index == args.requests {
                    c.phase = Phase::Done;
                } else {
                    // Uniform in [0.5, 1.5] × think: the same pacing law
                    // as the threaded path, so sweeps are comparable.
                    let pause_us = if args.think_ms > 0 {
                        args.think_ms * 500 + c.jitter.next() % (args.think_ms * 1000)
                    } else {
                        0
                    };
                    c.phase = Phase::Thinking;
                    c.next_send_at = now + Duration::from_micros(pause_us);
                    heap.push(Reverse((c.next_send_at, id)));
                }
                Ok(())
            }
            Frame::Error {
                id: got,
                code: ErrorCode::Overloaded,
                tenant,
                ..
            } if got == rid => {
                // Stay closed-loop: jittered backoff, then reissue the
                // same request (the blocking client's retry, event-shaped).
                if !c.result.tenant.is_empty() && tenant != c.result.tenant {
                    c.result.mislabeled_overloads += 1;
                }
                c.result.overload_rounds += 1;
                c.phase = Phase::Thinking;
                c.next_send_at =
                    Instant::now() + Duration::from_micros(1_000 + c.jitter.next() % 4_000);
                heap.push(Reverse((c.next_send_at, id)));
                Ok(())
            }
            Frame::Error { code, detail, .. } => Err(format!("server error {code:?}: {detail}")),
            other => Err(format!("unexpected frame {other:?}")),
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn sorted_all(results: &[ConnResult], pick: impl Fn(&ConnResult) -> &[u64]) -> Vec<u64> {
    let mut all: Vec<u64> = results
        .iter()
        .flat_map(|r| pick(r).iter().copied())
        .collect();
    all.sort_unstable();
    all
}

fn jsonl_line(r: &ConnResult) -> String {
    let mut sorted = r.latencies_us.clone();
    sorted.sort_unstable();
    format!(
        "{{\"conn\":{},\"tenant\":{:?},\"completed\":{},\"overload_rounds\":{},\"mislabeled_overloads\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"error\":{}}}",
        r.conn,
        r.tenant,
        r.completed,
        r.overload_rounds,
        r.mislabeled_overloads,
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        match &r.error {
            Some(e) => format!("{:?}", e),
            None => "null".to_string(),
        }
    )
}

/// One `tenant_aggregate` JSONL record per tenant: completions,
/// shedding, and latency percentiles pooled over that tenant's
/// connections — the record the registry-smoke job reconciles against
/// the server's per-tenant telemetry.
fn tenant_aggregate_lines(results: &[ConnResult]) -> Vec<String> {
    let mut tenants: Vec<&str> = results.iter().map(|r| r.tenant.as_str()).collect();
    tenants.sort_unstable();
    tenants.dedup();
    tenants
        .iter()
        .filter(|t| !t.is_empty())
        .map(|t| {
            let of_tenant: Vec<&ConnResult> =
                results.iter().filter(|r| r.tenant == *t).collect();
            let mut all: Vec<u64> = of_tenant
                .iter()
                .flat_map(|r| r.latencies_us.iter().copied())
                .collect();
            all.sort_unstable();
            format!(
                "{{\"type\":\"tenant_aggregate\",\"tenant\":{:?},\"conns\":{},\"completed\":{},\"overload_rounds\":{},\"mislabeled_overloads\":{},\"p50_us\":{},\"p99_us\":{}}}",
                t,
                of_tenant.len(),
                of_tenant.iter().map(|r| r.completed).sum::<u64>(),
                of_tenant.iter().map(|r| r.overload_rounds).sum::<u64>(),
                of_tenant.iter().map(|r| r.mislabeled_overloads).sum::<u64>(),
                percentile(&all, 0.50),
                percentile(&all, 0.99),
            )
        })
        .collect()
}

fn run_cluster_mode(args: &Args) -> ! {
    let cfg = ClusterSweepConfig {
        node_counts: args.nodes.clone(),
        conns: args.conns,
        requests_per_conn: args.requests as usize,
        seed: args.seed,
        scale: args.scale,
        workers_per_node: args.workers_per_node,
        backend: args.backend,
        transport: args.transport,
    };
    println!(
        "cs-netload --cluster: nodes {:?}, {} conns x {} requests, seed {}, {} transport",
        cfg.node_counts, cfg.conns, cfg.requests_per_conn, cfg.seed, cfg.transport
    );
    let report = match run_cluster_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cluster sweep failed: {e}");
            std::process::exit(1);
        }
    };
    for p in &report.points {
        let per_node: Vec<String> = p
            .per_node_completed
            .iter()
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        println!(
            "  {} node(s): {} completed, {} errors, aggregate hw {:.0} req/s ({})",
            p.nodes,
            p.completed,
            p.errors,
            p.aggregate_hw_rps,
            per_node.join(", ")
        );
    }
    let scaling = report.scaling();
    println!(
        "scaling {:.2}x across {} -> {} nodes",
        scaling,
        report.points.first().map_or(0, |p| p.nodes),
        report.points.last().map_or(0, |p| p.nodes)
    );
    if let Some(path) = &args.out {
        let body = report.jsonl_lines().join("\n") + "\n";
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(2);
        }
        println!("results written to {path}");
    }
    if args.min_scaling > 0.0 && scaling < args.min_scaling {
        eprintln!(
            "error: scaling {scaling:.2}x is below the required {:.2}x",
            args.min_scaling
        );
        std::process::exit(2);
    }
    std::process::exit(0);
}

/// One measured connection count in a `--conns-sweep` run.
struct ConnSweepPoint {
    conns: usize,
    completed: u64,
    overload_rounds: u64,
    errors: u64,
    client_p99_us: u64,
    server_p50_us: u64,
    server_p95_us: u64,
    server_p99_us: u64,
}

impl ConnSweepPoint {
    fn jsonl(&self) -> String {
        format!(
            "{{\"type\":\"conn_sweep_point\",\"conns\":{},\"completed\":{},\
             \"overload_rounds\":{},\"errors\":{},\"client_p99_us\":{},\
             \"server_p50_us\":{},\"server_p95_us\":{},\"server_p99_us\":{}}}",
            self.conns,
            self.completed,
            self.overload_rounds,
            self.errors,
            self.client_p99_us,
            self.server_p50_us,
            self.server_p95_us,
            self.server_p99_us,
        )
    }
}

/// One sweep point's load run: event-driven single-threaded client on
/// Linux, thread-per-connection elsewhere.
#[cfg(target_os = "linux")]
fn run_load_sweep(args: &Args, conns: usize, n_in: usize) -> Vec<ConnResult> {
    evloop::run_load_event(args, conns, n_in)
}

/// One sweep point's load run (portable fallback).
#[cfg(not(target_os = "linux"))]
fn run_load_sweep(args: &Args, conns: usize, _n_in: usize) -> Vec<ConnResult> {
    run_load(args, conns)
}

/// Repeats the closed-loop run at each `--conns-sweep` count and gates
/// on the server-side p99 growth from the first point to the last.
fn run_conn_sweep(args: &Args) -> ! {
    println!(
        "cs-netload: sweeping {:?} conns x {} requests against {} (model \"{}\", seed {}, think {} ms)",
        args.conns_sweep, args.requests, args.addr, args.model, args.seed, args.think_ms
    );
    // Probe the model shape once; every connection reuses it.
    let n_in = match Client::connect(&args.addr).and_then(|mut c| c.model_info(&args.model)) {
        Ok((n_in, _)) => n_in as usize,
        Err(e) => {
            eprintln!("error: model query against {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let mut points: Vec<ConnSweepPoint> = Vec::new();
    let mut failed = 0u64;
    for &conns in &args.conns_sweep {
        let results = run_load_sweep(args, conns, n_in);
        let client_all = sorted_all(&results, |r| &r.latencies_us);
        let server_all = sorted_all(&results, |r| &r.server_latencies_us);
        let point = ConnSweepPoint {
            conns,
            completed: results.iter().map(|r| r.completed).sum(),
            overload_rounds: results.iter().map(|r| r.overload_rounds).sum(),
            errors: results.iter().filter(|r| r.error.is_some()).count() as u64,
            client_p99_us: percentile(&client_all, 0.99),
            server_p50_us: percentile(&server_all, 0.50),
            server_p95_us: percentile(&server_all, 0.95),
            server_p99_us: percentile(&server_all, 0.99),
        };
        for r in results.iter().filter(|r| r.error.is_some()) {
            eprintln!(
                "  conns={conns} conn {} failed: {}",
                r.conn,
                r.error.as_deref().unwrap_or("")
            );
        }
        println!(
            "  {} conns: {} completed, {} errors, server p50 {} us / p95 {} us / p99 {} us, client p99 {} us",
            point.conns,
            point.completed,
            point.errors,
            point.server_p50_us,
            point.server_p95_us,
            point.server_p99_us,
            point.client_p99_us,
        );
        failed += point.errors;
        points.push(point);
    }

    if let Some(path) = &args.out {
        let body = points
            .iter()
            .map(ConnSweepPoint::jsonl)
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(2);
        }
        println!("results written to {path}");
    }

    let mut gate_failed = false;
    if args.max_p99_ratio > 0.0 {
        if let (Some(first), Some(last)) = (points.first(), points.last()) {
            let base = first.server_p99_us.max(1);
            let ratio = last.server_p99_us as f64 / base as f64;
            println!(
                "server p99 growth {} -> {} conns: {:.2}x (gate {:.2}x)",
                first.conns, last.conns, ratio, args.max_p99_ratio
            );
            if ratio > args.max_p99_ratio {
                eprintln!(
                    "error: server-side p99 grew {ratio:.2}x across the sweep, \
                     above the allowed {:.2}x",
                    args.max_p99_ratio
                );
                gate_failed = true;
            }
        }
    }

    if args.shutdown {
        match Client::connect(&args.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("server drained and stopped"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if failed > 0 || gate_failed {
        std::process::exit(2);
    }
    std::process::exit(0);
}

/// Polls the endpoint until the target model resolves (or the deadline
/// passes). Against an orchestrator this waits out the window between
/// "listener up" and "first worker registered", so scripted multi-process
/// bring-up doesn't race worker registration.
fn wait_ready(args: &Args) {
    let deadline = Instant::now() + std::time::Duration::from_secs(args.wait_ready_secs);
    loop {
        let ready = Client::connect(&args.addr)
            .and_then(|mut c| c.model_info(&args.model))
            .is_ok();
        if ready {
            return;
        }
        if Instant::now() >= deadline {
            eprintln!(
                "error: {} did not serve model {:?} within {}s",
                args.addr, args.model, args.wait_ready_secs
            );
            std::process::exit(1);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// Sends one `LoadModel` per spec over a fresh control connection,
/// retrying the connect until `deadline` (the server may still be
/// binding); a load *rejection* is fatal immediately — a typed
/// registry error is an answer, not a bring-up race.
fn apply_loads(addr: &str, specs: &[LoadSpec], what: &str, deadline: Instant) {
    let mut client = loop {
        match Client::connect(addr) {
            Ok(c) => break c,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("error: {what} connect to {addr} failed: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    };
    for spec in specs {
        match client.load_model(&spec.model, spec.version, spec.canary_pct) {
            Ok(models) => {
                let canary = if spec.canary_pct > 0 {
                    format!(" (canary {}%)", spec.canary_pct)
                } else {
                    String::new()
                };
                println!(
                    "{what}: loaded {}@v{}{canary}; {} version(s) resident",
                    spec.model,
                    spec.version,
                    models.len()
                );
            }
            Err(e) => {
                eprintln!(
                    "error: {what} of {}@v{} failed: {e}",
                    spec.model, spec.version
                );
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args = parse_args();
    if args.cluster {
        run_cluster_mode(&args);
    }
    if !args.mid_loads.is_empty() && (args.cluster || !args.conns_sweep.is_empty()) {
        eprintln!("error: --mid-load is only meaningful in plain server mode");
        usage();
    }
    let bringup_deadline =
        Instant::now() + std::time::Duration::from_secs(args.wait_ready_secs.max(5));
    if !args.loads.is_empty() {
        apply_loads(&args.addr, &args.loads, "load", bringup_deadline);
    }
    if args.wait_ready_secs > 0 {
        wait_ready(&args);
    }
    if !args.conns_sweep.is_empty() {
        run_conn_sweep(&args);
    }

    // The mid-sweep loader: fire the lifecycle frames from a side
    // connection once half the expected requests have completed, so
    // promotion/eviction/reload land under live traffic. The done flag
    // guarantees it still fires (and the run still checks the loads
    // succeed) even if errors kept the halfway mark out of reach.
    let halfway = (args.conns as u64).saturating_mul(args.requests) / 2;
    let mid_loader = (!args.mid_loads.is_empty()).then(|| {
        let addr = args.addr.clone();
        let specs = args.mid_loads.clone();
        std::thread::spawn(move || {
            while PROGRESS.load(Ordering::Relaxed) < halfway && !SWEEP_DONE.load(Ordering::Relaxed)
            {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            apply_loads(
                &addr,
                &specs,
                "mid-sweep load",
                Instant::now() + std::time::Duration::from_secs(5),
            );
        })
    });

    let results = run_load(&args, args.conns);
    SWEEP_DONE.store(true, Ordering::Relaxed);
    if let Some(h) = mid_loader {
        if h.join().is_err() {
            eprintln!("error: mid-sweep loader panicked");
            std::process::exit(2);
        }
    }

    let all = sorted_all(&results, |r| &r.latencies_us);
    let completed: u64 = results.iter().map(|r| r.completed).sum();
    let retries: u64 = results.iter().map(|r| r.overload_rounds).sum();
    let mislabeled: u64 = results.iter().map(|r| r.mislabeled_overloads).sum();
    let failed: Vec<&ConnResult> = results.iter().filter(|r| r.error.is_some()).collect();

    println!(
        "cs-netload: {} conns x {} requests against {} (model \"{}\", seed {})",
        args.conns, args.requests, args.addr, args.model, args.seed
    );
    println!(
        "completed {completed}, overload rounds {retries}, socket latency p50 {} us, p95 {} us, p99 {} us",
        percentile(&all, 0.50),
        percentile(&all, 0.95),
        percentile(&all, 0.99),
    );
    if args.tenants > 0 {
        for line in tenant_aggregate_lines(&results) {
            println!("  {line}");
        }
        if mislabeled > 0 {
            eprintln!("error: {mislabeled} overload rejections echoed the wrong tenant label");
        }
    }
    for r in &failed {
        eprintln!(
            "conn {} failed: {}",
            r.conn,
            r.error.as_deref().unwrap_or("")
        );
    }

    if let Some(path) = &args.out {
        let mut lines: Vec<String> = results.iter().map(jsonl_line).collect();
        lines.extend(tenant_aggregate_lines(&results));
        lines.push(format!(
            "{{\"aggregate\":true,\"conns\":{},\"completed\":{},\"overload_rounds\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            args.conns,
            completed,
            retries,
            percentile(&all, 0.50),
            percentile(&all, 0.95),
            percentile(&all, 0.99),
        ));
        let body = lines.join("\n") + "\n";
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(2);
        }
        println!("results written to {path}");
    }

    if args.shutdown {
        match Client::connect(&args.addr).and_then(|mut c| c.shutdown_server()) {
            Ok(()) => println!("server drained and stopped"),
            Err(e) => {
                eprintln!("shutdown failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if !failed.is_empty() || mislabeled > 0 {
        std::process::exit(2);
    }
}
