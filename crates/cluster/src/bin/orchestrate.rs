//! `cs-orchestrate` — stand up a cluster orchestrator.
//!
//! Binds the control/client listener, prints the bound address (and
//! writes it atomically to `--addr-file` for CI discovery), then blocks
//! until a client sends the shutdown control frame — which cascades to
//! every registered worker, drains each one, and only then acks. No
//! signal handling: termination is part of the protocol, exactly like
//! `cs-netserve`.
//!
//! ```text
//! cs-orchestrate --addr 127.0.0.1:0 --addr-file /tmp/orch.addr \
//!                --heartbeat-ms 100 --metrics-out /tmp/cluster.jsonl
//! ```
//!
//! Exit codes: `0` clean shutdown, `1` startup/config failure.

use std::sync::Arc;

use cs_cluster::{Orchestrator, OrchestratorConfig};
use cs_telemetry::{Recorder, Registry};

struct Args {
    addr: String,
    addr_file: Option<String>,
    metrics_out: Option<String>,
    heartbeat_ms: u32,
    heartbeat_timeout_ms: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: cs-orchestrate [--addr HOST:PORT] [--addr-file PATH] [--metrics-out PATH]\n\
         \x20                    [--heartbeat-ms N] [--heartbeat-timeout-ms N]"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut out = Args {
        addr: "127.0.0.1:0".to_string(),
        addr_file: None,
        metrics_out: None,
        heartbeat_ms: 100,
        heartbeat_timeout_ms: 350,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--addr" => out.addr = value("--addr"),
            "--addr-file" => out.addr_file = Some(value("--addr-file")),
            "--metrics-out" => out.metrics_out = Some(value("--metrics-out")),
            "--heartbeat-ms" => {
                out.heartbeat_ms = parse_num(&value("--heartbeat-ms"), "--heartbeat-ms")
            }
            "--heartbeat-timeout-ms" => {
                out.heartbeat_timeout_ms =
                    parse_num(&value("--heartbeat-timeout-ms"), "--heartbeat-timeout-ms")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    out
}

fn parse_num(s: &str, flag: &str) -> u32 {
    match s.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {s:?}");
            usage();
        }
    }
}

fn main() {
    let args = parse_args();
    let registry = Arc::new(Registry::new());
    let orch = match Orchestrator::start_with_recorder(
        OrchestratorConfig {
            addr: args.addr.clone(),
            heartbeat_ms: args.heartbeat_ms,
            heartbeat_timeout_ms: args.heartbeat_timeout_ms,
            ..OrchestratorConfig::default()
        },
        registry.clone(),
    ) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("starting orchestrator failed: {e}");
            std::process::exit(1);
        }
    };

    let addr = orch.local_addr();
    println!(
        "cs-orchestrate listening on {addr} (heartbeat {} ms, eviction {} ms)",
        args.heartbeat_ms, args.heartbeat_timeout_ms
    );
    if let Some(path) = &args.addr_file {
        // Workers and the load generator discover the ephemeral port
        // through this file, so write it atomically (write tmp, rename).
        let tmp = format!("{path}.tmp");
        let write =
            std::fs::write(&tmp, addr.to_string()).and_then(|()| std::fs::rename(&tmp, path));
        if let Err(e) = write {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(1);
        }
    }

    orch.wait_for_shutdown();
    orch.shutdown();
    println!("orchestrator stopped");

    if let Some(path) = &args.metrics_out {
        let jsonl = registry.jsonl().unwrap_or_default();
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("writing {path} failed: {e}");
            std::process::exit(1);
        }
        println!("telemetry written to {path}");
    }
}
