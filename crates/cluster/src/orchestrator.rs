//! The cluster control plane: registration, routing, health, failover.
//!
//! ```text
//! workers ──TCP──▶ Register/Heartbeat ──▶ Membership ◀── eviction sweeper
//!                     (control conns)         │ pick()
//! clients ──TCP──▶ Request ──▶ route ──forward▶ worker request plane
//!                                │ transport error: mark dead,
//!                                ▼ retry once on a survivor
//!                            Response / typed Error
//! ```
//!
//! The [`Orchestrator`] accepts both workers and clients on one
//! listener; the first frame decides the connection's role. A
//! connection that opens with [`Frame::Register`] becomes that
//! worker's **control channel** — heartbeats arrive on it, losing it
//! evicts the worker, and the cluster-wide shutdown cascade sends
//! [`Frame::Shutdown`] down it. Every other connection is a client:
//! requests are handled strictly in arrival order per connection, each
//! one answered exactly once (a routed response, a relayed typed
//! error, or a router-originated `NoReplica`/`WorkerLost` error), so
//! the wire contract matches a single [`cs_net::NetServer`].
//!
//! Failover: a forward that dies mid-flight (connection refused, reset,
//! truncated frame, timeout) marks the replica dead, purges its pooled
//! connections, and retries the request on a surviving replica
//! **exactly once**. A second transport failure answers
//! `WorkerLost`; no healthy replica at pick time answers `NoReplica`.
//! Replica-side typed errors (overload, shape mismatch) are relayed
//! verbatim and never retried — backoff is the client's decision
//! ([`cs_net::RetryPolicy`]).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cs_net::transport::{read_frame, write_frame};
use cs_net::{
    Client, ClientConfig, ErrorCode, Frame, NetError, WireModelStatus, DEFAULT_MAX_PAYLOAD,
};
use cs_telemetry::{
    buckets, Clock, Counter, Histogram, Labels, MonotonicClock, NoopRecorder, Recorder,
};

use crate::error::ClusterError;
use crate::membership::{Lease, Membership};
use crate::pool::ClientPool;

/// Orchestrator configuration.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Heartbeat interval told to registering workers.
    pub heartbeat_ms: u32,
    /// Eviction deadline: a healthy worker silent for longer is marked
    /// dead by the sweeper. Must exceed `heartbeat_ms` (≈3× is the
    /// conventional slack).
    pub heartbeat_timeout_ms: u32,
    /// Read deadline for accepted connections (idle clients are
    /// closed; control connections always beat it via heartbeats).
    pub read_timeout: Option<Duration>,
    /// Payload cap for accepted frames.
    pub max_payload: u32,
    /// Dial settings for pooled forwards to workers.
    pub forward: ClientConfig,
    /// How long the shutdown cascade waits for each worker's drain ack
    /// before giving up on it.
    pub shutdown_grace: Duration,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            addr: "127.0.0.1:0".to_string(),
            heartbeat_ms: 100,
            heartbeat_timeout_ms: 350,
            read_timeout: Some(Duration::from_secs(30)),
            max_payload: DEFAULT_MAX_PAYLOAD,
            forward: ClientConfig::default(),
            shutdown_grace: Duration::from_secs(10),
        }
    }
}

impl OrchestratorConfig {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ClusterError> {
        if self.heartbeat_ms == 0 {
            return Err(ClusterError::InvalidConfig(
                "heartbeat_ms must be at least 1".to_string(),
            ));
        }
        if self.heartbeat_timeout_ms <= self.heartbeat_ms {
            return Err(ClusterError::InvalidConfig(format!(
                "heartbeat_timeout_ms {} must exceed heartbeat_ms {}",
                self.heartbeat_timeout_ms, self.heartbeat_ms
            )));
        }
        if self.max_payload < 64 {
            return Err(ClusterError::InvalidConfig(format!(
                "max_payload {} is too small to carry any request",
                self.max_payload
            )));
        }
        Ok(())
    }
}

/// Router-path metric handles, fetched once at startup. The membership
/// gauges (`cluster_workers_registered` / `cluster_workers_healthy` /
/// `cluster_worker_outstanding`) live in [`Membership`]; all share the
/// recorder passed to [`Orchestrator::start_with_recorder`].
struct ClusterMetrics {
    routed: Counter,
    retried: Counter,
    failovers: Counter,
    failed: Counter,
    latency: Histogram,
}

impl ClusterMetrics {
    fn new(recorder: &dyn Recorder) -> Self {
        ClusterMetrics {
            routed: recorder.counter(
                "cluster_requests_routed_total",
                "Client requests the orchestrator routed to a replica",
                Labels::new(),
            ),
            retried: recorder.counter(
                "cluster_requests_retried_total",
                "Requests retried on a surviving replica after a transport failure",
                Labels::new(),
            ),
            failovers: recorder.counter(
                "cluster_failovers_total",
                "Workers evicted (transport failure, lost control connection, \
                 or missed heartbeat deadline)",
                Labels::new(),
            ),
            failed: recorder.counter(
                "cluster_requests_failed_total",
                "Requests the router could not answer from any replica \
                 (NoReplica / WorkerLost)",
                Labels::new(),
            ),
            latency: recorder.histogram(
                "cluster_route_latency_us",
                "End-to-end routed latency: client frame decoded to reply \
                 ready (µs)",
                Labels::new(),
                &buckets::duration_us(),
            ),
        }
    }
}

/// A worker's control channel: the stream the shutdown cascade writes
/// to, and the signal its conn thread raises when the drain ack (or
/// the connection's death) arrives.
struct Control {
    stream: TcpStream,
    acked: Arc<(Mutex<bool>, Condvar)>,
}

/// State shared by the accept loop, connection threads, the sweeper,
/// and the owning [`Orchestrator`] handle.
struct OrchShared {
    cfg: OrchestratorConfig,
    membership: Membership,
    pool: ClientPool,
    metrics: ClusterMetrics,
    clock: Arc<dyn Clock>,
    stop: AtomicBool,
    draining: AtomicBool,
    conns: Mutex<Vec<(u64, TcpStream)>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    controls: Mutex<HashMap<String, Control>>,
    shutdown_signal: (Mutex<bool>, Condvar),
    local_addr: SocketAddr,
}

impl OrchShared {
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        let (lock, cv) = &self.shutdown_signal;
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        *stopped = true;
        cv.notify_all();
    }
}

/// The running orchestrator. Dropping it (or [`Orchestrator::shutdown`])
/// stops the listener and joins every thread; workers it knew about
/// keep serving standalone.
pub struct Orchestrator {
    shared: Arc<OrchShared>,
    accept_thread: Option<JoinHandle<()>>,
    sweeper_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Orchestrator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orchestrator")
            .field("addr", &self.shared.local_addr)
            .finish_non_exhaustive()
    }
}

impl Orchestrator {
    /// Starts without telemetry.
    ///
    /// # Errors
    ///
    /// Invalid configs and bind failures.
    pub fn start(cfg: OrchestratorConfig) -> Result<Orchestrator, ClusterError> {
        Orchestrator::start_with_recorder(cfg, Arc::new(NoopRecorder))
    }

    /// Starts with a telemetry recorder; every cluster series
    /// (membership gauges, router counters, the routed-latency
    /// histogram) lands on it.
    ///
    /// # Errors
    ///
    /// Invalid configs and bind failures.
    pub fn start_with_recorder(
        cfg: OrchestratorConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Result<Orchestrator, ClusterError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ClusterError::Net(NetError::from_io("bind listener", &e)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Net(NetError::from_io("resolve bound address", &e)))?;
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let membership = Membership::new(
            Arc::clone(&clock),
            u64::from(cfg.heartbeat_timeout_ms) * 1_000,
            Arc::clone(&recorder),
        );
        let pool = ClientPool::new(cfg.forward.clone());
        let shared = Arc::new(OrchShared {
            metrics: ClusterMetrics::new(recorder.as_ref()),
            membership,
            pool,
            clock,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            conn_threads: Mutex::new(Vec::new()),
            controls: Mutex::new(HashMap::new()),
            shutdown_signal: (Mutex::new(false), Condvar::new()),
            local_addr,
            cfg,
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cs-cluster-accept".to_string())
                .spawn(move || accept_loop(&shared, &listener))
                .map_err(|e| ClusterError::InvalidConfig(format!("spawning accept thread: {e}")))?
        };
        let sweeper_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("cs-cluster-sweeper".to_string())
                .spawn(move || sweeper_loop(&shared))
                .map_err(|e| ClusterError::InvalidConfig(format!("spawning sweeper thread: {e}")))?
        };
        Ok(Orchestrator {
            shared,
            accept_thread: Some(accept_thread),
            sweeper_thread: Some(sweeper_thread),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The worker roster (tests inspect states and counts through it).
    pub fn membership(&self) -> &Membership {
        &self.shared.membership
    }

    /// Blocks until a client's cluster-shutdown control frame finished
    /// cascading (or [`Orchestrator::shutdown`] was called elsewhere).
    pub fn wait_for_shutdown(&self) {
        let (lock, cv) = &self.shared.shutdown_signal;
        let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        while !*stopped {
            stopped = cv
                .wait(stopped)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stops the listener, closes every connection (workers keep
    /// serving standalone), and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.begin_stop();
        {
            let conns = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for (_, stream) in conns.iter() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sweeper_thread.take() {
            let _ = t.join();
        }
        loop {
            let threads: Vec<JoinHandle<()>> = {
                let mut guard = self
                    .shared
                    .conn_threads
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                guard.drain(..).collect()
            };
            if threads.is_empty() {
                break;
            }
            for t in threads {
                let _ = t.join();
            }
        }
    }
}

impl Drop for Orchestrator {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Marks the heartbeat deadline of silent workers; paused while the
/// cluster drains (a draining worker legitimately stops heartbeating).
fn sweeper_loop(shared: &Arc<OrchShared>) {
    let tick = Duration::from_millis(u64::from(shared.cfg.heartbeat_ms).clamp(10, 50));
    loop {
        std::thread::sleep(tick);
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if shared.draining.load(Ordering::SeqCst) {
            continue;
        }
        for worker in shared.membership.evict_expired() {
            shared.metrics.failovers.inc();
            fail_worker_cleanup(shared, &worker);
        }
    }
}

/// Purges a dead worker's pooled connections and closes its control
/// channel (unblocking the control thread and any cascade waiter).
fn fail_worker_cleanup(shared: &OrchShared, worker: &str) {
    shared.pool.purge(worker);
    let control = shared
        .controls
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .remove(worker);
    if let Some(c) = control {
        let _ = c.stream.shutdown(std::net::Shutdown::Both);
        signal_ack(&c.acked);
    }
}

fn signal_ack(acked: &Arc<(Mutex<bool>, Condvar)>) {
    let (lock, cv) = acked.as_ref();
    let mut done = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    *done = true;
    cv.notify_all();
}

fn accept_loop(shared: &Arc<OrchShared>, listener: &TcpListener) {
    let mut conn_id = 0u64;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(shared.cfg.read_timeout);
        conn_id += 1;
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push((conn_id, clone));
        }
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("cs-cluster-conn-{conn_id}"))
                .spawn(move || {
                    run_conn(&shared, stream, conn_id);
                    shared
                        .conns
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .retain(|(id, _)| *id != conn_id);
                })
        };
        if let Ok(h) = handle {
            shared
                .conn_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .push(h);
        } else {
            shared
                .conns
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .retain(|(id, _)| *id != conn_id);
        }
    }
}

/// The role a connection assumed after its registration frame.
struct ControlRole {
    worker: String,
    acked: Arc<(Mutex<bool>, Condvar)>,
    deregistered: bool,
}

/// Handles one connection — worker control or client request — until
/// it ends. Client requests are answered strictly in order, exactly
/// once each.
fn run_conn(shared: &Arc<OrchShared>, mut stream: TcpStream, _conn_id: u64) {
    let mut role: Option<ControlRole> = None;
    loop {
        let frame = match read_frame(&mut stream, shared.cfg.max_payload) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(NetError::Wire(e)) => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        tenant: String::new(),
                        detail: e.to_string(),
                    },
                );
                break;
            }
            Err(_) => break,
        };
        match frame {
            Frame::Register {
                id,
                worker,
                addr,
                models,
            } => {
                if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error {
                            id,
                            code: ErrorCode::ShuttingDown,
                            tenant: String::new(),
                            detail: "cluster is draining".to_string(),
                        },
                    );
                    break;
                }
                match shared.membership.register(&worker, &addr, models) {
                    Ok(()) => {
                        let acked = Arc::new((Mutex::new(false), Condvar::new()));
                        if let Ok(clone) = stream.try_clone() {
                            shared
                                .controls
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner())
                                .insert(
                                    worker.clone(),
                                    Control {
                                        stream: clone,
                                        acked: Arc::clone(&acked),
                                    },
                                );
                        }
                        role = Some(ControlRole {
                            worker,
                            acked,
                            deregistered: false,
                        });
                        let ack = Frame::RegisterAck {
                            id,
                            heartbeat_ms: shared.cfg.heartbeat_ms,
                        };
                        if write_frame(&mut stream, &ack).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = write_frame(
                            &mut stream,
                            &Frame::Error {
                                id,
                                code: ErrorCode::Internal,
                                tenant: String::new(),
                                detail: e.to_string(),
                            },
                        );
                        break;
                    }
                }
            }
            Frame::Heartbeat { worker, .. } => {
                shared.membership.heartbeat(&worker);
            }
            Frame::Deregister { id, worker } => {
                shared.membership.mark_dead(&worker);
                shared.pool.purge(&worker);
                shared
                    .controls
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .remove(&worker);
                if let Some(r) = role.as_mut() {
                    if r.worker == worker {
                        r.deregistered = true;
                    }
                }
                let _ = write_frame(&mut stream, &Frame::DeregisterAck { id });
            }
            Frame::Request {
                id,
                model,
                tenant,
                input,
            } => {
                shared.metrics.routed.inc();
                let t0 = shared.clock.now_us();
                let reply = if shared.draining.load(Ordering::SeqCst) {
                    Frame::Error {
                        id,
                        code: ErrorCode::ShuttingDown,
                        tenant: String::new(),
                        detail: "cluster is draining".to_string(),
                    }
                } else {
                    route_any(shared, id, &model, &|c: &mut Client| {
                        c.request_as(&model, &tenant, &input)
                            .map(|resp| response_frame(id, resp))
                    })
                };
                shared
                    .metrics
                    .latency
                    .observe(shared.clock.now_us().saturating_sub(t0));
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Frame::Query { id, model } => {
                let reply = if shared.draining.load(Ordering::SeqCst) {
                    Frame::Error {
                        id,
                        code: ErrorCode::ShuttingDown,
                        tenant: String::new(),
                        detail: "cluster is draining".to_string(),
                    }
                } else {
                    route_any(shared, id, &model, &|c: &mut Client| {
                        c.model_info(&model).map(|(n_in, n_out)| Frame::Info {
                            id,
                            model: model.clone(),
                            n_in,
                            n_out,
                        })
                    })
                };
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Frame::Ping { id } => {
                if write_frame(&mut stream, &Frame::Pong { id }).is_err() {
                    break;
                }
            }
            Frame::Shutdown { id } => {
                // Cluster-wide drain: stop admitting, cascade the
                // shutdown to every worker, ack the client only after
                // every drain ack (or grace timeout) came back.
                cascade_shutdown(shared);
                let _ = write_frame(&mut stream, &Frame::ShutdownAck { id });
                shared.begin_stop();
                break;
            }
            Frame::ShutdownAck { .. } => match role.as_ref() {
                // The worker's drain finished; release the cascade.
                Some(r) => signal_ack(&r.acked),
                None => break,
            },
            Frame::LoadModel {
                id,
                model,
                version,
                canary_pct,
            } => {
                let reply = if shared.draining.load(Ordering::SeqCst) {
                    Frame::Error {
                        id,
                        code: ErrorCode::ShuttingDown,
                        tenant: String::new(),
                        detail: "cluster is draining".to_string(),
                    }
                } else {
                    // A load targets a worker that already serves some
                    // version of the model; its local registry supplies
                    // the bytes, so nothing heavy crosses this hop.
                    route_any(shared, id, &model, &|c: &mut Client| {
                        c.load_model(&model, version, canary_pct)
                            .map(|models| Frame::ModelList { id, models })
                    })
                };
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Frame::UnloadModel { id, model, version } => {
                let reply = if shared.draining.load(Ordering::SeqCst) {
                    Frame::Error {
                        id,
                        code: ErrorCode::ShuttingDown,
                        tenant: String::new(),
                        detail: "cluster is draining".to_string(),
                    }
                } else {
                    route_any(shared, id, &model, &|c: &mut Client| {
                        c.unload_model(&model, version)
                            .map(|models| Frame::ModelList { id, models })
                    })
                };
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
            Frame::ListModels { id } => {
                let reply = if shared.draining.load(Ordering::SeqCst) {
                    Frame::Error {
                        id,
                        code: ErrorCode::ShuttingDown,
                        tenant: String::new(),
                        detail: "cluster is draining".to_string(),
                    }
                } else {
                    list_cluster_models(shared, id)
                };
                if write_frame(&mut stream, &reply).is_err() {
                    break;
                }
            }
            // Anything else is a protocol violation at the orchestrator.
            other => {
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error {
                        id: other.id(),
                        code: ErrorCode::Malformed,
                        tenant: String::new(),
                        detail: "frame type is not valid at the orchestrator".to_string(),
                    },
                );
                break;
            }
        }
    }
    // A control connection that ends without a deregister is a dead
    // worker: evict it so routing stops immediately, and release any
    // cascade waiting on its ack.
    if let Some(r) = role {
        if !r.deregistered && shared.membership.mark_dead(&r.worker) {
            shared.metrics.failovers.inc();
        }
        fail_worker_cleanup(shared, &r.worker);
        signal_ack(&r.acked);
    }
}

fn response_frame(id: u64, resp: cs_net::NetResponse) -> Frame {
    Frame::Response {
        id,
        model: resp.model,
        outputs: resp.outputs,
        cycles: resp.cycles,
        energy_pj: resp.energy_pj,
        batch_size: resp.batch_size,
        worker: resp.worker,
        latency_us: resp.latency_us,
        node: resp.node,
    }
}

/// Routes one operation with at-most-one failover retry. `call` runs
/// the forward on a pooled connection and returns the reply frame;
/// replica-side typed errors are relayed without retrying, transport
/// failures evict the replica and retry exactly once.
fn route_any(
    shared: &OrchShared,
    id: u64,
    model: &str,
    call: &dyn Fn(&mut Client) -> Result<Frame, NetError>,
) -> Frame {
    let mut exclude: Option<String> = None;
    for attempt in 0..2u32 {
        let lease = match shared.membership.pick(model, exclude.as_deref()) {
            Some(l) => l,
            None => {
                shared.metrics.failed.inc();
                return Frame::Error {
                    id,
                    code: ErrorCode::NoReplica,
                    tenant: String::new(),
                    detail: format!("no healthy replica serves model {model:?}"),
                };
            }
        };
        match forward_once(shared, &lease, id, call) {
            Ok(reply) => return reply,
            Err(e) => {
                let worker = lease.worker.clone();
                drop(lease);
                if shared.membership.mark_dead(&worker) {
                    shared.metrics.failovers.inc();
                }
                fail_worker_cleanup(shared, &worker);
                if attempt == 0 {
                    shared.metrics.retried.inc();
                    exclude = Some(worker);
                    continue;
                }
                shared.metrics.failed.inc();
                return Frame::Error {
                    id,
                    code: ErrorCode::WorkerLost,
                    tenant: String::new(),
                    detail: format!("replica {worker:?} failed mid-request: {e}"),
                };
            }
        }
    }
    // Both loop arms return; this is unreachable but typed.
    shared.metrics.failed.inc();
    Frame::Error {
        id,
        code: ErrorCode::NoReplica,
        tenant: String::new(),
        detail: "routing exhausted".to_string(),
    }
}

/// Fans a `ListModels` out to every healthy worker and merges the
/// answers: one entry per `(name, version)` pair, `in_flight` and
/// `resident_bytes` summed across replicas, flags taken from the first
/// replica that reported the pair. Workers that fail mid-query are
/// skipped — a fleet listing is a snapshot, not a transaction.
fn list_cluster_models(shared: &OrchShared, id: u64) -> Frame {
    let mut merged: Vec<WireModelStatus> = Vec::new();
    for lease in shared.membership.lease_all() {
        let listed = forward_once(shared, &lease, id, &|c: &mut Client| {
            c.list_models()
                .map(|models| Frame::ModelList { id, models })
        });
        let worker = lease.worker.clone();
        drop(lease);
        match listed {
            Ok(Frame::ModelList { models, .. }) => {
                for status in models {
                    match merged
                        .iter_mut()
                        .find(|m| m.name == status.name && m.version == status.version)
                    {
                        Some(m) => {
                            m.in_flight += status.in_flight;
                            m.resident_bytes += status.resident_bytes;
                        }
                        None => merged.push(status),
                    }
                }
            }
            // A worker-side typed error on a fleet listing is not
            // fatal to the merge; skip that worker's contribution.
            Ok(_) => {}
            Err(_) => {
                if shared.membership.mark_dead(&worker) {
                    shared.metrics.failovers.inc();
                }
                fail_worker_cleanup(shared, &worker);
            }
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name).then(a.version.cmp(&b.version)));
    Frame::ModelList { id, models: merged }
}

/// One forward on a pooled connection. `Ok` is a reply to relay (the
/// routed response or the replica's typed error); `Err` is a transport
/// failure — the connection is dropped, never checked back in, and the
/// caller fails the replica over.
fn forward_once(
    shared: &OrchShared,
    lease: &Lease,
    id: u64,
    call: &dyn Fn(&mut Client) -> Result<Frame, NetError>,
) -> Result<Frame, NetError> {
    let mut client = shared.pool.checkout(&lease.worker, &lease.addr)?;
    match call(&mut client) {
        Ok(frame) => {
            shared.pool.checkin(&lease.worker, client);
            Ok(frame)
        }
        Err(NetError::Remote {
            code,
            tenant,
            detail,
        }) => {
            // The replica answered; the connection is healthy and the
            // typed error is the client's business, not a failover.
            shared.pool.checkin(&lease.worker, client);
            Ok(Frame::Error {
                id,
                code,
                tenant,
                detail,
            })
        }
        Err(e) => Err(e),
    }
}

/// Drains the whole cluster: stops admitting, sends the shutdown
/// control frame down every worker's control channel, and waits for
/// each drain ack (bounded by the grace period).
fn cascade_shutdown(shared: &Arc<OrchShared>) {
    shared.draining.store(true, Ordering::SeqCst);
    let controls: Vec<(String, Control)> = {
        let mut map = shared
            .controls
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.drain().collect()
    };
    // Fan the shutdown out first so worker drains overlap, then
    // collect the acks.
    for (_, control) in &controls {
        let mut w = &control.stream;
        let _ = write_frame(&mut w, &Frame::Shutdown { id: 0 });
    }
    for (worker, control) in &controls {
        let (lock, cv) = control.acked.as_ref();
        let mut done = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let deadline = std::time::Instant::now() + shared.cfg.shutdown_grace;
        while !*done {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, _timeout) = cv
                .wait_timeout(done, left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            done = guard;
        }
        shared.membership.mark_dead(worker);
        shared.pool.purge(worker);
    }
}
