//! Worker membership: registration, heartbeat deadlines, and replica
//! selection.
//!
//! [`Membership`] is the orchestrator's source of truth for which
//! workers exist, which are healthy, and which replica should take the
//! next request. Placement falls out of registration: every worker
//! announces the models it serves, so replicating one model across N
//! nodes and placing distinct models on distinct nodes are the same
//! mechanism — [`Membership::pick`] selects among the healthy workers
//! whose model list contains the requested name.
//!
//! Selection is **least-outstanding with round-robin tie-break**: the
//! healthy replica with the fewest in-flight requests wins, and ties
//! rotate so equally-loaded replicas share work instead of the map
//! order deciding. The in-flight count is tracked by [`Lease`] guards
//! (decrement on drop), which is also what feeds the per-worker
//! `cluster_worker_outstanding` gauges.
//!
//! Time is injected through [`cs_telemetry::Clock`], so the
//! heartbeat-deadline eviction ([`Membership::evict_expired`]) is
//! tested with a [`cs_telemetry::ManualClock`] rather than sleeps.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use cs_telemetry::{label, Clock, Gauge, Labels, Recorder};

use crate::error::ClusterError;

/// Lifecycle state of a registered worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Heartbeating within its deadline; eligible for routing.
    Healthy,
    /// Evicted (missed heartbeats, transport failure, or graceful
    /// deregister); kept for the record, never routed to. A worker may
    /// re-register under the same name from this state.
    Dead,
}

/// One registered worker.
struct Entry {
    addr: String,
    models: Vec<String>,
    state: WorkerState,
    last_seen_us: u64,
    outstanding: Arc<AtomicUsize>,
    outstanding_gauge: Gauge,
}

/// A routing decision: the chosen worker plus a guard holding its
/// in-flight slot. Dropping the lease releases the slot, so the
/// outstanding count survives every exit path of a forward.
pub struct Lease {
    /// Name the worker registered under.
    pub worker: String,
    /// Request-plane address to forward to.
    pub addr: String,
    outstanding: Arc<AtomicUsize>,
    gauge: Gauge,
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("worker", &self.worker)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
        self.gauge.sub(1);
    }
}

/// The worker roster. Interior-mutexed: the orchestrator's accept
/// threads, control threads, and the eviction sweeper share one
/// instance.
pub struct Membership {
    inner: Mutex<HashMap<String, Entry>>,
    clock: Arc<dyn Clock>,
    timeout_us: u64,
    rr: AtomicU64,
    recorder: Arc<dyn Recorder>,
    registered: Gauge,
    healthy: Gauge,
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("timeout_us", &self.timeout_us)
            .finish_non_exhaustive()
    }
}

impl Membership {
    /// An empty roster. `timeout_us` is the heartbeat deadline: a
    /// healthy worker not seen for longer is evicted by
    /// [`Membership::evict_expired`].
    pub fn new(clock: Arc<dyn Clock>, timeout_us: u64, recorder: Arc<dyn Recorder>) -> Membership {
        let registered = recorder.gauge(
            "cluster_workers_registered",
            "Workers the orchestrator knows about (healthy or dead)",
            Labels::new(),
        );
        let healthy = recorder.gauge(
            "cluster_workers_healthy",
            "Workers within their heartbeat deadline",
            Labels::new(),
        );
        Membership {
            inner: Mutex::new(HashMap::new()),
            clock,
            timeout_us,
            rr: AtomicU64::new(0),
            recorder,
            registered,
            healthy,
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Entry>> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Enrolls a worker. A dead entry under the same name is replaced
    /// (a restarted worker re-registers); a healthy one is a
    /// [`ClusterError::DuplicateWorker`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::DuplicateWorker`] as above,
    /// [`ClusterError::InvalidConfig`] for an empty name or model list.
    pub fn register(
        &self,
        name: &str,
        addr: &str,
        models: Vec<String>,
    ) -> Result<(), ClusterError> {
        if name.is_empty() {
            return Err(ClusterError::InvalidConfig(
                "worker name must be non-empty".to_string(),
            ));
        }
        if models.is_empty() {
            return Err(ClusterError::InvalidConfig(format!(
                "worker {name:?} registered no models"
            )));
        }
        let now = self.clock.now_us();
        let mut map = self.lock();
        if let Some(existing) = map.get(name) {
            if existing.state == WorkerState::Healthy {
                return Err(ClusterError::DuplicateWorker(name.to_string()));
            }
        }
        // A dead entry may still have live RAII leases (the sweeper can
        // evict a worker mid-request). Carry its counter and gauge into
        // the replacement so those leases' drops keep decrementing the
        // pair the router now reads — a fresh counter would restart at
        // zero and the stragglers would drive the shared gauge negative.
        let (outstanding, outstanding_gauge) = match map.get(name) {
            Some(old) => (Arc::clone(&old.outstanding), old.outstanding_gauge.clone()),
            None => (
                Arc::new(AtomicUsize::new(0)),
                self.recorder.gauge(
                    "cluster_worker_outstanding",
                    "Requests currently routed to this worker and not yet answered",
                    label("worker", name),
                ),
            ),
        };
        let replaced = map.insert(
            name.to_string(),
            Entry {
                addr: addr.to_string(),
                models,
                state: WorkerState::Healthy,
                last_seen_us: now,
                outstanding,
                outstanding_gauge,
            },
        );
        if replaced.is_none() {
            self.registered.add(1);
        }
        self.healthy.add(1);
        Ok(())
    }

    /// Records a liveness beacon. Returns `false` for a worker that is
    /// unknown or already evicted (it should re-register).
    pub fn heartbeat(&self, name: &str) -> bool {
        let now = self.clock.now_us();
        let mut map = self.lock();
        match map.get_mut(name) {
            Some(e) if e.state == WorkerState::Healthy => {
                e.last_seen_us = now;
                true
            }
            _ => false,
        }
    }

    /// Marks a worker dead (transport failure, control-connection loss,
    /// or graceful deregister). Returns `true` if the worker was
    /// healthy — i.e. this call is the one that evicted it.
    pub fn mark_dead(&self, name: &str) -> bool {
        let mut map = self.lock();
        match map.get_mut(name) {
            Some(e) if e.state == WorkerState::Healthy => {
                e.state = WorkerState::Dead;
                self.healthy.sub(1);
                true
            }
            _ => false,
        }
    }

    /// Evicts every healthy worker whose last heartbeat is older than
    /// the deadline; returns their names.
    pub fn evict_expired(&self) -> Vec<String> {
        let now = self.clock.now_us();
        let mut evicted = Vec::new();
        let mut map = self.lock();
        for (name, e) in map.iter_mut() {
            if e.state == WorkerState::Healthy
                && now.saturating_sub(e.last_seen_us) > self.timeout_us
            {
                e.state = WorkerState::Dead;
                self.healthy.sub(1);
                evicted.push(name.clone());
            }
        }
        evicted
    }

    /// Least-outstanding healthy replica serving `model`, round-robin
    /// among ties, skipping `exclude` (the replica a failover already
    /// tried). `None` means no healthy replica holds the model.
    pub fn pick(&self, model: &str, exclude: Option<&str>) -> Option<Lease> {
        let map = self.lock();
        let mut min = usize::MAX;
        let mut candidates: Vec<(&String, &Entry)> = Vec::new();
        for (name, e) in map.iter() {
            if e.state != WorkerState::Healthy
                || Some(name.as_str()) == exclude
                || !e.models.iter().any(|m| m == model)
            {
                continue;
            }
            let load = e.outstanding.load(Ordering::SeqCst);
            match load.cmp(&min) {
                std::cmp::Ordering::Less => {
                    min = load;
                    candidates.clear();
                    candidates.push((name, e));
                }
                std::cmp::Ordering::Equal => candidates.push((name, e)),
                std::cmp::Ordering::Greater => {}
            }
        }
        if candidates.is_empty() {
            return None;
        }
        // HashMap iteration order is arbitrary; sort so the rotation is
        // deterministic, then rotate so ties share work.
        candidates.sort_by(|a, b| a.0.cmp(b.0));
        let idx = (self.rr.fetch_add(1, Ordering::SeqCst) as usize) % candidates.len();
        let (name, e) = candidates[idx];
        e.outstanding.fetch_add(1, Ordering::SeqCst);
        e.outstanding_gauge.add(1);
        Some(Lease {
            worker: name.clone(),
            addr: e.addr.clone(),
            outstanding: Arc::clone(&e.outstanding),
            gauge: e.outstanding_gauge.clone(),
        })
    }

    /// Leases on every healthy worker, sorted by name — for control
    /// operations (model-lifecycle frames) that address the whole
    /// fleet rather than one replica.
    pub fn lease_all(&self) -> Vec<Lease> {
        let map = self.lock();
        let mut leases: Vec<Lease> = map
            .iter()
            .filter(|(_, e)| e.state == WorkerState::Healthy)
            .map(|(name, e)| {
                e.outstanding.fetch_add(1, Ordering::SeqCst);
                e.outstanding_gauge.add(1);
                Lease {
                    worker: name.clone(),
                    addr: e.addr.clone(),
                    outstanding: Arc::clone(&e.outstanding),
                    gauge: e.outstanding_gauge.clone(),
                }
            })
            .collect();
        leases.sort_by(|a, b| a.worker.cmp(&b.worker));
        leases
    }

    /// The state of a worker, if registered.
    pub fn state_of(&self, name: &str) -> Option<WorkerState> {
        self.lock().get(name).map(|e| e.state)
    }

    /// Names of the currently healthy workers (sorted, for determinism).
    pub fn healthy_workers(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .lock()
            .iter()
            .filter(|(_, e)| e.state == WorkerState::Healthy)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Healthy worker count.
    pub fn healthy_count(&self) -> usize {
        self.lock()
            .values()
            .filter(|e| e.state == WorkerState::Healthy)
            .count()
    }

    /// Total registered (healthy + dead) worker count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_telemetry::{ManualClock, NoopRecorder, Registry};

    fn membership_with(clock: Arc<ManualClock>) -> Membership {
        Membership::new(clock, 300_000, Arc::new(NoopRecorder))
    }

    #[test]
    fn register_heartbeat_and_deadline_eviction_with_a_manual_clock() {
        let clock = Arc::new(ManualClock::new(0));
        let m = membership_with(Arc::clone(&clock));
        m.register("a", "127.0.0.1:1", vec!["mlp".into()])
            .expect("register a");
        m.register("b", "127.0.0.1:2", vec!["mlp".into()])
            .expect("register b");
        assert_eq!(m.healthy_count(), 2);

        // b heartbeats inside the deadline, a goes silent.
        clock.advance(200_000);
        assert!(m.heartbeat("b"));
        clock.advance(200_000);
        let evicted = m.evict_expired();
        assert_eq!(evicted, vec!["a".to_string()]);
        assert_eq!(m.state_of("a"), Some(WorkerState::Dead));
        assert_eq!(m.state_of("b"), Some(WorkerState::Healthy));

        // An evicted worker's beacon is refused; it must re-register —
        // which is allowed from the dead state.
        assert!(!m.heartbeat("a"));
        m.register("a", "127.0.0.1:1", vec!["mlp".into()])
            .expect("re-register");
        assert_eq!(m.healthy_count(), 2);
    }

    #[test]
    fn duplicate_healthy_names_are_refused() {
        let clock = Arc::new(ManualClock::new(0));
        let m = membership_with(clock);
        m.register("a", "x", vec!["mlp".into()]).expect("first");
        assert!(matches!(
            m.register("a", "y", vec!["mlp".into()]),
            Err(ClusterError::DuplicateWorker(_))
        ));
    }

    #[test]
    fn pick_prefers_least_outstanding_and_rotates_ties() {
        let clock = Arc::new(ManualClock::new(0));
        let m = membership_with(clock);
        m.register("a", "x", vec!["mlp".into()]).expect("a");
        m.register("b", "y", vec!["mlp".into()]).expect("b");

        // Equal load: successive picks rotate across both replicas.
        let l1 = m.pick("mlp", None).expect("pick 1");
        let l2 = m.pick("mlp", None).expect("pick 2");
        assert_ne!(l1.worker, l2.worker, "ties must rotate");

        // a now holds 1 outstanding (l1) and so does b (l2); release b
        // and the next pick must prefer it.
        let b_name = l2.worker.clone();
        drop(l2);
        let l3 = m.pick("mlp", None).expect("pick 3");
        assert_eq!(l3.worker, b_name, "least-outstanding replica wins");
    }

    #[test]
    fn pick_honors_exclusion_and_model_placement() {
        let clock = Arc::new(ManualClock::new(0));
        let m = membership_with(clock);
        m.register("a", "x", vec!["mlp".into()]).expect("a");
        m.register("b", "y", vec!["other".into()]).expect("b");

        // Only a serves mlp; excluding it leaves no replica.
        assert!(m.pick("mlp", Some("a")).is_none());
        assert!(m.pick("nope", None).is_none());
        let lease = m.pick("other", None).expect("b serves other");
        assert_eq!(lease.worker, "b");
    }

    #[test]
    fn dead_workers_are_never_picked() {
        let clock = Arc::new(ManualClock::new(0));
        let m = membership_with(clock);
        m.register("a", "x", vec!["mlp".into()]).expect("a");
        assert!(m.mark_dead("a"));
        assert!(!m.mark_dead("a"), "second eviction is a no-op");
        assert!(m.pick("mlp", None).is_none());
    }

    #[test]
    fn sweeper_eviction_with_a_live_lease_keeps_counters_consistent() {
        let clock = Arc::new(ManualClock::new(0));
        let registry = Arc::new(Registry::new());
        let m = Membership::new(clock.clone(), 300_000, registry.clone());
        m.register("a", "x", vec!["mlp".into()]).expect("a");
        m.register("b", "y", vec!["mlp".into()]).expect("b");
        let gauge = registry
            .find_gauge("cluster_worker_outstanding", &[("worker", "a")])
            .expect("gauge registered");

        // Route a request to a, then let the sweeper mark a dead while
        // the lease is still outstanding.
        let lease = loop {
            let l = m.pick("mlp", None).expect("pick");
            if l.worker == "a" {
                break l;
            }
        };
        assert_eq!(gauge.get(), 1);
        clock.advance(400_000);
        assert!(m.heartbeat("b"));
        assert_eq!(m.evict_expired(), vec!["a".to_string()]);

        // The dead worker must never be routed to, even though its
        // outstanding count (1) is the lowest after b takes traffic.
        for _ in 0..4 {
            let l = m.pick("mlp", None).expect("b still serves");
            assert_eq!(l.worker, "b", "dead worker must not be picked");
        }
        // A failover retry that excludes the survivor finds no replica
        // rather than falling back to the dead worker.
        assert!(m.pick("mlp", Some("b")).is_none());

        // The restarted worker re-registers while the old lease is
        // still live: the replacement entry must inherit the counter
        // and gauge so the straggler's drop reconciles against it.
        m.register("a", "x2", vec!["mlp".into()]).expect("restart");
        assert_eq!(gauge.get(), 1, "live lease still counts after restart");
        drop(lease);
        assert_eq!(gauge.get(), 0, "straggler drop reconciles");
        let l = loop {
            let l = m.pick("mlp", None).expect("pick");
            if l.worker == "a" {
                break l;
            }
        };
        assert_eq!(gauge.get(), 1);
        drop(l);
        assert_eq!(gauge.get(), 0, "gauge never goes negative");
    }

    #[test]
    fn lease_guards_feed_the_outstanding_gauge() {
        let clock = Arc::new(ManualClock::new(0));
        let registry = Arc::new(Registry::new());
        let m = Membership::new(clock, 300_000, registry.clone());
        m.register("a", "x", vec!["mlp".into()]).expect("a");
        let gauge = registry
            .find_gauge("cluster_worker_outstanding", &[("worker", "a")])
            .expect("gauge registered");
        let lease = m.pick("mlp", None).expect("pick");
        assert_eq!(gauge.get(), 1);
        drop(lease);
        assert_eq!(gauge.get(), 0);
        assert_eq!(
            registry
                .find_gauge("cluster_workers_healthy", &[])
                .expect("healthy gauge")
                .get(),
            1
        );
    }
}
