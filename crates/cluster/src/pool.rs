//! Pooled request-plane connections from the orchestrator to workers.
//!
//! Forwarding borrows a [`Client`] per request: [`ClientPool::checkout`]
//! reuses an idle connection to that worker or dials a fresh one, and
//! [`ClientPool::checkin`] returns it after a clean round trip. A
//! connection that saw a transport error is simply dropped (never
//! checked back in), and [`ClientPool::purge`] empties a dead worker's
//! slot so failover never retries a broken socket.

use std::collections::HashMap;
use std::sync::Mutex;

use cs_net::{Client, ClientConfig, NetError};

/// Per-worker stash of idle connections.
pub struct ClientPool {
    inner: Mutex<HashMap<String, Vec<Client>>>,
    cfg: ClientConfig,
}

impl std::fmt::Debug for ClientPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPool").finish_non_exhaustive()
    }
}

impl ClientPool {
    /// An empty pool dialing with `cfg`.
    pub fn new(cfg: ClientConfig) -> ClientPool {
        ClientPool {
            inner: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    /// An idle connection to `worker`, or a fresh dial to `addr`.
    ///
    /// # Errors
    ///
    /// Dial failures ([`NetError::Io`] / [`NetError::Timeout`]) — the
    /// caller treats them as the worker being unreachable.
    pub fn checkout(&self, worker: &str, addr: &str) -> Result<Client, NetError> {
        let pooled = {
            let mut map = self
                .inner
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            map.get_mut(worker).and_then(Vec::pop)
        };
        match pooled {
            Some(client) => Ok(client),
            None => Client::connect_with(addr, self.cfg.clone()),
        }
    }

    /// Returns a connection after a clean round trip.
    pub fn checkin(&self, worker: &str, client: Client) {
        let mut map = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.entry(worker.to_string()).or_default().push(client);
    }

    /// Drops every idle connection to `worker` (it died or left).
    pub fn purge(&self, worker: &str) {
        let mut map = self
            .inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        map.remove(worker);
    }
}
