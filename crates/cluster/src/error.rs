//! Typed failures for the cluster control plane.

use std::fmt;

use cs_net::NetError;

/// Everything that can go wrong standing up or running a cluster.
#[derive(Debug)]
pub enum ClusterError {
    /// A configuration field failed validation.
    InvalidConfig(String),
    /// A worker tried to register under a name a healthy worker holds.
    DuplicateWorker(String),
    /// An operation named a worker the membership does not hold.
    UnknownWorker(String),
    /// A network-layer failure (dialing a worker, a broken control
    /// connection, a wire violation).
    Net(NetError),
    /// A serving-runtime failure while standing up an in-process node.
    Serve(cs_serve::ServeError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            ClusterError::DuplicateWorker(w) => {
                write!(f, "worker {w:?} is already registered and healthy")
            }
            ClusterError::UnknownWorker(w) => write!(f, "unknown worker {w:?}"),
            ClusterError::Net(e) => write!(f, "network: {e}"),
            ClusterError::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<cs_serve::ServeError> for ClusterError {
    fn from(e: cs_serve::ServeError) -> Self {
        ClusterError::Serve(e)
    }
}
