//! Injectable monotonic time source.
//!
//! The clock abstraction now lives in `cs-telemetry` so the serving
//! runtime and the metrics layer share one notion of time; this module
//! re-exports it to keep `cs_serve::clock::*` paths working.

pub use cs_telemetry::clock::{Clock, ManualClock, MonotonicClock};
