//! Dynamic batching policy.
//!
//! [`Batcher`] is a pure state machine — no channels, no threads, no
//! wall clock — so the size- and deadline-close rules are unit-testable
//! with hand-fed timestamps. The server's batcher thread drives it with
//! queue arrivals and `recv_timeout` wake-ups.
//!
//! A batch holds requests for a single model (workers execute one
//! compressed model per batch); an arrival for a different model closes
//! the open batch immediately rather than waiting out its deadline.

use crate::error::ServeError;

/// Size- and deadline-based closing rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests per batch; reaching it closes the batch.
    pub max_batch: usize,
    /// Microseconds a non-full batch may wait for more requests before
    /// it is closed anyway.
    pub max_wait_us: u64,
}

impl BatchPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Rejects `max_batch == 0`.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Why a batch was closed — the batch-formation telemetry splits its
/// histograms by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The batch reached `max_batch` items.
    Size,
    /// The batch's `max_wait_us` deadline expired.
    Deadline,
    /// An arrival for a different model evicted the open batch.
    ModelSwitch,
    /// Shutdown drain flushed the partial batch.
    Flush,
}

impl CloseReason {
    /// Stable lowercase name, used as a metric label value.
    pub fn as_str(&self) -> &'static str {
        match self {
            CloseReason::Size => "size",
            CloseReason::Deadline => "deadline",
            CloseReason::ModelSwitch => "model_switch",
            CloseReason::Flush => "flush",
        }
    }
}

/// A closed batch ready for dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch<T> {
    /// Registry index of the model every item targets.
    pub model: usize,
    /// The batched items in arrival order.
    pub items: Vec<T>,
    /// Clock reading when the batch was opened.
    pub opened_us: u64,
    /// Which rule closed the batch.
    pub reason: CloseReason,
}

/// The dynamic batcher: accumulates same-model items until the size or
/// deadline rule closes the batch.
#[derive(Debug)]
pub struct Batcher<T> {
    policy: BatchPolicy,
    model: usize,
    items: Vec<T>,
    opened_us: u64,
}

impl<T> Batcher<T> {
    /// A batcher with nothing pending.
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher {
            policy,
            model: 0,
            items: Vec::new(),
            opened_us: 0,
        }
    }

    /// Number of items in the open batch.
    pub fn pending(&self) -> usize {
        self.items.len()
    }

    /// Deadline of the open batch (µs), if one is open.
    pub fn deadline_us(&self) -> Option<u64> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.opened_us.saturating_add(self.policy.max_wait_us))
        }
    }

    fn close(&mut self, reason: CloseReason) -> Option<Batch<T>> {
        if self.items.is_empty() {
            return None;
        }
        Some(Batch {
            model: self.model,
            items: std::mem::take(&mut self.items),
            opened_us: self.opened_us,
            reason,
        })
    }

    /// Feeds one arrival at clock time `now_us`; returns any batches
    /// this closes: one when the size rule fires or a model switch
    /// evicts the open batch, none otherwise. (A `Vec` keeps the
    /// dispatch loop shape-agnostic if richer policies close more.)
    pub fn offer(&mut self, model: usize, item: T, now_us: u64) -> Vec<Batch<T>> {
        let mut out = Vec::new();
        if !self.items.is_empty() && self.model != model {
            out.extend(self.close(CloseReason::ModelSwitch));
        }
        if self.items.is_empty() {
            self.model = model;
            self.opened_us = now_us;
        }
        self.items.push(item);
        if self.items.len() >= self.policy.max_batch {
            out.extend(self.close(CloseReason::Size));
        }
        out
    }

    /// Closes the open batch if its deadline has passed.
    pub fn poll(&mut self, now_us: u64) -> Option<Batch<T>> {
        match self.deadline_us() {
            Some(deadline) if now_us >= deadline => self.close(CloseReason::Deadline),
            _ => None,
        }
    }

    /// Unconditionally closes the open batch (shutdown drain).
    pub fn flush(&mut self) -> Option<Batch<T>> {
        self.close(CloseReason::Flush)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_batch: usize, max_wait_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_wait_us,
        }
    }

    #[test]
    fn size_close_fires_at_max_batch() {
        let mut b = Batcher::new(policy(3, 1_000));
        assert!(b.offer(0, "a", 0).is_empty());
        assert!(b.offer(0, "b", 10).is_empty());
        let closed = b.offer(0, "c", 20);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].items, vec!["a", "b", "c"]);
        assert_eq!(closed[0].opened_us, 0);
        assert_eq!(closed[0].reason, CloseReason::Size);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn deadline_close_fires_only_after_max_wait() {
        let mut b = Batcher::new(policy(8, 500));
        b.offer(0, 1, 100);
        assert_eq!(b.deadline_us(), Some(600));
        assert!(b.poll(599).is_none());
        let closed = b.poll(600).unwrap();
        assert_eq!(closed.items, vec![1]);
        assert_eq!(closed.reason, CloseReason::Deadline);
        assert!(b.poll(10_000).is_none(), "nothing pending after close");
    }

    #[test]
    fn model_switch_closes_the_open_batch() {
        let mut b = Batcher::new(policy(8, 500));
        b.offer(0, "m0-a", 0);
        b.offer(0, "m0-b", 10);
        let closed = b.offer(1, "m1-a", 20);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].model, 0);
        assert_eq!(closed[0].items, vec!["m0-a", "m0-b"]);
        assert_eq!(closed[0].reason, CloseReason::ModelSwitch);
        assert_eq!(b.pending(), 1);
        assert_eq!(b.deadline_us(), Some(520));
    }

    #[test]
    fn unit_batches_close_on_every_offer() {
        let mut b = Batcher::new(policy(1, 500));
        assert_eq!(b.offer(0, "a", 0).len(), 1);
        assert_eq!(b.offer(2, "b", 5).len(), 1);
        assert_eq!(b.pending(), 0, "unit batches never stay open");
    }

    #[test]
    fn flush_drains_partial_batches() {
        let mut b = Batcher::new(policy(8, 500));
        b.offer(3, 1, 0);
        b.offer(3, 2, 1);
        let f = b.flush().unwrap();
        assert_eq!(f.model, 3);
        assert_eq!(f.items, vec![1, 2]);
        assert_eq!(f.reason, CloseReason::Flush);
        assert!(b.flush().is_none());
    }

    #[test]
    fn zero_max_batch_is_rejected() {
        assert!(policy(0, 10).validate().is_err());
        assert!(policy(1, 0).validate().is_ok());
    }
}
