//! Batched, multi-worker inference serving on the Cambricon-S model.
//!
//! The paper's stack ends at a single compressed network running on one
//! simulated accelerator. This crate wraps that in the runtime a
//! deployment needs: clients submit [`InferRequest`]s against a
//! [`ModelRegistry`] of compressed models; admission control bounds the
//! queue and rejects overload as [`ServeError::Overloaded`]; a dynamic
//! [`batch::Batcher`] closes batches on size or deadline; and a pool of
//! worker threads — each owning one [`cs_accel::exec::Accelerator`] —
//! executes batches and answers every request with its outputs plus the
//! simulated hardware cost (cycles from `cs-sim`'s counters, picojoules
//! from `cs-energy`).
//!
//! Time is injected via the [`Clock`] trait so the latency percentiles
//! in [`ServeSnapshot`] are testable deterministically; the
//! [`loadgen`] module drives saturation sweeps over offered load ×
//! worker count × batch size.
//!
//! # Example
//!
//! ```
//! use cs_nn::spec::Scale;
//! use cs_serve::{InferRequest, ModelRegistry, ServableModel, ServeConfig, Server};
//!
//! let mut registry = ModelRegistry::new();
//! let model = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
//! let n_in = model.n_in;
//! registry.register(model).unwrap();
//!
//! let server = Server::start(registry, ServeConfig::default()).unwrap();
//! let resp = server.infer(InferRequest::new("mlp", vec![0.5; n_in])).unwrap();
//! assert_eq!(resp.outputs.len(), 10);
//! assert!(resp.cycles > 0);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

// The request path must degrade to typed errors, never panic: a panic
// in a worker would silently drop every queued request. `unwrap`/
// `expect` stay banned outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod admission;
pub mod batch;
pub mod clock;
pub mod error;
pub mod lifecycle;
pub mod loadgen;
pub mod model;
pub mod server;
pub mod stats;

pub use batch::CloseReason;
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use cs_telemetry::{NoopRecorder, Recorder, Registry};
pub use error::ServeError;
pub use lifecycle::{outputs_equivalent, CanaryReport, ModelStatus};
pub use model::{CompiledLane, LaneKernel, LaneLayer, ModelRegistry, ServableModel};
pub use server::{
    DrainHandle, ExecBackend, InferRequest, InferResponse, ServeConfig, Server, Ticket,
};
pub use stats::{ServeSnapshot, ServeStats};
