//! `cs-registry-ctl` — build and inspect on-disk model registries.
//!
//! The serving stack hot-loads models out of a `cs-registry` CSMR
//! store; this tool is how a store gets populated without writing
//! code. `build` compresses the paper's seeded MLP into a versioned
//! artifact and saves it (same seed ⇒ byte-identical weights, so two
//! versions built from one seed are bit-equal — the property the
//! canary smoke test leans on); `list` prints what a store holds.
//!
//! ```text
//! cs-registry-ctl build --dir /tmp/reg --model mlp --version 1 --scale 8 --seed 7
//! cs-registry-ctl build --dir /tmp/reg --model mlp --version 2 --scale 8 --seed 7
//! cs-registry-ctl list --dir /tmp/reg
//! ```
//!
//! Exit codes: `0` success, `1` bad usage or any registry error.

use cs_nn::spec::Scale;
use cs_registry::{ModelArtifact, RegistryStore};
use cs_serve::ServableModel;

fn usage() -> ! {
    eprintln!(
        "usage: cs-registry-ctl build --dir DIR --model NAME --version N\n\
         \x20                      [--scale N] [--seed N]\n\
         \x20      cs-registry-ctl list --dir DIR"
    );
    std::process::exit(1);
}

fn parse_num(s: &str, flag: &str) -> u64 {
    match s.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("error: {flag} expects a number, got {s:?}");
            usage();
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = match args.next() {
        Some(c) => c,
        None => usage(),
    };
    let mut dir = String::new();
    let mut model = "mlp".to_string();
    let mut version = 1u32;
    let mut scale = 8usize;
    let mut seed = 7u64;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {flag} requires a value");
                usage();
            }
        };
        match a.as_str() {
            "--dir" => dir = value("--dir"),
            "--model" => model = value("--model"),
            "--version" => version = parse_num(&value("--version"), "--version") as u32,
            "--scale" => scale = parse_num(&value("--scale"), "--scale") as usize,
            "--seed" => seed = parse_num(&value("--seed"), "--seed"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
    }
    if dir.is_empty() {
        eprintln!("error: --dir is required");
        usage();
    }
    let store = match RegistryStore::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("opening registry {dir:?} failed: {e}");
            std::process::exit(1);
        }
    };
    match cmd.as_str() {
        "build" => {
            let servable = match ServableModel::mlp(Scale::Reduced(scale), seed) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("building model failed: {e}");
                    std::process::exit(1);
                }
            };
            let artifact = ModelArtifact {
                name: model,
                version,
                layers: servable.layers,
            };
            match store.save(&artifact) {
                Ok(bytes) => println!(
                    "saved {} ({bytes} bytes on disk, {} resident)",
                    artifact.key(),
                    artifact.resident_bytes()
                ),
                Err(e) => {
                    eprintln!("saving {} failed: {e}", artifact.key());
                    std::process::exit(1);
                }
            }
        }
        "list" => match store.list() {
            Ok(entries) => {
                for m in entries {
                    println!("{}@v{} {} bytes", m.name, m.version, m.bytes);
                }
            }
            Err(e) => {
                eprintln!("listing {dir:?} failed: {e}");
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("error: unknown command {other:?}");
            usage();
        }
    }
}
