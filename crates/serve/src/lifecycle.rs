//! Live model lifecycle: versioned residency, hot load/evict with
//! per-model drain latches, and canary state.
//!
//! [`LiveRegistry`] generalizes the startup-time
//! [`crate::model::ModelRegistry`] into a runtime structure: models are
//! keyed by name and each name holds one or more resident *versions*,
//! one of which is primary. Loading a new version either promotes it
//! immediately (`canary_pct == 0`) or routes `canary_pct`% of that
//! model's traffic to it while every routed request is shadow-compared
//! against the primary under the differential rule (bit equality with
//! NaN identified — see [`outputs_equivalent`]); crossing the
//! divergence threshold auto-demotes the canary.
//!
//! Eviction under a memory budget removes least-recently-used versions
//! that are neither primary nor an active canary, then waits on each
//! victim's in-flight latch *outside* the registry lock — a request
//! always completes, bit-identically, on the version it was admitted
//! against, and serving never stalls behind a drain.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use cs_accel::pe::Activation;
use cs_compress::format::SharedIndexLayer;
use cs_telemetry::{buckets, Counter, Histogram, Recorder, Span};

use crate::clock::Clock;
use crate::error::ServeError;
use crate::model::{CompiledLane, LaneKernel, ServableModel};
use crate::server::ExecBackend;
use crate::stats::ServeStats;

/// The canary comparator: bit-for-bit equality with NaN identified —
/// the same first-divergence rule the conformance differential harness
/// applies between execution lanes.
pub fn outputs_equivalent(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

/// Counts requests in flight against one loaded model version;
/// eviction and unload block on it so a drain never strands a request.
#[derive(Debug, Default)]
pub(crate) struct InflightLatch {
    count: Mutex<u64>,
    zero: Condvar,
}

impl InflightLatch {
    /// Registers one in-flight request; the guard releases on drop.
    pub(crate) fn acquire(self: &Arc<Self>) -> InflightGuard {
        let mut n = self.count.lock().unwrap_or_else(|p| p.into_inner());
        *n += 1;
        drop(n);
        InflightGuard(Arc::clone(self))
    }

    /// Requests currently holding a guard.
    pub(crate) fn in_flight(&self) -> u64 {
        *self.count.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks until no request holds a guard.
    pub(crate) fn wait_idle(&self) {
        let mut n = self.count.lock().unwrap_or_else(|p| p.into_inner());
        while *n > 0 {
            n = self.zero.wait(n).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// RAII in-flight registration; dropping it (after the reply is sent,
/// or when a job is abandoned mid-shutdown) releases the latch.
#[derive(Debug)]
pub(crate) struct InflightGuard(Arc<InflightLatch>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        let mut n = self.0.count.lock().unwrap_or_else(|p| p.into_inner());
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.0.zero.notify_all();
        }
    }
}

/// Per-layer telemetry handles an engine-backed lane records into: the
/// kernel-time span plus the activation-gate block counters (no-op
/// handles on ungated layers).
pub(crate) struct LayerTelemetry {
    pub(crate) kernel_us: Histogram,
    pub(crate) gate_hits: Counter,
    pub(crate) gate_skips: Counter,
}

/// Runs one request through an engine lane, timing every layer's
/// kernel into its histogram. Activation is applied outside the span:
/// the histograms compare dense vs sparse kernel cost, and the
/// element-wise epilogue is identical on both lanes.
pub(crate) fn run_lane(
    lane: &CompiledLane,
    telemetry: &[LayerTelemetry],
    clock: &Arc<dyn Clock>,
    input: &[f32],
) -> Result<Vec<f32>, ServeError> {
    let mut x = input.to_vec();
    for (layer, tele) in lane.layers.iter().zip(telemetry) {
        let span = Span::start(Arc::clone(clock), tele.kernel_us.clone());
        let result = layer.kernel.forward_counted(&x);
        span.finish();
        let (mut out, gate) = result?;
        if let Some(stats) = gate {
            tele.gate_hits.add(stats.occupied_blocks() as u64);
            tele.gate_skips.add(stats.zero_blocks as u64);
        }
        for v in &mut out {
            *v = layer.activation.apply(*v);
        }
        x = out;
    }
    Ok(x)
}

/// How a loaded version executes requests, built once at load time.
pub(crate) enum ModelExec {
    /// Shared-index bridge view for the cycle-accurate simulator.
    Sim(Vec<(SharedIndexLayer, Activation)>),
    /// Engine lane (sparse/gated/dense kernels) with per-layer
    /// telemetry handles.
    Lane(CompiledLane, Vec<LayerTelemetry>),
}

/// One resident `(model, version)` with everything the request path
/// needs: the compiled executor, the in-flight drain latch, and the
/// LRU/accounting state the eviction policy reads.
pub(crate) struct LoadedModel {
    pub(crate) model: Arc<ServableModel>,
    pub(crate) version: u32,
    /// Monotonic per-load id; the batcher keys batches on it, so two
    /// loads — even of the same `(name, version)` across an evict and
    /// re-load — never share a batch.
    pub(crate) slot: usize,
    pub(crate) exec: ModelExec,
    pub(crate) inflight: Arc<InflightLatch>,
    /// Compact weight bytes this version holds resident (the figure
    /// the memory budget counts).
    pub(crate) resident_bytes: u64,
    /// Clock reading of the last admission against this version.
    pub(crate) last_used_us: AtomicU64,
    /// `serve_model_requests_total{model, version}`.
    pub(crate) requests: Counter,
}

/// Shared canary-routing state for one model name.
pub(crate) struct CanaryState {
    pub(crate) version: u32,
    pub(crate) pct: u8,
    /// Divergences at which the canary auto-demotes.
    pub(crate) threshold: u64,
    /// Routing ticket: request `t` goes to the canary iff
    /// `t % 100 < pct`.
    ticket: AtomicU64,
    pub(crate) routed: AtomicU64,
    pub(crate) divergences: AtomicU64,
    pub(crate) demoted: AtomicBool,
}

impl CanaryState {
    fn new(version: u32, pct: u8, threshold: u64) -> Self {
        CanaryState {
            version,
            pct,
            threshold,
            ticket: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            divergences: AtomicU64::new(0),
            demoted: AtomicBool::new(false),
        }
    }
}

/// One resident `(model, version)` pair as reported by
/// [`crate::Server::list_models`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStatus {
    /// Model name.
    pub name: String,
    /// Resident version.
    pub version: u32,
    /// Whether this version is the one non-canary traffic runs on.
    pub primary: bool,
    /// Canary routing percentage when this version is its model's
    /// canary (`None` otherwise, including after demotion cleared it).
    pub canary_pct: Option<u8>,
    /// True when this version is a canary that auto-demoted.
    pub demoted: bool,
    /// Compact weight bytes this version holds resident.
    pub resident_bytes: u64,
    /// Requests currently in flight against this version.
    pub in_flight: u64,
}

/// Canary progress for one model name, as reported by
/// [`crate::Server::canary_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanaryReport {
    /// The canary version.
    pub version: u32,
    /// Traffic percentage routed to it.
    pub pct: u8,
    /// Requests routed to the canary so far.
    pub routed: u64,
    /// Shadow comparisons that diverged from the primary.
    pub divergences: u64,
    /// Whether the divergence threshold demoted it.
    pub demoted: bool,
}

struct ModelEntry {
    versions: Vec<Arc<LoadedModel>>,
    primary: u32,
    canary: Option<Arc<CanaryState>>,
}

impl ModelEntry {
    fn version(&self, v: u32) -> Option<&Arc<LoadedModel>> {
        self.versions.iter().find(|m| m.version == v)
    }
}

/// The admission-time routing decision for one request.
pub(crate) struct Resolved {
    /// The version this request executes on.
    pub(crate) target: Arc<LoadedModel>,
    /// When the target is a canary: the primary to shadow-compare
    /// against and the shared canary state to score into.
    pub(crate) shadow: Option<(Arc<LoadedModel>, Arc<CanaryState>)>,
}

/// Everything a load needs from the server: which backend to compile
/// for, where to register telemetry, and the stats sink for
/// eviction/load accounting.
pub(crate) struct LoadContext<'a> {
    pub(crate) backend: ExecBackend,
    pub(crate) recorder: &'a dyn Recorder,
    pub(crate) stats: &'a ServeStats,
    pub(crate) canary_threshold: u64,
}

/// The runtime model table: name → resident versions + canary state.
pub(crate) struct LiveRegistry {
    entries: RwLock<HashMap<String, ModelEntry>>,
    next_slot: AtomicUsize,
    /// Resident-bytes budget; `0` disables eviction.
    budget_bytes: u64,
}

impl LiveRegistry {
    pub(crate) fn new(budget_bytes: u64) -> Self {
        LiveRegistry {
            entries: RwLock::new(HashMap::new()),
            next_slot: AtomicUsize::new(0),
            budget_bytes,
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, HashMap<String, ModelEntry>> {
        self.entries.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, HashMap<String, ModelEntry>> {
        self.entries.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Routes one admission: the primary, or the canary for its slice
    /// of the ticket space while the experiment is live.
    pub(crate) fn resolve(&self, name: &str) -> Option<Resolved> {
        let entries = self.read();
        let entry = entries.get(name)?;
        let primary = Arc::clone(entry.version(entry.primary)?);
        if let Some(canary) = &entry.canary {
            if !canary.demoted.load(Ordering::SeqCst) {
                if let Some(target) = entry.version(canary.version) {
                    let t = canary.ticket.fetch_add(1, Ordering::SeqCst);
                    if t % 100 < u64::from(canary.pct) {
                        canary.routed.fetch_add(1, Ordering::SeqCst);
                        return Some(Resolved {
                            target: Arc::clone(target),
                            shadow: Some((primary, Arc::clone(canary))),
                        });
                    }
                }
            }
        }
        Some(Resolved {
            target: primary,
            shadow: None,
        })
    }

    /// The primary version's model, for shape probes.
    pub(crate) fn lookup(&self, name: &str) -> Option<Arc<ServableModel>> {
        let entries = self.read();
        let e = entries.get(name)?;
        e.version(e.primary).map(|m| Arc::clone(&m.model))
    }

    /// Sorted resident model names.
    pub(crate) fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Loads `model` as `version`. With `canary_pct == 0` the version
    /// becomes (or is promoted to) primary; otherwise it becomes the
    /// canary for its name. Re-loading an already-resident version only
    /// repoints routing — nothing is rebuilt. Evicts LRU versions past
    /// the budget after the insert, draining each victim outside the
    /// registry lock.
    pub(crate) fn load(
        &self,
        model: ServableModel,
        version: u32,
        canary_pct: u8,
        ctx: &LoadContext<'_>,
    ) -> Result<(), ServeError> {
        if canary_pct > 100 {
            return Err(ServeError::InvalidConfig(format!(
                "canary_pct must be 0..=100, got {canary_pct}"
            )));
        }
        model.validate()?;
        let name = model.name.clone();
        let now = ctx.stats.now_us();
        // Compile outside the lock: loads are control-plane, but the
        // admission path takes the read lock on every request and must
        // not stall behind kernel compilation.
        let built = Arc::new(self.build(model, version, ctx, now));

        let mut entries = self.write();
        let victims;
        if entries
            .get(&name)
            .is_some_and(|e| e.version(version).is_some())
        {
            // Already resident: promote or (re-)canary, discard the
            // freshly built copy.
            let Some(entry) = entries.get_mut(&name) else {
                return Err(ServeError::ModelNotFound {
                    model: name,
                    version,
                });
            };
            if canary_pct == 0 {
                entry.primary = version;
                // A promote concludes any canary experiment.
                entry.canary = None;
            } else {
                if entry.primary == version {
                    return Err(ServeError::VersionMismatch {
                        model: name,
                        version,
                        detail: "is the primary; a canary needs a distinct version".to_string(),
                    });
                }
                entry.canary = Some(Arc::new(CanaryState::new(
                    version,
                    canary_pct,
                    ctx.canary_threshold,
                )));
            }
            victims = self.sweep_locked(&mut entries);
        } else {
            if let Some(entry) = entries.get(&name) {
                if let Some(primary) = entry.version(entry.primary) {
                    if primary.model.n_in != built.model.n_in
                        || primary.model.n_out != built.model.n_out
                    {
                        return Err(ServeError::VersionMismatch {
                            model: name,
                            version,
                            detail: format!(
                                "shape {}x{} differs from resident {}x{}",
                                built.model.n_in,
                                built.model.n_out,
                                primary.model.n_in,
                                primary.model.n_out
                            ),
                        });
                    }
                }
            } else if canary_pct > 0 {
                return Err(ServeError::InvalidConfig(format!(
                    "canary load of {name:?} needs a resident primary"
                )));
            }
            // Feasibility before mutating: versions that stay pinned
            // after this load (primaries elsewhere, this entry's
            // primary if the load is a canary, live canaries elsewhere,
            // and the new version itself) must fit the budget.
            if self.budget_bytes > 0 {
                let mut floor = built.resident_bytes;
                for (n, e) in entries.iter() {
                    let keeps_primary = n != &name || canary_pct > 0;
                    if keeps_primary {
                        if let Some(p) = e.version(e.primary) {
                            floor += p.resident_bytes;
                        }
                    }
                    if n != &name {
                        if let Some(c) = &e.canary {
                            if !c.demoted.load(Ordering::SeqCst) && c.version != e.primary {
                                if let Some(cv) = e.version(c.version) {
                                    floor += cv.resident_bytes;
                                }
                            }
                        }
                    }
                }
                if floor > self.budget_bytes {
                    return Err(ServeError::RegistryFull {
                        model: name,
                        needed_bytes: built.resident_bytes,
                        budget_bytes: self.budget_bytes,
                    });
                }
            }
            let entry = entries.entry(name.clone()).or_insert_with(|| ModelEntry {
                versions: Vec::new(),
                primary: version,
                canary: None,
            });
            entry.versions.push(Arc::clone(&built));
            if canary_pct > 0 {
                entry.canary = Some(Arc::new(CanaryState::new(
                    version,
                    canary_pct,
                    ctx.canary_threshold,
                )));
            } else {
                entry.primary = version;
                entry.canary = None;
            }
            ctx.stats.record_load(built.resident_bytes);
            victims = self.sweep_locked(&mut entries);
        }
        drop(entries);

        // Drain victims outside the lock: in-flight requests hold Arcs
        // to their version and complete on it; only then is the
        // eviction counted and its memory considered reclaimed.
        for v in victims {
            v.inflight.wait_idle();
            ctx.stats.record_eviction(v.resident_bytes);
        }
        Ok(())
    }

    /// Evicts LRU versions (never a primary, never a live canary) until
    /// resident bytes fit the budget. Caller drains the victims.
    fn sweep_locked(&self, entries: &mut HashMap<String, ModelEntry>) -> Vec<Arc<LoadedModel>> {
        let mut victims = Vec::new();
        if self.budget_bytes == 0 {
            return victims;
        }
        loop {
            let resident: u64 = entries
                .values()
                .flat_map(|e| &e.versions)
                .map(|m| m.resident_bytes)
                .sum();
            if resident <= self.budget_bytes {
                break;
            }
            let mut victim: Option<(String, u32, u64)> = None;
            for (n, e) in entries.iter() {
                for m in &e.versions {
                    if m.version == e.primary {
                        continue;
                    }
                    if e.canary.as_ref().is_some_and(|c| {
                        c.version == m.version && !c.demoted.load(Ordering::SeqCst)
                    }) {
                        continue;
                    }
                    let used = m.last_used_us.load(Ordering::SeqCst);
                    if victim.as_ref().is_none_or(|(_, _, u)| used < *u) {
                        victim = Some((n.clone(), m.version, used));
                    }
                }
            }
            let Some((n, v, _)) = victim else {
                // Nothing evictable remains; primaries and live
                // canaries may legitimately exceed the budget.
                break;
            };
            if let Some(e) = entries.get_mut(&n) {
                if let Some(pos) = e.versions.iter().position(|m| m.version == v) {
                    victims.push(e.versions.remove(pos));
                }
                if e.canary.as_ref().is_some_and(|c| c.version == v) {
                    e.canary = None;
                }
                if e.versions.is_empty() {
                    entries.remove(&n);
                }
            }
        }
        victims
    }

    /// Removes one resident version after its in-flight requests drain.
    pub(crate) fn unload(
        &self,
        name: &str,
        version: u32,
        stats: &ServeStats,
    ) -> Result<(), ServeError> {
        let mut entries = self.write();
        let Some(entry) = entries.get_mut(name) else {
            return Err(ServeError::ModelNotFound {
                model: name.to_string(),
                version,
            });
        };
        let Some(pos) = entry.versions.iter().position(|m| m.version == version) else {
            return Err(ServeError::ModelNotFound {
                model: name.to_string(),
                version,
            });
        };
        if version == entry.primary && entry.versions.len() > 1 {
            return Err(ServeError::VersionMismatch {
                model: name.to_string(),
                version,
                detail: "is the primary; promote another version before unloading it".to_string(),
            });
        }
        let removed = entry.versions.remove(pos);
        if entry.canary.as_ref().is_some_and(|c| c.version == version) {
            entry.canary = None;
        }
        if entry.versions.is_empty() {
            entries.remove(name);
        }
        drop(entries);
        removed.inflight.wait_idle();
        stats.record_unload(removed.resident_bytes);
        Ok(())
    }

    /// Every resident version, sorted by name then version.
    pub(crate) fn list(&self) -> Vec<ModelStatus> {
        let entries = self.read();
        let mut out = Vec::new();
        for (name, e) in entries.iter() {
            for m in &e.versions {
                let canary = e.canary.as_ref().filter(|c| c.version == m.version);
                out.push(ModelStatus {
                    name: name.clone(),
                    version: m.version,
                    primary: m.version == e.primary,
                    canary_pct: canary
                        .filter(|c| !c.demoted.load(Ordering::SeqCst))
                        .map(|c| c.pct),
                    demoted: canary.is_some_and(|c| c.demoted.load(Ordering::SeqCst)),
                    resident_bytes: m.resident_bytes,
                    in_flight: m.inflight.in_flight(),
                });
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name).then(a.version.cmp(&b.version)));
        out
    }

    /// Canary progress for `name`, if an experiment exists (live or
    /// demoted).
    pub(crate) fn canary_report(&self, name: &str) -> Option<CanaryReport> {
        let entries = self.read();
        let c = entries.get(name)?.canary.as_ref()?;
        Some(CanaryReport {
            version: c.version,
            pct: c.pct,
            routed: c.routed.load(Ordering::SeqCst),
            divergences: c.divergences.load(Ordering::SeqCst),
            demoted: c.demoted.load(Ordering::SeqCst),
        })
    }

    fn build(
        &self,
        model: ServableModel,
        version: u32,
        ctx: &LoadContext<'_>,
        now_us: u64,
    ) -> LoadedModel {
        let model = Arc::new(model);
        let resident_bytes: u64 = model
            .layers
            .iter()
            .map(|(f, _)| f.weight_bytes() as u64)
            .sum();
        let exec = match ctx.backend {
            ExecBackend::Simulator => ModelExec::Sim(model.shared_layers()),
            backend => {
                let lane = match backend {
                    ExecBackend::Dense => model.dense_lane(),
                    ExecBackend::Gated => model.gated_lane(),
                    _ => model.sparse_lane(),
                };
                let telemetry = lane_telemetry(&model.name, &lane, ctx.recorder);
                ModelExec::Lane(lane, telemetry)
            }
        };
        let requests = ctx.recorder.counter(
            "serve_model_requests_total",
            "Requests admitted, by model and version",
            vec![
                ("model".to_string(), model.name.clone()),
                ("version".to_string(), version.to_string()),
            ],
        );
        LoadedModel {
            model,
            version,
            slot: self.next_slot.fetch_add(1, Ordering::SeqCst),
            exec,
            inflight: Arc::new(InflightLatch::default()),
            resident_bytes,
            last_used_us: AtomicU64::new(now_us),
            requests,
        }
    }
}

/// Registers the per-layer kernel histogram and gate counters for one
/// engine lane (identical to what registration at worker spawn used to
/// produce; now it happens once per load).
fn lane_telemetry(
    model_name: &str,
    lane: &CompiledLane,
    recorder: &dyn Recorder,
) -> Vec<LayerTelemetry> {
    let bounds = buckets::duration_us();
    lane.layers
        .iter()
        .map(|layer| {
            let kernel_us = recorder.histogram(
                "serve_layer_kernel_us",
                "Per-layer kernel time on engine-backed worker lanes (µs)",
                vec![
                    ("model".to_string(), model_name.to_string()),
                    ("layer".to_string(), layer.name.clone()),
                    ("kernel".to_string(), layer.kernel.kind().to_string()),
                ],
                &bounds,
            );
            // Gate counters exist only where a gate runs; ungated
            // layers get no-op handles so the series never appear for
            // them.
            let gate_counter = |outcome: &str| {
                recorder.counter(
                    "serve_gate_blocks_total",
                    "Input blocks the activation gate inspected, by outcome \
                     (`hit` = occupied and computed, `skip` = all-zero and \
                     skipped)",
                    vec![
                        ("model".to_string(), model_name.to_string()),
                        ("layer".to_string(), layer.name.clone()),
                        ("outcome".to_string(), outcome.to_string()),
                    ],
                )
            };
            let (gate_hits, gate_skips) = if matches!(layer.kernel, LaneKernel::Gated(..)) {
                (gate_counter("hit"), gate_counter("skip"))
            } else {
                (Counter::noop(), Counter::noop())
            };
            LayerTelemetry {
                kernel_us,
                gate_hits,
                gate_skips,
            }
        })
        .collect()
}
