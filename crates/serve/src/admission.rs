//! Tenant-aware admission queue.
//!
//! Replaces the plain bounded channel in front of the batcher. Each
//! tenant gets its own bounded FIFO lane; pushes reject when the global
//! capacity or the tenant's quota is exhausted, and the batcher drains
//! lanes with weighted round-robin so one chatty tenant can monopolize
//! neither admission nor dispatch order. `close()` replaces dropping a
//! channel sender: queued items still drain, then poppers observe
//! [`Popped::Closed`], which preserves the server's graceful-shutdown
//! contract.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why admission refused an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// No room: the global queue, or this tenant's quota slice, is full.
    Full {
        /// True when the tenant's own quota rejected the item while the
        /// global queue still had room.
        tenant_quota: bool,
    },
    /// The queue is closed; the server is shutting down.
    Closed,
}

/// Result of a timed dequeue.
pub(crate) enum Popped<T> {
    /// The next item under the weighted-fair schedule.
    Item(T),
    /// Nothing arrived within the timeout.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct TenantLane<T> {
    items: VecDeque<T>,
    weight: u64,
    credit: u64,
}

struct QueueState<T> {
    lanes: HashMap<String, TenantLane<T>>,
    /// Tenants in first-seen order; the round-robin cursor walks this
    /// ring. Lanes are never removed (bounded by distinct tenant names).
    ring: Vec<String>,
    cursor: usize,
    total: usize,
    closed: bool,
}

/// A bounded multi-tenant queue with weighted-fair dequeue.
pub(crate) struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
    tenant_quota: usize,
    weights: HashMap<String, u64>,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` items total and (when
    /// `tenant_quota > 0`) at most `tenant_quota` per tenant. Tenants
    /// named in `weights` dequeue proportionally more often; unlisted
    /// tenants weigh 1.
    pub(crate) fn new(capacity: usize, tenant_quota: usize, weights: &[(String, u32)]) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                lanes: HashMap::new(),
                ring: Vec::new(),
                cursor: 0,
                total: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
            tenant_quota,
            weights: weights
                .iter()
                .map(|(name, w)| (name.clone(), u64::from(*w).max(1)))
                .collect(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        // Queue state cannot be left inconsistent by a panicking
        // recorder call, so a poisoned lock is safe to adopt.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Non-blocking admission for `tenant`.
    pub(crate) fn try_push(&self, tenant: &str, item: T) -> Result<(), AdmitError> {
        let mut s = self.lock();
        if s.closed {
            return Err(AdmitError::Closed);
        }
        if s.total >= self.capacity {
            return Err(AdmitError::Full {
                tenant_quota: false,
            });
        }
        if !s.lanes.contains_key(tenant) {
            let weight = self.weights.get(tenant).copied().unwrap_or(1);
            s.lanes.insert(
                tenant.to_string(),
                TenantLane {
                    items: VecDeque::new(),
                    weight,
                    credit: weight,
                },
            );
            s.ring.push(tenant.to_string());
        }
        let Some(lane) = s.lanes.get_mut(tenant) else {
            return Err(AdmitError::Closed); // unreachable: inserted above
        };
        if self.tenant_quota > 0 && lane.items.len() >= self.tenant_quota {
            return Err(AdmitError::Full { tenant_quota: true });
        }
        lane.items.push_back(item);
        s.total += 1;
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for the next item under the weighted-fair
    /// schedule.
    pub(crate) fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        loop {
            if s.total > 0 {
                if let Some(item) = Self::take_locked(&mut s) {
                    return Popped::Item(item);
                }
            }
            if s.closed {
                return Popped::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::TimedOut;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            s = guard;
        }
    }

    /// Weighted round-robin: the cursor tenant dequeues until its
    /// credit (replenished to its weight on every pass) runs out, then
    /// the cursor advances. Two passes over the ring suffice: the first
    /// spends remaining credits, the second visits every lane with
    /// fresh credit, so any non-empty lane yields.
    fn take_locked(s: &mut QueueState<T>) -> Option<T> {
        let n = s.ring.len();
        if n == 0 {
            return None;
        }
        for _ in 0..2 * n {
            let name = s.ring[s.cursor % n].clone();
            let Some(lane) = s.lanes.get_mut(&name) else {
                s.cursor = (s.cursor + 1) % n;
                continue;
            };
            if !lane.items.is_empty() && lane.credit > 0 {
                lane.credit -= 1;
                s.total -= 1;
                return lane.items.pop_front();
            }
            lane.credit = lane.weight;
            s.cursor = (s.cursor + 1) % n;
        }
        None
    }

    /// Stops admission. Queued items still drain through
    /// [`AdmissionQueue::pop_timeout`]; once empty, poppers observe
    /// [`Popped::Closed`].
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &AdmissionQueue<&'static str>, n: usize) -> Vec<&'static str> {
        (0..n)
            .map(|_| match q.pop_timeout(Duration::from_secs(1)) {
                Popped::Item(x) => x,
                _ => panic!("expected an item"),
            })
            .collect()
    }

    #[test]
    fn weighted_round_robin_interleaves_by_weight() {
        let q = AdmissionQueue::new(64, 0, &[("a".to_string(), 3), ("b".to_string(), 1)]);
        for _ in 0..4 {
            q.try_push("a", "a").unwrap();
            q.try_push("b", "b").unwrap();
        }
        // Tenant a holds weight 3: the contended prefix dequeues three
        // a's for every b until a lane runs dry.
        assert_eq!(drain(&q, 8), vec!["a", "a", "a", "b", "a", "b", "b", "b"]);
    }

    #[test]
    fn unknown_tenants_weigh_one_and_share_fairly() {
        let q: AdmissionQueue<&str> = AdmissionQueue::new(64, 0, &[]);
        for _ in 0..3 {
            q.try_push("x", "x").unwrap();
            q.try_push("y", "y").unwrap();
        }
        assert_eq!(drain(&q, 6), vec!["x", "y", "x", "y", "x", "y"]);
    }

    #[test]
    fn global_capacity_and_tenant_quota_reject_typed() {
        let q = AdmissionQueue::new(3, 2, &[]);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap();
        assert_eq!(
            q.try_push("a", 3),
            Err(AdmitError::Full { tenant_quota: true })
        );
        q.try_push("b", 4).unwrap();
        assert_eq!(
            q.try_push("b", 5),
            Err(AdmitError::Full {
                tenant_quota: false
            })
        );
    }

    #[test]
    fn close_drains_queued_items_then_reports_closed() {
        let q = AdmissionQueue::new(8, 0, &[]);
        q.try_push("a", 1).unwrap();
        q.try_push("a", 2).unwrap();
        q.close();
        assert_eq!(q.try_push("a", 3), Err(AdmitError::Closed));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item(1)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item(2)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Closed
        ));
    }

    #[test]
    fn pop_times_out_when_idle() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(8, 0, &[]);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Popped::TimedOut
        ));
    }

    #[test]
    fn close_wakes_a_parked_popper() {
        let q: std::sync::Arc<AdmissionQueue<u32>> =
            std::sync::Arc::new(AdmissionQueue::new(8, 0, &[]));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                matches!(q.pop_timeout(Duration::from_secs(30)), Popped::Closed)
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(popper.join().expect("popper thread"));
    }
}
