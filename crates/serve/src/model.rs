//! Servable models and the registry the server dispatches against.
//!
//! A [`ServableModel`] is a network compressed into the accelerator's
//! shared-index format: the chain the paper's software stack produces
//! (materialize → coarse-grained prune → compact shared-index layout)
//! applied to every weighted layer. The [`ModelRegistry`] maps model
//! names to compiled artifacts and validates each layer against the
//! executor's structural checks at registration time, so admission
//! control can reject malformed models before a single request queues.

use std::collections::HashMap;
use std::sync::Arc;

use cs_accel::exec::validate_layer;
use cs_accel::pe::Activation;
use cs_compress::config::ModelCompressionConfig;
use cs_compress::engine::FcKernel;
use cs_compress::format::{BankBalancedFcLayer, FcLayerFormat, SharedIndexLayer, TwoFourFcLayer};
use cs_compress::gate::{GatePlan, GatePolicy, GateStats};
use cs_compress::pipeline::prune_layer;
use cs_compress::CompressError;
use cs_nn::init::{self, ConvergenceProfile};
use cs_nn::spec::{LayerSpecKind, Model, NetworkSpec, Scale};
use cs_sparsity::PruneMode;
use cs_tensor::{ops, Shape, Tensor};

use crate::error::ServeError;

/// Output-group width of the shared-index format (`T_n` in the paper).
const GROUP_SIZE: usize = 16;

/// A network compiled to the accelerator's compact format, ready to be
/// executed by a worker.
#[derive(Debug, Clone)]
pub struct ServableModel {
    /// Registry name clients address requests to.
    pub name: String,
    /// Compressed layers in execution order, each with its activation.
    /// The format follows the layer's pruning mode: shared-index for
    /// coarse pruning, packed 2:4 or bank-balanced metadata for the
    /// structured modes.
    pub layers: Vec<(FcLayerFormat, Activation)>,
    /// Input width of the first layer.
    pub n_in: usize,
    /// Output width of the last layer.
    pub n_out: usize,
}

impl ServableModel {
    /// Compresses every fully-connected layer of `spec` into the
    /// shared-index format, chaining them with ReLU activations (the
    /// last layer is pass-through, mirroring a logits head).
    ///
    /// Only FC-only networks are servable today: the functional
    /// executor's conv path expects per-window im2col inputs the
    /// batcher does not yet produce.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for non-FC layers or
    /// mismatched widths between consecutive layers, and propagates
    /// compression failures.
    pub fn from_spec(
        name: impl Into<String>,
        spec: &NetworkSpec,
        cfg: &ModelCompressionConfig,
        seed: u64,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        let mut layers: Vec<(FcLayerFormat, Activation)> = Vec::new();
        let weighted: Vec<_> = spec.weighted_layers().collect();
        let count = weighted.len();
        for (i, layer) in weighted.into_iter().enumerate() {
            let n_in = match layer.kind() {
                LayerSpecKind::Fc { n_in, .. } => *n_in,
                _ => {
                    return Err(ServeError::InvalidConfig(format!(
                        "layer {:?} is not fully-connected; only FC networks are servable",
                        layer.name()
                    )))
                }
            };
            if let Some((prev, _)) = layers.last() {
                if prev.n_out() != n_in {
                    return Err(ServeError::InvalidConfig(format!(
                        "layer {:?} expects {} inputs but previous layer produces {}",
                        layer.name(),
                        n_in,
                        prev.n_out()
                    )));
                }
            }
            let lc = cfg.for_layer(layer);
            let profile = ConvergenceProfile::with_target_density(lc.target_density);
            let weights = init::materialize(layer, &profile, seed.wrapping_add(i as u64));
            let mask = prune_layer(&weights, lc)?;
            let format = match lc.mode {
                PruneMode::Coarse => FcLayerFormat::Shared(SharedIndexLayer::from_fc(
                    layer.name(),
                    &weights,
                    &mask,
                    GROUP_SIZE,
                    lc.quant_bits,
                )?),
                PruneMode::TwoFour => {
                    FcLayerFormat::TwoFour(TwoFourFcLayer::from_fc(layer.name(), &weights, &mask)?)
                }
                PruneMode::BankBalanced { bank, k } => FcLayerFormat::BankBalanced(
                    BankBalancedFcLayer::from_fc(layer.name(), &weights, &mask, bank, k)?,
                ),
            };
            let activation = if i + 1 == count {
                Activation::None
            } else {
                Activation::Relu
            };
            layers.push((format, activation));
        }
        let (n_in, n_out) = match (layers.first(), layers.last()) {
            (Some((first, _)), Some((last, _))) => (first.n_in(), last.n_out()),
            _ => {
                return Err(ServeError::InvalidConfig(format!(
                    "network {:?} has no weighted layers",
                    spec.name()
                )))
            }
        };
        Ok(ServableModel {
            name,
            layers,
            n_in,
            n_out,
        })
    }

    /// The paper's MLP (784-300-100-10 at full scale) compressed with
    /// its published per-layer settings — the stock serving workload.
    ///
    /// # Errors
    ///
    /// Propagates compression failures (none occur for the stock spec).
    pub fn mlp(scale: Scale, seed: u64) -> Result<Self, ServeError> {
        let spec = NetworkSpec::model(Model::Mlp, scale);
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        ServableModel::from_spec("mlp", &spec, &cfg, seed)
    }

    /// The stock MLP pruned with a structured mode on every FC layer
    /// instead of the paper's coarse blocks. The registry name carries
    /// the mode (`"mlp-two_four"`, `"mlp-bank_balanced"`).
    ///
    /// # Errors
    ///
    /// Propagates compression failures (e.g. invalid bank geometry).
    pub fn mlp_with_mode(mode: PruneMode, scale: Scale, seed: u64) -> Result<Self, ServeError> {
        let spec = NetworkSpec::model(Model::Mlp, scale);
        let mut cfg = ModelCompressionConfig::paper(Model::Mlp);
        cfg.fc.mode = mode;
        ServableModel::from_spec(format!("mlp-{}", mode.name()), &spec, &cfg, seed)
    }

    /// The spiking twin of [`ServableModel::mlp`]: the same ReLU-chained
    /// MLP compressed with the paper settings, registered as
    /// `"mlp-spiking"` and intended to be driven with LIF-style spike
    /// frames ([`cs_nn::data::lif_spike_train`]) whose natural
    /// activation sparsity the gated backend converts into skipped
    /// input blocks. The weights are identical in distribution to the
    /// stock MLP — spiking is a property of the workload, not the
    /// network — so dense/sparse/gated lanes stay mutually
    /// bit-identical on it.
    ///
    /// # Errors
    ///
    /// Propagates compression failures (none occur for the stock spec).
    pub fn spiking_mlp(scale: Scale, seed: u64) -> Result<Self, ServeError> {
        let spec = NetworkSpec::model(Model::Mlp, scale);
        let cfg = ModelCompressionConfig::paper(Model::Mlp);
        ServableModel::from_spec("mlp-spiking", &spec, &cfg, seed)
    }

    /// Assembles a servable model directly from compressed layers (the
    /// path a hot-load from a `CSMR` registry container takes: the
    /// artifact already holds [`FcLayerFormat`]s, no spec or seed is
    /// involved).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an empty layer stack
    /// or mismatched widths between consecutive layers.
    pub fn from_layers(
        name: impl Into<String>,
        layers: Vec<(FcLayerFormat, Activation)>,
    ) -> Result<Self, ServeError> {
        let name = name.into();
        for pair in layers.windows(2) {
            let (prev, next) = (&pair[0].0, &pair[1].0);
            if prev.n_out() != next.n_in() {
                return Err(ServeError::InvalidConfig(format!(
                    "layer {:?} expects {} inputs but previous layer produces {}",
                    next.name(),
                    next.n_in(),
                    prev.n_out()
                )));
            }
        }
        let (n_in, n_out) = match (layers.first(), layers.last()) {
            (Some((first, _)), Some((last, _))) => (first.n_in(), last.n_out()),
            _ => {
                return Err(ServeError::InvalidConfig(format!(
                    "model {name:?} has no layers"
                )))
            }
        };
        Ok(ServableModel {
            name,
            layers,
            n_in,
            n_out,
        })
    }

    /// Runs the executor's structural validation over every layer —
    /// what registration and every hot load apply before a model can
    /// receive traffic.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an empty name or layer
    /// stack, and propagates [`validate_layer`] failures.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.name.is_empty() {
            return Err(ServeError::InvalidConfig(
                "model name must not be empty".to_string(),
            ));
        }
        if self.layers.is_empty() {
            return Err(ServeError::InvalidConfig(format!(
                "model {:?} has no layers",
                self.name
            )));
        }
        for (layer, _) in &self.layers {
            // Structured formats validate through their exact
            // shared-index bridge, so one structural contract covers
            // every format.
            validate_layer(&layer.to_shared())?;
        }
        Ok(())
    }

    /// The layers bridged to the shared-index view the accelerator
    /// simulator executes (exact for structured formats — identity
    /// codebooks, no quantization loss). Simulator-backed workers build
    /// this once at spawn.
    pub fn shared_layers(&self) -> Vec<(SharedIndexLayer, Activation)> {
        self.layers
            .iter()
            .map(|(format, act)| (format.to_shared(), *act))
            .collect()
    }

    /// Lowers the model onto the specialized sparse engines: one
    /// [`FcKernel`] per layer — block-CSR for shared-index layers,
    /// branch-free fixed-fan-in kernels for the structured formats.
    pub fn sparse_lane(&self) -> CompiledLane {
        let layers = self
            .layers
            .iter()
            .map(|(format, act)| LaneLayer {
                name: format.name().to_string(),
                kernel: LaneKernel::Sparse(FcKernel::compile(format)),
                activation: *act,
            })
            .collect();
        CompiledLane { layers }
    }

    /// [`ServableModel::sparse_lane`] behind the activation gate: each
    /// layer prescans its input for all-zero blocks and skips the
    /// corresponding weight runs. Layers where the benefit model opts
    /// out (tiny layers, unprofitable geometry) fall back to the plain
    /// sparse kernel, so a gated lane is never slower by construction.
    /// Outputs stay bit-identical to [`ServableModel::dense_lane`] on
    /// every input: only exact `+0.0` blocks are skipped, and a skipped
    /// term contributes `+0.0 * w` to a `+0.0`-seeded accumulator.
    pub fn gated_lane(&self) -> CompiledLane {
        let layers = self
            .layers
            .iter()
            .map(|(format, act)| {
                let kernel = FcKernel::compile(format);
                let kernel = match kernel.plan_gate(GatePolicy::Auto) {
                    Some(plan) => LaneKernel::Gated(kernel, plan),
                    None => LaneKernel::Sparse(kernel),
                };
                LaneLayer {
                    name: format.name().to_string(),
                    kernel,
                    activation: *act,
                }
            })
            .collect();
        CompiledLane { layers }
    }

    /// The dense reference twin of [`ServableModel::sparse_lane`]: each
    /// layer's weights decoded to a full `n_in × n_out` tensor with
    /// pruned positions stored as explicit zeros. Because both lanes
    /// decode the same values, their outputs are bit-identical on
    /// finite inputs (see [`cs_compress::engine`] for the argument).
    pub fn dense_lane(&self) -> CompiledLane {
        let layers = self
            .layers
            .iter()
            .map(|(format, act)| LaneLayer {
                name: format.name().to_string(),
                kernel: LaneKernel::Dense(FcKernel::compile(format).to_dense()),
                activation: *act,
            })
            .collect();
        CompiledLane { layers }
    }
}

/// A kernel an engine-backed worker lane runs for one layer.
#[derive(Debug, Clone)]
pub enum LaneKernel {
    /// A sparse kernel over the surviving weights: block-CSR or one of
    /// the specialized structured kernels, per the layer's format.
    Sparse(FcKernel),
    /// A sparse kernel behind a prescan-and-skip gate: zero input
    /// blocks skip their weight runs, and every forward reports how
    /// many blocks the gate skipped.
    Gated(FcKernel, GatePlan),
    /// Dense matmul over the decoded twin weights (`n_in × n_out`).
    Dense(Tensor),
}

impl LaneKernel {
    /// The telemetry `kernel` label: `"sparse"`, `"two_four"` or
    /// `"bank_balanced"` for sparse kernels, `"gated"` for gated
    /// kernels, `"dense"` for the twin.
    pub fn kind(&self) -> &'static str {
        match self {
            LaneKernel::Sparse(kernel) => kernel.kind(),
            LaneKernel::Gated(..) => "gated",
            LaneKernel::Dense(_) => "dense",
        }
    }

    /// Runs the kernel on one input vector (pre-activation outputs).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors from the dense path; the sparse
    /// path cannot fail once the input length matches.
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        self.forward_counted(input).map(|(out, _)| out)
    }

    /// [`Self::forward`] plus the gate occupancy stats when this layer
    /// is gated (`None` for ungated kernels). Worker lanes use this to
    /// feed the `serve_gate_blocks_total` hit/skip counters.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors from the dense path; the sparse
    /// and gated paths cannot fail once the input length matches.
    pub fn forward_counted(
        &self,
        input: &[f32],
    ) -> Result<(Vec<f32>, Option<GateStats>), ServeError> {
        match self {
            LaneKernel::Sparse(layer) => Ok((layer.forward_alloc(input), None)),
            LaneKernel::Gated(layer, plan) => {
                let mut out = vec![0.0f32; layer.n_out()];
                let stats = layer.forward_gated(input, &mut out, plan);
                Ok((out, Some(stats)))
            }
            LaneKernel::Dense(weights) => {
                let x = Tensor::from_vec(Shape::d2(1, input.len()), input.to_vec())
                    .map_err(CompressError::from)?;
                let out = ops::matmul(&x, weights).map_err(CompressError::from)?;
                Ok((out.as_slice().to_vec(), None))
            }
        }
    }
}

/// One layer of an engine-backed worker lane.
#[derive(Debug, Clone)]
pub struct LaneLayer {
    /// Layer name (the telemetry `layer` label).
    pub name: String,
    /// The compiled kernel.
    pub kernel: LaneKernel,
    /// Activation applied element-wise after the kernel.
    pub activation: Activation,
}

/// A model lowered for engine-backed workers: per-layer kernels in
/// execution order. Workers build one per model at spawn so the hot
/// path never touches the registry or re-decodes weights.
#[derive(Debug, Clone)]
pub struct CompiledLane {
    /// Layers in execution order.
    pub layers: Vec<LaneLayer>,
}

impl CompiledLane {
    /// Runs the whole lane: each layer's kernel followed by its
    /// activation.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (dense-path shape mismatches only).
    pub fn forward(&self, input: &[f32]) -> Result<Vec<f32>, ServeError> {
        let mut x = input.to_vec();
        for layer in &self.layers {
            let mut out = layer.kernel.forward(&x)?;
            for v in &mut out {
                *v = layer.activation.apply(*v);
            }
            x = out;
        }
        Ok(x)
    }
}

/// Immutable name → model map shared by the admission path and workers.
///
/// Built once before the server starts; registration validates every
/// layer with the executor's [`validate_layer`] so a malformed artifact
/// is rejected here instead of failing requests later.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: Vec<Arc<ServableModel>>,
    by_name: HashMap<String, usize>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Adds a model, returning its dense index.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names, empty models, and any layer that fails
    /// the executor's structural validation.
    pub fn register(&mut self, model: ServableModel) -> Result<usize, ServeError> {
        if self.by_name.contains_key(&model.name) {
            return Err(ServeError::InvalidConfig(format!(
                "model {:?} registered twice",
                model.name
            )));
        }
        model.validate()?;
        let idx = self.models.len();
        self.by_name.insert(model.name.clone(), idx);
        self.models.push(Arc::new(model));
        Ok(idx)
    }

    /// Looks a model up by name.
    pub fn get(&self, name: &str) -> Option<(usize, Arc<ServableModel>)> {
        let idx = *self.by_name.get(name)?;
        Some((idx, Arc::clone(&self.models[idx])))
    }

    /// Looks a model up by dense index.
    pub fn get_by_index(&self, idx: usize) -> Option<Arc<ServableModel>> {
        self.models.get(idx).map(Arc::clone)
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Registered model names in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name.as_str()).collect()
    }

    /// All models in registration order (workers snapshot this once at
    /// startup so each owns its model set).
    pub fn models(&self) -> &[Arc<ServableModel>] {
        &self.models
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_accel::exec::Accelerator;
    use cs_accel::AccelConfig;

    #[test]
    fn mlp_compiles_and_runs_end_to_end() {
        let m = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
        assert_eq!(m.layers.len(), 3);
        assert_eq!(m.n_in, m.layers[0].0.n_in());
        assert_eq!(m.n_out, m.layers.last().unwrap().0.n_out());
        let accel = Accelerator::new(AccelConfig::paper_default());
        let input = vec![0.5f32; m.n_in];
        let run = accel.run_network(&m.shared_layers(), &input).unwrap();
        assert_eq!(run.outputs.len(), m.n_out);
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn structured_mlps_compile_serve_lanes_and_register() {
        for mode in [
            PruneMode::TwoFour,
            PruneMode::BankBalanced { bank: 8, k: 2 },
        ] {
            let m = ServableModel::mlp_with_mode(mode, Scale::Reduced(8), 7).unwrap();
            assert_eq!(m.name, format!("mlp-{}", mode.name()));
            for (format, _) in &m.layers {
                assert_eq!(format.kind(), mode.name());
            }
            let sparse = m.sparse_lane();
            assert!(sparse.layers.iter().all(|l| l.kernel.kind() == mode.name()));
            let dense = m.dense_lane();
            let input: Vec<f32> = (0..m.n_in)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        i as f32 * 0.01 - 0.4
                    }
                })
                .collect();
            let a = sparse.forward(&input).unwrap();
            let b = dense.forward(&input).unwrap();
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b), "mode {:?}", mode);
            // The shared-index bridge is exact (identity codebooks), so
            // the simulator path admits structured models and agrees
            // with the lanes up to accumulation-order rounding.
            let mut reg = ModelRegistry::new();
            reg.register(m.clone()).unwrap();
            let accel = Accelerator::new(AccelConfig::paper_default());
            let run = accel.run_network(&m.shared_layers(), &input).unwrap();
            assert_eq!(run.outputs.len(), a.len());
            for (x, y) in run.outputs.iter().zip(&a) {
                assert!((x - y).abs() <= 1e-4 * y.abs().max(1.0), "mode {:?}", mode);
            }
        }
    }

    #[test]
    fn registry_rejects_duplicates_and_resolves_names() {
        let m = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
        let mut reg = ModelRegistry::new();
        let idx = reg.register(m.clone()).unwrap();
        assert_eq!(idx, 0);
        assert!(matches!(reg.register(m), Err(ServeError::InvalidConfig(_))));
        let (i, got) = reg.get("mlp").unwrap();
        assert_eq!(i, 0);
        assert_eq!(got.name, "mlp");
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.names(), vec!["mlp"]);
    }

    #[test]
    fn conv_networks_are_rejected_with_a_typed_error() {
        let spec = NetworkSpec::model(Model::AlexNet, Scale::Reduced(16));
        let cfg = ModelCompressionConfig::paper(Model::AlexNet);
        let err = ServableModel::from_spec("alex", &spec, &cfg, 1).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }

    #[test]
    fn sparse_and_dense_lanes_are_bit_identical() {
        let m = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
        let sparse = m.sparse_lane();
        let dense = m.dense_lane();
        assert_eq!(sparse.layers.len(), m.layers.len());
        for (lane_layer, (format, act)) in sparse.layers.iter().zip(&m.layers) {
            assert_eq!(lane_layer.name, format.name());
            assert_eq!(lane_layer.kernel.kind(), "sparse");
            assert_eq!(lane_layer.activation, *act);
        }
        assert!(dense.layers.iter().all(|l| l.kernel.kind() == "dense"));
        // Inputs mixing zeros, negatives and positives; both lanes must
        // agree bit-for-bit (same decoded weights, same term order).
        let input: Vec<f32> = (0..m.n_in)
            .map(|i| match i % 5 {
                0 => 0.0,
                1 => -0.75,
                2 => (i % 13) as f32 * 0.11,
                3 => -((i % 7) as f32) * 0.23,
                _ => 1.5,
            })
            .collect();
        let a = sparse.forward(&input).unwrap();
        let b = dense.forward(&input).unwrap();
        assert_eq!(a.len(), m.n_out);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn registration_runs_structural_validation() {
        let mut m = ServableModel::mlp(Scale::Reduced(8), 7).unwrap();
        // Corrupt a group's shared index so validation must trip.
        match &mut m.layers[0].0 {
            FcLayerFormat::Shared(sil) => {
                sil.groups[0].index.pop();
            }
            other => panic!("coarse MLP should compile to Shared, got {}", other.kind()),
        }
        let mut reg = ModelRegistry::new();
        assert!(matches!(reg.register(m), Err(ServeError::Accel(_))));
    }
}
