//! Closed-loop load generator and saturation sweep.
//!
//! [`run_sweep`] drives a fresh server per operating point across the
//! cross product of worker count × batch size × client count, with
//! every client submitting back-to-back (closed loop) — enough clients
//! saturate the pipeline. The sweep reports wall-clock throughput and,
//! more importantly here, the **simulated hardware throughput**: the
//! host running this simulator may have a single core, but each worker
//! models one accelerator, so requests/sec of the modeled deployment is
//! completed requests over the busiest accelerator's simulated busy
//! time. That is the figure that scales with the worker count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cs_nn::spec::Scale;
use cs_telemetry::{NoopRecorder, Recorder};

use crate::clock::MonotonicClock;
use crate::error::ServeError;
use crate::model::{ModelRegistry, ServableModel};
use crate::server::{InferRequest, ServeConfig, Server};

/// Deterministic input generator (SplitMix64 over the request id), so a
/// sweep is reproducible without an external RNG dependency. Public so
/// other load drivers (e.g. `cs-net`'s `cs-netload`) offer exactly the
/// same request shapes as the in-process sweep.
pub fn request_input(n_in: usize, request_id: u64, seed: u64) -> Vec<f32> {
    let mut state = seed ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n_in)
        .map(|_| {
            let r = next();
            // ~1/3 zeros (dynamic sparsity), rest uniform in [-0.5, 0.5).
            if r % 3 == 0 {
                0.0
            } else {
                (r >> 11) as f32 / (1u64 << 53) as f32 - 0.5
            }
        })
        .collect()
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Scale the MLP workload is built at.
    pub scale: Scale,
    /// Seed for model materialization and request inputs.
    pub seed: u64,
    /// Requests per operating point.
    pub requests: usize,
    /// Closed-loop client thread counts to sweep.
    pub clients: Vec<usize>,
    /// Worker counts to sweep.
    pub workers: Vec<usize>,
    /// Batch-size limits to sweep.
    pub max_batches: Vec<usize>,
    /// Admission queue depth for every point.
    pub queue_depth: usize,
    /// Partial-batch deadline (µs).
    pub max_wait_us: u64,
    /// Emulate simulated service time on the wall clock (see
    /// [`ServeConfig::emulate_hw_time`]).
    pub emulate_hw_time: bool,
    /// Accelerator clock (GHz).
    pub freq_ghz: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scale: Scale::Reduced(4),
            seed: 7,
            requests: 256,
            clients: vec![8],
            workers: vec![1, 2, 4],
            max_batches: vec![1, 8],
            queue_depth: 64,
            max_wait_us: 200,
            emulate_hw_time: true,
            freq_ghz: 1.0,
        }
    }
}

/// One operating point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Worker (accelerator) count.
    pub workers: usize,
    /// Batch-size limit.
    pub max_batch: usize,
    /// Closed-loop clients offering load.
    pub clients: usize,
    /// Requests completed.
    pub completed: u64,
    /// Admission rejections observed (clients retry, so every request
    /// eventually completes; this counts backpressure events).
    pub rejected: u64,
    /// Wall-clock requests/sec on the host.
    pub wall_rps: f64,
    /// Simulated-hardware requests/sec (completed over the busiest
    /// accelerator's busy time).
    pub hw_rps: f64,
    /// Median latency (µs).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Mean requests per closed batch.
    pub mean_batch: f64,
    /// Mean simulated cycles per request.
    pub cycles_per_req: f64,
    /// Mean simulated energy per request (picojoules).
    pub energy_pj_per_req: f64,
}

/// Result of a sweep: every operating point in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Operating points in `(clients, workers, max_batch)` sweep order.
    pub points: Vec<LoadPoint>,
}

impl SweepReport {
    /// Best simulated-hardware throughput over all points with the
    /// given worker count.
    pub fn best_hw_rps(&self, workers: usize) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.workers == workers)
            .map(|p| p.hw_rps)
            .fold(None, |best, rps| {
                Some(best.map_or(rps, |b: f64| b.max(rps)))
            })
    }

    /// Throughput scaling factor between two worker counts (best point
    /// each), e.g. `scaling(1, 4)` for the 1 → 4 speedup.
    pub fn scaling(&self, from_workers: usize, to_workers: usize) -> Option<f64> {
        let from = self.best_hw_rps(from_workers)?;
        let to = self.best_hw_rps(to_workers)?;
        if from <= 0.0 {
            None
        } else {
            Some(to / from)
        }
    }

    /// Renders the saturation table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:>7} {:>7} {:>7} {:>9} {:>11} {:>11} {:>8} {:>8} {:>8} {:>7} {:>10}\n",
            "clients",
            "workers",
            "batch",
            "done",
            "wall req/s",
            "hw req/s",
            "p50 us",
            "p95 us",
            "p99 us",
            "avg B",
            "kcyc/req"
        ));
        for p in &self.points {
            s.push_str(&format!(
                "{:>7} {:>7} {:>7} {:>9} {:>11.1} {:>11.1} {:>8} {:>8} {:>8} {:>7.2} {:>10.1}\n",
                p.clients,
                p.workers,
                p.max_batch,
                p.completed,
                p.wall_rps,
                p.hw_rps,
                p.p50_us,
                p.p95_us,
                p.p99_us,
                p.mean_batch,
                p.cycles_per_req / 1e3
            ));
        }
        s
    }
}

/// Runs one operating point against a freshly started server.
///
/// # Errors
///
/// Propagates model-compilation and server-start failures. Per-request
/// worker errors (none occur for a validated registry) fail the point.
pub fn run_point(
    model: &ServableModel,
    cfg: &ServeConfig,
    clients: usize,
    requests: usize,
    seed: u64,
) -> Result<LoadPoint, ServeError> {
    run_point_with_recorder(model, cfg, clients, requests, seed, Arc::new(NoopRecorder))
}

/// [`run_point`] with a telemetry recorder threaded into the server.
/// Passing the same [`cs_telemetry::Registry`] across points makes its
/// metrics accumulate over the whole sweep (series are re-resolved by
/// name, not re-created).
///
/// # Errors
///
/// Same conditions as [`run_point`].
pub fn run_point_with_recorder(
    model: &ServableModel,
    cfg: &ServeConfig,
    clients: usize,
    requests: usize,
    seed: u64,
    recorder: Arc<dyn Recorder>,
) -> Result<LoadPoint, ServeError> {
    let mut registry = ModelRegistry::new();
    registry.register(model.clone())?;
    let server = Server::start_with_recorder(
        registry,
        cfg.clone(),
        Arc::new(MonotonicClock::new()),
        recorder,
    )?;
    let name = model.name.clone();
    let n_in = model.n_in;
    let retries = AtomicU64::new(0);
    let clients = clients.max(1);
    let mut failure: Option<ServeError> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for client in 0..clients {
            let server = &server;
            let name = &name;
            let retries = &retries;
            // Split the request ids across clients.
            let lo = requests * client / clients;
            let hi = requests * (client + 1) / clients;
            handles.push(scope.spawn(move || -> Result<(), ServeError> {
                for rid in lo..hi {
                    let input = request_input(n_in, rid as u64, seed);
                    loop {
                        match server.infer(InferRequest::new(name.clone(), input.clone())) {
                            Ok(_) => break,
                            Err(ServeError::Overloaded { .. }) => {
                                // Closed-loop backoff: the queue is the
                                // backpressure signal, retry shortly.
                                retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => failure = Some(e),
                Err(_) => failure = Some(ServeError::WorkerLost),
            }
        }
    });
    let snap = server.shutdown();
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(LoadPoint {
        workers: cfg.workers,
        max_batch: cfg.max_batch,
        clients,
        completed: snap.completed,
        rejected: snap.rejected,
        wall_rps: snap.throughput_rps,
        hw_rps: snap.hw_rps(cfg.freq_ghz),
        p50_us: snap.p50_us,
        p95_us: snap.p95_us,
        p99_us: snap.p99_us,
        mean_batch: snap.mean_batch,
        cycles_per_req: snap.cycles_per_req,
        energy_pj_per_req: snap.energy_pj_per_req,
    })
}

/// Runs the full sweep: one point per `(clients, workers, max_batch)`
/// combination, all against the same compiled MLP.
///
/// # Errors
///
/// Propagates model-compilation and per-point failures.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, ServeError> {
    run_sweep_with_recorder(cfg, Arc::new(NoopRecorder))
}

/// [`run_sweep`] with a telemetry recorder shared by every operating
/// point, so the recorder's metrics cover the whole sweep.
///
/// # Errors
///
/// Propagates model-compilation and per-point failures.
pub fn run_sweep_with_recorder(
    cfg: &SweepConfig,
    recorder: Arc<dyn Recorder>,
) -> Result<SweepReport, ServeError> {
    let model = ServableModel::mlp(cfg.scale, cfg.seed)?;
    let mut points = Vec::new();
    for &clients in &cfg.clients {
        for &workers in &cfg.workers {
            for &max_batch in &cfg.max_batches {
                let serve_cfg = ServeConfig {
                    workers,
                    queue_depth: cfg.queue_depth,
                    max_batch,
                    max_wait_us: cfg.max_wait_us,
                    emulate_hw_time: cfg.emulate_hw_time,
                    freq_ghz: cfg.freq_ghz,
                    backend: crate::server::ExecBackend::Simulator,
                    node: "local".to_string(),
                    ..ServeConfig::default()
                };
                points.push(run_point_with_recorder(
                    &model,
                    &serve_cfg,
                    clients,
                    cfg.requests,
                    cfg.seed,
                    Arc::clone(&recorder),
                )?);
            }
        }
    }
    Ok(SweepReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic_and_sparse() {
        let a = request_input(256, 42, 7);
        let b = request_input(256, 42, 7);
        assert_eq!(a, b);
        let c = request_input(256, 43, 7);
        assert_ne!(a, c);
        let zeros = a.iter().filter(|v| **v == 0.0).count();
        assert!(zeros > 40 && zeros < 160, "zeros {zeros}");
        assert!(a.iter().all(|v| (-0.5..0.5).contains(v)));
    }

    #[test]
    fn tiny_sweep_completes_every_request() {
        let cfg = SweepConfig {
            scale: Scale::Reduced(16),
            requests: 12,
            clients: vec![3],
            workers: vec![1, 2],
            max_batches: vec![4],
            emulate_hw_time: false,
            ..SweepConfig::default()
        };
        let report = run_sweep(&cfg).expect("sweep");
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert_eq!(p.completed, 12);
            assert!(p.cycles_per_req > 0.0);
            assert!(p.energy_pj_per_req > 0.0);
        }
        assert!(report.render().contains("hw req/s"));
        assert!(report.best_hw_rps(1).is_some());
        assert!(report.best_hw_rps(7).is_none());
    }

    #[test]
    fn multi_worker_hw_throughput_scales() {
        // Saturating load, no wall-clock emulation needed: the hardware
        // figure comes from simulated busy cycles, which spread across
        // accelerators as soon as batches interleave.
        let cfg = SweepConfig {
            scale: Scale::Reduced(16),
            requests: 64,
            clients: vec![8],
            workers: vec![1, 4],
            max_batches: vec![4],
            emulate_hw_time: false,
            max_wait_us: 50,
            ..SweepConfig::default()
        };
        let report = run_sweep(&cfg).expect("sweep");
        let scaling = report.scaling(1, 4).expect("both worker counts present");
        assert!(
            scaling >= 1.5,
            "1→4 worker hw throughput scaling {scaling:.2}× below 1.5×"
        );
    }
}
