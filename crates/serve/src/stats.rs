//! Serving statistics: latency percentiles, batch-size histogram,
//! throughput and simulated hardware cost per request.
//!
//! All time is read through the injected [`Clock`], never from
//! `Instant::now()`, so every figure in a [`ServeSnapshot`] — including
//! the percentiles — is reproducible in tests with a
//! [`crate::clock::ManualClock`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::clock::Clock;

/// Hard cap on retained latency samples; past this the recorder keeps
/// every second sample to bound memory during long soak runs.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Counter updates can't leave the map in a broken state, so a
    // poisoned lock (a panicking test thread) is safe to adopt.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[derive(Debug, Default)]
struct StatsInner {
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    queue_depth: usize,
    max_queue_depth: usize,
    latencies_us: Vec<u64>,
    keep_every: usize,
    latency_skip: usize,
    batch_hist: BTreeMap<usize, u64>,
    total_cycles: u64,
    total_energy_pj: f64,
    worker_busy_cycles: Vec<u64>,
}

/// Shared, thread-safe statistics recorder.
///
/// The admission path, the batcher and every worker hold an `Arc` of
/// this and record events as they happen; [`ServeStats::snapshot`]
/// folds the counters into a [`ServeSnapshot`].
pub struct ServeStats {
    clock: Arc<dyn Clock>,
    start_us: u64,
    inner: Mutex<StatsInner>,
}

impl std::fmt::Debug for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeStats")
            .field("start_us", &self.start_us)
            .finish_non_exhaustive()
    }
}

impl ServeStats {
    /// A recorder for `workers` worker threads, timed by `clock`.
    pub fn new(clock: Arc<dyn Clock>, workers: usize) -> Self {
        let start_us = clock.now_us();
        ServeStats {
            clock,
            start_us,
            inner: Mutex::new(StatsInner {
                keep_every: 1,
                worker_busy_cycles: vec![0; workers],
                ..StatsInner::default()
            }),
        }
    }

    /// The clock this recorder reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in microseconds on the injected clock.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Records a request admitted into the queue.
    pub fn record_submit(&self) {
        let mut g = lock_or_recover(&self.inner);
        g.submitted += 1;
        g.queue_depth += 1;
        g.max_queue_depth = g.max_queue_depth.max(g.queue_depth);
    }

    /// Records a request rejected with `Overloaded`.
    pub fn record_reject(&self) {
        lock_or_recover(&self.inner).rejected += 1;
    }

    /// Records a request leaving the queue for a batch.
    pub fn record_dequeue(&self) {
        let mut g = lock_or_recover(&self.inner);
        g.queue_depth = g.queue_depth.saturating_sub(1);
    }

    /// Records a closed batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        *lock_or_recover(&self.inner)
            .batch_hist
            .entry(size)
            .or_insert(0) += 1;
    }

    /// Records one completed request.
    pub fn record_done(&self, worker: usize, latency_us: u64, cycles: u64, energy_pj: f64) {
        let mut g = lock_or_recover(&self.inner);
        g.completed += 1;
        g.total_cycles += cycles;
        g.total_energy_pj += energy_pj;
        if let Some(busy) = g.worker_busy_cycles.get_mut(worker) {
            *busy += cycles;
        }
        // Reservoir-ish decimation: once the buffer is full, keep every
        // 2^k-th sample so percentiles stay representative while memory
        // stays bounded.
        if g.latencies_us.len() >= MAX_LATENCY_SAMPLES {
            g.latencies_us = g.latencies_us.iter().copied().step_by(2).collect();
            g.keep_every *= 2;
        }
        if g.latency_skip == 0 {
            g.latencies_us.push(latency_us);
            g.latency_skip = g.keep_every - 1;
        } else {
            g.latency_skip -= 1;
        }
    }

    /// Records one failed request (the worker returned an error).
    pub fn record_failure(&self) {
        lock_or_recover(&self.inner).failed += 1;
    }

    /// Folds the counters into an immutable snapshot at the current
    /// clock reading.
    pub fn snapshot(&self) -> ServeSnapshot {
        let now = self.clock.now_us();
        let g = lock_or_recover(&self.inner);
        let mut sorted = g.latencies_us.clone();
        sorted.sort_unstable();
        let pct = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        let elapsed_us = now.saturating_sub(self.start_us);
        let completed = g.completed;
        let batches: u64 = g.batch_hist.values().sum();
        let batched_reqs: u64 = g.batch_hist.iter().map(|(size, n)| *size as u64 * n).sum();
        ServeSnapshot {
            elapsed_us,
            submitted: g.submitted,
            rejected: g.rejected,
            completed,
            failed: g.failed,
            queue_depth: g.queue_depth,
            max_queue_depth: g.max_queue_depth,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            mean_latency_us: if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
            },
            throughput_rps: if elapsed_us == 0 {
                0.0
            } else {
                completed as f64 * 1e6 / elapsed_us as f64
            },
            batch_hist: g.batch_hist.iter().map(|(s, n)| (*s, *n)).collect(),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_reqs as f64 / batches as f64
            },
            total_cycles: g.total_cycles,
            cycles_per_req: if completed == 0 {
                0.0
            } else {
                g.total_cycles as f64 / completed as f64
            },
            energy_pj_per_req: if completed == 0 {
                0.0
            } else {
                g.total_energy_pj / completed as f64
            },
            worker_busy_cycles: g.worker_busy_cycles.clone(),
        }
    }
}

/// Immutable summary of a server's activity.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Microseconds since the recorder was created.
    pub elapsed_us: u64,
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Requests currently queued (admitted, not yet batched).
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Median end-to-end latency (µs).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Mean latency (µs).
    pub mean_latency_us: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// `(batch size, count)` pairs in ascending size order.
    pub batch_hist: Vec<(usize, u64)>,
    /// Mean requests per closed batch.
    pub mean_batch: f64,
    /// Total simulated accelerator cycles across all requests.
    pub total_cycles: u64,
    /// Mean simulated cycles per completed request.
    pub cycles_per_req: f64,
    /// Mean simulated energy per completed request (picojoules).
    pub energy_pj_per_req: f64,
    /// Simulated busy cycles per worker (one accelerator each).
    pub worker_busy_cycles: Vec<u64>,
}

impl ServeSnapshot {
    /// Simulated-hardware makespan: the busiest accelerator's cycle
    /// count. With balanced load this shrinks linearly in the number of
    /// workers, which is what the saturation sweep measures.
    pub fn makespan_cycles(&self) -> u64 {
        self.worker_busy_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Requests per second the simulated hardware sustains at
    /// `freq_ghz`: completed requests over the busiest accelerator's
    /// busy time.
    pub fn hw_rps(&self, freq_ghz: f64) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            return 0.0;
        }
        self.completed as f64 * freq_ghz * 1e9 / makespan as f64
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests: {} completed, {} failed, {} rejected ({} submitted)\n",
            self.completed, self.failed, self.rejected, self.submitted
        ));
        s.push_str(&format!(
            "latency:  p50 {} us, p95 {} us, p99 {} us, mean {:.1} us\n",
            self.p50_us, self.p95_us, self.p99_us, self.mean_latency_us
        ));
        s.push_str(&format!(
            "rate:     {:.1} req/s wall, mean batch {:.2}, queue max {}\n",
            self.throughput_rps, self.mean_batch, self.max_queue_depth
        ));
        s.push_str(&format!(
            "hardware: {:.0} cycles/req, {:.1} nJ/req\n",
            self.cycles_per_req,
            self.energy_pj_per_req / 1e3
        ));
        let hist: Vec<String> = self
            .batch_hist
            .iter()
            .map(|(size, n)| format!("{size}:{n}"))
            .collect();
        s.push_str(&format!("batches:  [{}]\n", hist.join(" ")));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn percentiles_are_deterministic_under_a_manual_clock() {
        let clock = Arc::new(ManualClock::new(0));
        let stats = ServeStats::new(clock.clone(), 2);
        for latency in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            stats.record_submit();
            stats.record_dequeue();
            stats.record_done(0, latency, 50, 10.0);
        }
        clock.advance(1_000_000);
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.p50_us, 500);
        assert_eq!(snap.p95_us, 1000);
        assert_eq!(snap.p99_us, 1000);
        assert_eq!(snap.mean_latency_us, 550.0);
        // Exactly one simulated second elapsed → rps equals count.
        assert_eq!(snap.throughput_rps, 10.0);
        assert_eq!(snap.total_cycles, 500);
        assert_eq!(snap.cycles_per_req, 50.0);
        assert_eq!(snap.energy_pj_per_req, 10.0);
    }

    #[test]
    fn queue_depth_tracks_submit_and_dequeue() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        stats.record_submit();
        stats.record_submit();
        stats.record_submit();
        stats.record_dequeue();
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.max_queue_depth, 3);
    }

    #[test]
    fn batch_histogram_and_mean() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        stats.record_batch(1);
        stats.record_batch(4);
        stats.record_batch(4);
        let snap = stats.snapshot();
        assert_eq!(snap.batch_hist, vec![(1, 1), (4, 2)]);
        assert!((snap.mean_batch - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hw_rps_uses_the_busiest_worker() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 2);
        stats.record_done(0, 10, 1_000, 0.0);
        stats.record_done(1, 10, 3_000, 0.0);
        let snap = stats.snapshot();
        assert_eq!(snap.makespan_cycles(), 3_000);
        // 2 requests / (3000 cycles / 1 GHz) = 2 / 3 µs.
        let rps = snap.hw_rps(1.0);
        assert!((rps - 2.0 / 3e-6).abs() / rps < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        let snap = stats.snapshot();
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.throughput_rps, 0.0);
        assert_eq!(snap.mean_batch, 0.0);
        assert_eq!(snap.hw_rps(1.0), 0.0);
        assert!(snap.render().contains("requests"));
    }
}
