//! Serving statistics: latency percentiles, batch-size histogram,
//! throughput and simulated hardware cost per request.
//!
//! All time is read through the injected [`Clock`], never from
//! `Instant::now()`, so every figure in a [`ServeSnapshot`] — including
//! the percentiles — is reproducible in tests with a
//! [`crate::clock::ManualClock`].
//!
//! Every `record_*` event additionally feeds a set of
//! [`cs_telemetry`] handles registered against the recorder passed to
//! [`ServeStats::with_recorder`]. The default recorder is a
//! [`NoopRecorder`], whose handles discard updates, so the snapshot
//! path is unchanged for callers that never ask for metrics. The
//! snapshot percentiles and the telemetry histograms share one rank
//! rule ([`cs_telemetry::rank_for_quantile`]), so they agree exactly
//! whenever latencies land on histogram bucket bounds.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

use cs_sim::SimStats;
use cs_telemetry::{buckets, label, percentile_of_sorted, Counter, Gauge, Histogram};
use cs_telemetry::{Labels, NoopRecorder, Recorder};

use crate::batch::CloseReason;
use crate::clock::Clock;

/// Hard cap on retained latency samples; past this the recorder keeps
/// every second sample to bound memory during long soak runs.
const MAX_LATENCY_SAMPLES: usize = 1 << 20;

fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Counter updates can't leave the map in a broken state, so a
    // poisoned lock (a panicking test thread) is safe to adopt.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[derive(Debug, Default)]
struct StatsInner {
    submitted: u64,
    rejected: u64,
    completed: u64,
    hw_completed: u64,
    failed: u64,
    queue_depth: usize,
    max_queue_depth: usize,
    latencies_us: Vec<u64>,
    keep_every: usize,
    latency_skip: usize,
    batch_hist: BTreeMap<usize, u64>,
    total_cycles: u64,
    total_energy_pj: f64,
    worker_busy_cycles: Vec<u64>,
    loaded_models: u64,
    resident_bytes: u64,
    evictions: u64,
    canary_divergences: u64,
    canary_demotions: u64,
    /// Tenant → (submitted, rejected).
    tenants: BTreeMap<String, (u64, u64)>,
}

/// Telemetry handles for every serving-path event, fetched once at
/// startup (registration locks; updates are lock-free atomics).
#[derive(Debug, Clone)]
struct ServeMetrics {
    submitted: Counter,
    rejected: Counter,
    completed: Counter,
    failed: Counter,
    queue_depth: Gauge,
    queue_wait_us: Histogram,
    batch_size: Histogram,
    batch_wait_us: Histogram,
    /// Indexed by [`CloseReason`] discriminant order.
    batch_close: [Counter; 4],
    latency_us: Histogram,
    compute_cycles: Histogram,
    dram_stall_cycles: Histogram,
    nbin_peak_bytes: Gauge,
    energy_pj: Counter,
    worker_busy_us: Vec<Counter>,
    worker_idle_us: Vec<Counter>,
    worker_busy_cycles: Vec<Counter>,
    loaded_models: Gauge,
    resident_bytes: Gauge,
    evictions: Counter,
    canary_demotions: Counter,
}

impl ServeMetrics {
    fn new(rec: &dyn Recorder, workers: usize, max_batch: usize) -> Self {
        let close = |reason: CloseReason| {
            rec.counter(
                "serve_batch_close_total",
                "Batches closed, by closing rule",
                label("reason", reason.as_str()),
            )
        };
        ServeMetrics {
            submitted: rec.counter(
                "serve_requests_submitted_total",
                "Requests admitted into the queue",
                Labels::new(),
            ),
            rejected: rec.counter(
                "serve_requests_rejected_total",
                "Requests rejected with Overloaded",
                Labels::new(),
            ),
            completed: rec.counter(
                "serve_requests_completed_total",
                "Requests answered successfully",
                Labels::new(),
            ),
            failed: rec.counter(
                "serve_requests_failed_total",
                "Requests answered with an error",
                Labels::new(),
            ),
            queue_depth: rec.gauge(
                "serve_queue_depth",
                "Requests admitted but not yet batched",
                Labels::new(),
            ),
            queue_wait_us: rec.histogram(
                "serve_queue_wait_us",
                "Enqueue-to-dequeue wait per request",
                Labels::new(),
                &buckets::duration_us(),
            ),
            batch_size: rec.histogram(
                "serve_batch_size",
                "Requests per closed batch",
                Labels::new(),
                &buckets::exact(max_batch.max(1) as u64),
            ),
            batch_wait_us: rec.histogram(
                "serve_batch_wait_us",
                "Open-to-close wait per batch",
                Labels::new(),
                &buckets::duration_us(),
            ),
            batch_close: [
                close(CloseReason::Size),
                close(CloseReason::Deadline),
                close(CloseReason::ModelSwitch),
                close(CloseReason::Flush),
            ],
            latency_us: rec.histogram(
                "serve_request_latency_us",
                "End-to-end latency per completed request",
                Labels::new(),
                &buckets::duration_us(),
            ),
            compute_cycles: rec.histogram(
                "serve_request_compute_cycles",
                "Simulated NFU-busy cycles per request",
                Labels::new(),
                &buckets::cycles(),
            ),
            dram_stall_cycles: rec.histogram(
                "serve_request_dram_stall_cycles",
                "Simulated cycles stalled on DRAM per request",
                Labels::new(),
                &buckets::cycles(),
            ),
            nbin_peak_bytes: rec.gauge(
                "serve_nbin_peak_bytes",
                "Peak NBin occupancy over served requests",
                Labels::new(),
            ),
            energy_pj: rec.counter(
                "serve_energy_pj_total",
                "Simulated energy across completed requests (pJ)",
                Labels::new(),
            ),
            worker_busy_us: (0..workers)
                .map(|w| {
                    rec.counter(
                        "serve_worker_busy_us",
                        "Wall-clock time spent executing batches",
                        label("worker", w),
                    )
                })
                .collect(),
            worker_idle_us: (0..workers)
                .map(|w| {
                    rec.counter(
                        "serve_worker_idle_us",
                        "Wall-clock time spent waiting for batches",
                        label("worker", w),
                    )
                })
                .collect(),
            worker_busy_cycles: (0..workers)
                .map(|w| {
                    rec.counter(
                        "serve_worker_busy_cycles",
                        "Simulated accelerator cycles executed",
                        label("worker", w),
                    )
                })
                .collect(),
            loaded_models: rec.gauge(
                "serve_loaded_models",
                "Model versions currently resident",
                Labels::new(),
            ),
            resident_bytes: rec.gauge(
                "serve_resident_bytes",
                "Compact weight bytes held by resident model versions",
                Labels::new(),
            ),
            evictions: rec.counter(
                "serve_model_evictions_total",
                "Model versions evicted by the memory budget",
                Labels::new(),
            ),
            canary_demotions: rec.counter(
                "serve_canary_demotions_total",
                "Canary versions auto-demoted by divergence",
                Labels::new(),
            ),
        }
    }

    fn close_counter(&self, reason: CloseReason) -> &Counter {
        let idx = match reason {
            CloseReason::Size => 0,
            CloseReason::Deadline => 1,
            CloseReason::ModelSwitch => 2,
            CloseReason::Flush => 3,
        };
        &self.batch_close[idx]
    }
}

/// Shared, thread-safe statistics recorder.
///
/// The admission path, the batcher and every worker hold an `Arc` of
/// this and record events as they happen; [`ServeStats::snapshot`]
/// folds the counters into a [`ServeSnapshot`].
pub struct ServeStats {
    clock: Arc<dyn Clock>,
    start_us: u64,
    inner: Mutex<StatsInner>,
    metrics: ServeMetrics,
    /// Kept for series that register lazily: tenants and canary models
    /// are not known at startup.
    recorder: Arc<dyn Recorder>,
    tenant_metrics: Mutex<HashMap<String, (Counter, Counter)>>,
    canary_metrics: Mutex<HashMap<String, Counter>>,
}

impl std::fmt::Debug for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeStats")
            .field("start_us", &self.start_us)
            .finish_non_exhaustive()
    }
}

impl ServeStats {
    /// A recorder for `workers` worker threads, timed by `clock`, with
    /// telemetry discarded (no-op handles).
    pub fn new(clock: Arc<dyn Clock>, workers: usize) -> Self {
        ServeStats::with_recorder(clock, workers, Arc::new(NoopRecorder), 64)
    }

    /// A recorder whose events additionally feed telemetry handles
    /// registered against `recorder`. `max_batch` sizes the exact
    /// batch-size histogram (one bucket per size).
    pub fn with_recorder(
        clock: Arc<dyn Clock>,
        workers: usize,
        recorder: Arc<dyn Recorder>,
        max_batch: usize,
    ) -> Self {
        let start_us = clock.now_us();
        ServeStats {
            clock,
            start_us,
            inner: Mutex::new(StatsInner {
                keep_every: 1,
                worker_busy_cycles: vec![0; workers],
                ..StatsInner::default()
            }),
            metrics: ServeMetrics::new(recorder.as_ref(), workers, max_batch),
            recorder,
            tenant_metrics: Mutex::new(HashMap::new()),
            canary_metrics: Mutex::new(HashMap::new()),
        }
    }

    /// The clock this recorder reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time in microseconds on the injected clock.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Records a request admitted into the queue.
    pub fn record_submit(&self) {
        {
            let mut g = lock_or_recover(&self.inner);
            g.submitted += 1;
            g.queue_depth += 1;
            g.max_queue_depth = g.max_queue_depth.max(g.queue_depth);
        }
        self.metrics.submitted.inc();
        self.metrics.queue_depth.add(1);
    }

    /// Records a request rejected with `Overloaded`.
    pub fn record_reject(&self) {
        lock_or_recover(&self.inner).rejected += 1;
        self.metrics.rejected.inc();
    }

    /// Records a request leaving the queue for a batch after waiting
    /// `wait_us` since admission.
    pub fn record_dequeue(&self, wait_us: u64) {
        {
            let mut g = lock_or_recover(&self.inner);
            g.queue_depth = g.queue_depth.saturating_sub(1);
        }
        self.metrics.queue_depth.sub(1);
        self.metrics.queue_wait_us.observe(wait_us);
    }

    /// Records a closed batch of `size` requests that stayed open for
    /// `wait_us` and was closed by `reason`.
    pub fn record_batch(&self, size: usize, wait_us: u64, reason: CloseReason) {
        *lock_or_recover(&self.inner)
            .batch_hist
            .entry(size)
            .or_insert(0) += 1;
        self.metrics.batch_size.observe(size as u64);
        self.metrics.batch_wait_us.observe(wait_us);
        self.metrics.close_counter(reason).inc();
    }

    /// Records one completed request.
    ///
    /// Requests with `cycles == 0` ran on an engine lane with no
    /// hardware model attached (see [`crate::ExecBackend`]); they count
    /// toward wall-clock throughput but are excluded from the
    /// hardware-side accounting (`cycles_per_req`, `energy_pj_per_req`,
    /// `hw_rps`), which would otherwise be diluted toward zero.
    pub fn record_done(&self, worker: usize, latency_us: u64, cycles: u64, energy_pj: f64) {
        {
            let mut g = lock_or_recover(&self.inner);
            g.completed += 1;
            if cycles > 0 {
                g.hw_completed += 1;
            }
            g.total_cycles += cycles;
            g.total_energy_pj += energy_pj;
            if let Some(busy) = g.worker_busy_cycles.get_mut(worker) {
                *busy += cycles;
            }
            // Reservoir-ish decimation: once the buffer is full, keep
            // every 2^k-th sample so percentiles stay representative
            // while memory stays bounded.
            if g.latencies_us.len() >= MAX_LATENCY_SAMPLES {
                g.latencies_us = g.latencies_us.iter().copied().step_by(2).collect();
                g.keep_every *= 2;
            }
            if g.latency_skip == 0 {
                g.latencies_us.push(latency_us);
                g.latency_skip = g.keep_every - 1;
            } else {
                g.latency_skip -= 1;
            }
        }
        self.metrics.completed.inc();
        self.metrics.latency_us.observe(latency_us);
        self.metrics.energy_pj.add(energy_pj.round() as u64);
        if let Some(c) = self.metrics.worker_busy_cycles.get(worker) {
            c.add(cycles);
        }
    }

    /// Records the simulated-hardware breakdown of one request: how the
    /// accelerator's cycles split into compute vs DRAM stall, and the
    /// peak NBin occupancy it reached.
    pub fn record_request_hw(&self, sim: &SimStats) {
        self.metrics.compute_cycles.observe(sim.compute_busy_cycles);
        self.metrics
            .dram_stall_cycles
            .observe(sim.dram_stall_cycles);
        // Gauge high-water mark tracks the peak across requests.
        self.metrics
            .nbin_peak_bytes
            .set(sim.nbin_peak_bytes.min(i64::MAX as u64) as i64);
    }

    /// Records one worker-lane accounting sample: `idle_us` waiting for
    /// a batch, then `busy_us` executing it.
    pub fn record_worker_lane(&self, worker: usize, idle_us: u64, busy_us: u64) {
        if let Some(c) = self.metrics.worker_idle_us.get(worker) {
            c.add(idle_us);
        }
        if let Some(c) = self.metrics.worker_busy_us.get(worker) {
            c.add(busy_us);
        }
    }

    /// Records one failed request (the worker returned an error).
    pub fn record_failure(&self) {
        lock_or_recover(&self.inner).failed += 1;
        self.metrics.failed.inc();
    }

    fn tenant_handles(&self, tenant: &str) -> (Counter, Counter) {
        let mut g = lock_or_recover(&self.tenant_metrics);
        g.entry(tenant.to_string())
            .or_insert_with(|| {
                (
                    self.recorder.counter(
                        "serve_tenant_requests_total",
                        "Requests admitted, by tenant",
                        label("tenant", tenant),
                    ),
                    self.recorder.counter(
                        "serve_tenant_rejected_total",
                        "Requests rejected with Overloaded, by tenant",
                        label("tenant", tenant),
                    ),
                )
            })
            .clone()
    }

    /// Records an admission attributed to `tenant` (companion to
    /// [`ServeStats::record_submit`], which keeps the global counters).
    pub fn record_tenant_submit(&self, tenant: &str) {
        lock_or_recover(&self.inner)
            .tenants
            .entry(tenant.to_string())
            .or_insert((0, 0))
            .0 += 1;
        self.tenant_handles(tenant).0.inc();
    }

    /// Records a rejection attributed to `tenant`.
    pub fn record_tenant_reject(&self, tenant: &str) {
        lock_or_recover(&self.inner)
            .tenants
            .entry(tenant.to_string())
            .or_insert((0, 0))
            .1 += 1;
        self.tenant_handles(tenant).1.inc();
    }

    /// Records a model version becoming resident (`bytes` compact
    /// weight bytes).
    pub fn record_load(&self, bytes: u64) {
        {
            let mut g = lock_or_recover(&self.inner);
            g.loaded_models += 1;
            g.resident_bytes += bytes;
        }
        self.metrics.loaded_models.add(1);
        self.metrics
            .resident_bytes
            .add(bytes.min(i64::MAX as u64) as i64);
    }

    fn record_resident_drop(&self, bytes: u64) {
        {
            let mut g = lock_or_recover(&self.inner);
            g.loaded_models = g.loaded_models.saturating_sub(1);
            g.resident_bytes = g.resident_bytes.saturating_sub(bytes);
        }
        self.metrics.loaded_models.sub(1);
        self.metrics
            .resident_bytes
            .sub(bytes.min(i64::MAX as u64) as i64);
    }

    /// Records an explicit unload of a resident version.
    pub fn record_unload(&self, bytes: u64) {
        self.record_resident_drop(bytes);
    }

    /// Records a version evicted (and drained) by the memory budget.
    pub fn record_eviction(&self, bytes: u64) {
        lock_or_recover(&self.inner).evictions += 1;
        self.metrics.evictions.inc();
        self.record_resident_drop(bytes);
    }

    /// Records one canary shadow comparison that diverged from the
    /// primary for `model`.
    pub fn record_canary_divergence(&self, model: &str) {
        lock_or_recover(&self.inner).canary_divergences += 1;
        let counter = {
            let mut g = lock_or_recover(&self.canary_metrics);
            g.entry(model.to_string())
                .or_insert_with(|| {
                    self.recorder.counter(
                        "serve_canary_divergences_total",
                        "Canary outputs that diverged from the primary, by model",
                        label("model", model),
                    )
                })
                .clone()
        };
        counter.inc();
    }

    /// Records a canary crossing its divergence threshold and being
    /// demoted.
    pub fn record_canary_demotion(&self) {
        lock_or_recover(&self.inner).canary_demotions += 1;
        self.metrics.canary_demotions.inc();
    }

    /// Folds the counters into an immutable snapshot at the current
    /// clock reading.
    pub fn snapshot(&self) -> ServeSnapshot {
        let now = self.clock.now_us();
        let g = lock_or_recover(&self.inner);
        let mut sorted = g.latencies_us.clone();
        sorted.sort_unstable();
        let elapsed_us = now.saturating_sub(self.start_us);
        let completed = g.completed;
        let batches: u64 = g.batch_hist.values().sum();
        let batched_reqs: u64 = g.batch_hist.iter().map(|(size, n)| *size as u64 * n).sum();
        ServeSnapshot {
            elapsed_us,
            submitted: g.submitted,
            rejected: g.rejected,
            completed,
            failed: g.failed,
            queue_depth: g.queue_depth,
            max_queue_depth: g.max_queue_depth,
            p50_us: percentile_of_sorted(&sorted, 0.50),
            p95_us: percentile_of_sorted(&sorted, 0.95),
            p99_us: percentile_of_sorted(&sorted, 0.99),
            mean_latency_us: if sorted.is_empty() {
                0.0
            } else {
                sorted.iter().sum::<u64>() as f64 / sorted.len() as f64
            },
            throughput_rps: if elapsed_us == 0 {
                0.0
            } else {
                completed as f64 * 1e6 / elapsed_us as f64
            },
            batch_hist: g.batch_hist.iter().map(|(s, n)| (*s, *n)).collect(),
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched_reqs as f64 / batches as f64
            },
            hw_completed: g.hw_completed,
            total_cycles: g.total_cycles,
            cycles_per_req: if g.hw_completed == 0 {
                0.0
            } else {
                g.total_cycles as f64 / g.hw_completed as f64
            },
            energy_pj_per_req: if g.hw_completed == 0 {
                0.0
            } else {
                g.total_energy_pj / g.hw_completed as f64
            },
            worker_busy_cycles: g.worker_busy_cycles.clone(),
            loaded_models: g.loaded_models,
            resident_bytes: g.resident_bytes,
            evictions: g.evictions,
            canary_divergences: g.canary_divergences,
            canary_demotions: g.canary_demotions,
            tenants: g
                .tenants
                .iter()
                .map(|(t, (s, r))| (t.clone(), *s, *r))
                .collect(),
        }
    }
}

/// Immutable summary of a server's activity.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Microseconds since the recorder was created.
    pub elapsed_us: u64,
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Completed requests that ran a hardware model (`cycles > 0`).
    /// Engine-lane requests complete with zero cycles and are excluded
    /// from the per-request hardware figures below.
    pub hw_completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Requests currently queued (admitted, not yet batched).
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub max_queue_depth: usize,
    /// Median end-to-end latency (µs).
    pub p50_us: u64,
    /// 95th-percentile latency (µs).
    pub p95_us: u64,
    /// 99th-percentile latency (µs).
    pub p99_us: u64,
    /// Mean latency (µs).
    pub mean_latency_us: f64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
    /// `(batch size, count)` pairs in ascending size order.
    pub batch_hist: Vec<(usize, u64)>,
    /// Mean requests per closed batch.
    pub mean_batch: f64,
    /// Total simulated accelerator cycles across all requests.
    pub total_cycles: u64,
    /// Mean simulated cycles per hardware-modeled request
    /// (zero-cycle engine-lane completions excluded).
    pub cycles_per_req: f64,
    /// Mean simulated energy per hardware-modeled request (picojoules,
    /// zero-cycle engine-lane completions excluded).
    pub energy_pj_per_req: f64,
    /// Simulated busy cycles per worker (one accelerator each).
    pub worker_busy_cycles: Vec<u64>,
    /// Model versions currently resident.
    pub loaded_models: u64,
    /// Compact weight bytes held by resident versions.
    pub resident_bytes: u64,
    /// Versions evicted (and drained) by the memory budget.
    pub evictions: u64,
    /// Canary shadow comparisons that diverged from the primary.
    pub canary_divergences: u64,
    /// Canaries auto-demoted by crossing their divergence threshold.
    pub canary_demotions: u64,
    /// `(tenant, submitted, rejected)` triples in tenant order.
    pub tenants: Vec<(String, u64, u64)>,
}

impl ServeSnapshot {
    /// Simulated-hardware makespan: the busiest accelerator's cycle
    /// count. With balanced load this shrinks linearly in the number of
    /// workers, which is what the saturation sweep measures.
    pub fn makespan_cycles(&self) -> u64 {
        self.worker_busy_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Requests per second the simulated hardware sustains at
    /// `freq_ghz`: hardware-modeled completions over the busiest
    /// accelerator's busy time. Zero-cycle engine-lane completions
    /// never touched the hardware model, so counting them would inflate
    /// the figure.
    pub fn hw_rps(&self, freq_ghz: f64) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            return 0.0;
        }
        self.hw_completed as f64 * freq_ghz * 1e9 / makespan as f64
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests: {} completed, {} failed, {} rejected ({} submitted)\n",
            self.completed, self.failed, self.rejected, self.submitted
        ));
        s.push_str(&format!(
            "latency:  p50 {} us, p95 {} us, p99 {} us, mean {:.1} us\n",
            self.p50_us, self.p95_us, self.p99_us, self.mean_latency_us
        ));
        s.push_str(&format!(
            "rate:     {:.1} req/s wall, mean batch {:.2}, queue max {}\n",
            self.throughput_rps, self.mean_batch, self.max_queue_depth
        ));
        s.push_str(&format!(
            "hardware: {:.0} cycles/req, {:.1} nJ/req\n",
            self.cycles_per_req,
            self.energy_pj_per_req / 1e3
        ));
        let hist: Vec<String> = self
            .batch_hist
            .iter()
            .map(|(size, n)| format!("{size}:{n}"))
            .collect();
        s.push_str(&format!("batches:  [{}]\n", hist.join(" ")));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use cs_telemetry::Registry;

    #[test]
    fn percentiles_are_deterministic_under_a_manual_clock() {
        let clock = Arc::new(ManualClock::new(0));
        let stats = ServeStats::new(clock.clone(), 2);
        for latency in [100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000] {
            stats.record_submit();
            stats.record_dequeue(0);
            stats.record_done(0, latency, 50, 10.0);
        }
        clock.advance(1_000_000);
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.p50_us, 500);
        assert_eq!(snap.p95_us, 1000);
        assert_eq!(snap.p99_us, 1000);
        assert_eq!(snap.mean_latency_us, 550.0);
        // Exactly one simulated second elapsed → rps equals count.
        assert_eq!(snap.throughput_rps, 10.0);
        assert_eq!(snap.total_cycles, 500);
        assert_eq!(snap.cycles_per_req, 50.0);
        assert_eq!(snap.energy_pj_per_req, 10.0);
    }

    #[test]
    fn queue_depth_tracks_submit_and_dequeue() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        stats.record_submit();
        stats.record_submit();
        stats.record_submit();
        stats.record_dequeue(5);
        let snap = stats.snapshot();
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.max_queue_depth, 3);
    }

    #[test]
    fn batch_histogram_and_mean() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        stats.record_batch(1, 0, CloseReason::Deadline);
        stats.record_batch(4, 10, CloseReason::Size);
        stats.record_batch(4, 20, CloseReason::Size);
        let snap = stats.snapshot();
        assert_eq!(snap.batch_hist, vec![(1, 1), (4, 2)]);
        assert!((snap.mean_batch - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hw_rps_uses_the_busiest_worker() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 2);
        stats.record_done(0, 10, 1_000, 0.0);
        stats.record_done(1, 10, 3_000, 0.0);
        let snap = stats.snapshot();
        assert_eq!(snap.makespan_cycles(), 3_000);
        // 2 requests / (3000 cycles / 1 GHz) = 2 / 3 µs.
        let rps = snap.hw_rps(1.0);
        assert!((rps - 2.0 / 3e-6).abs() / rps < 1e-9);
    }

    #[test]
    fn zero_cycle_engine_completions_stay_out_of_hw_accounting() {
        // Regression: engine-lane requests (ExecBackend::Sparse/Dense)
        // complete with cycles == 0. They used to be counted in the
        // cycles_per_req / hw_rps denominators, diluting the hardware
        // throughput figures whenever engine and simulator traffic
        // mixed.
        let clock = Arc::new(ManualClock::new(0));
        let stats = ServeStats::new(clock.clone(), 1);
        stats.record_done(0, 10, 2_000, 100.0); // simulator-backed
        stats.record_done(0, 10, 4_000, 200.0); // simulator-backed
        stats.record_done(0, 10, 0, 0.0); // engine lane, no hw model
        stats.record_done(0, 10, 0, 0.0); // engine lane, no hw model
        clock.advance(1_000_000);
        let snap = stats.snapshot();
        // Wall-clock throughput still counts every completion...
        assert_eq!(snap.completed, 4);
        assert_eq!(snap.throughput_rps, 4.0);
        // ...but the hardware figures only average hw-modeled requests.
        assert_eq!(snap.hw_completed, 2);
        assert_eq!(snap.cycles_per_req, 3_000.0);
        assert_eq!(snap.energy_pj_per_req, 150.0);
        // hw_rps: 2 hw requests over a 6000-cycle makespan at 1 GHz.
        let rps = snap.hw_rps(1.0);
        assert!((rps - 2.0 * 1e9 / 6_000.0).abs() / rps < 1e-9);
    }

    #[test]
    fn all_engine_traffic_yields_zero_hw_figures() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        stats.record_done(0, 10, 0, 0.0);
        stats.record_done(0, 10, 0, 0.0);
        let snap = stats.snapshot();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.hw_completed, 0);
        assert_eq!(snap.cycles_per_req, 0.0);
        assert_eq!(snap.hw_rps(1.0), 0.0);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let stats = ServeStats::new(Arc::new(ManualClock::new(0)), 1);
        let snap = stats.snapshot();
        assert_eq!(snap.p50_us, 0);
        assert_eq!(snap.throughput_rps, 0.0);
        assert_eq!(snap.mean_batch, 0.0);
        assert_eq!(snap.hw_rps(1.0), 0.0);
        assert!(snap.render().contains("requests"));
    }

    #[test]
    fn recorder_sees_every_event_the_snapshot_sees() {
        let registry = Arc::new(Registry::new());
        let clock = Arc::new(ManualClock::new(0));
        let stats = ServeStats::with_recorder(clock, 2, registry.clone(), 8);
        stats.record_submit();
        stats.record_submit();
        stats.record_reject();
        stats.record_dequeue(40);
        stats.record_dequeue(60);
        stats.record_batch(2, 60, CloseReason::Size);
        stats.record_done(0, 500, 1_000, 12.6);
        stats.record_done(1, 700, 3_000, 7.4);
        stats.record_failure();
        let snap = stats.snapshot();

        let counter = |name| registry.find_counter(name, &[]).unwrap().get();
        assert_eq!(counter("serve_requests_submitted_total"), snap.submitted);
        assert_eq!(counter("serve_requests_rejected_total"), snap.rejected);
        assert_eq!(counter("serve_requests_completed_total"), snap.completed);
        assert_eq!(counter("serve_requests_failed_total"), snap.failed);
        assert_eq!(counter("serve_energy_pj_total"), 13 + 7);

        let depth = registry.find_gauge("serve_queue_depth", &[]).unwrap();
        assert_eq!(depth.get() as usize, snap.queue_depth);
        assert_eq!(depth.max() as usize, snap.max_queue_depth);

        let wait = registry.find_histogram("serve_queue_wait_us", &[]).unwrap();
        assert_eq!(wait.count(), 2);
        assert_eq!(wait.sum(), 100);

        let size = registry.find_histogram("serve_batch_size", &[]).unwrap();
        assert_eq!(size.count(), 1);
        assert_eq!(size.sum(), 2);
        let by_size = registry
            .find_counter("serve_batch_close_total", &[("reason", "size")])
            .unwrap();
        assert_eq!(by_size.get(), 1);

        let busy0 = registry
            .find_counter("serve_worker_busy_cycles", &[("worker", "0")])
            .unwrap();
        let busy1 = registry
            .find_counter("serve_worker_busy_cycles", &[("worker", "1")])
            .unwrap();
        assert_eq!(busy0.get(), snap.worker_busy_cycles[0]);
        assert_eq!(busy1.get(), snap.worker_busy_cycles[1]);
    }

    #[test]
    fn snapshot_and_histogram_percentiles_agree_on_bucket_bounds() {
        // Latencies placed exactly on `duration_us` bucket bounds: the
        // exact sample percentiles (snapshot) and the bucketed
        // histogram quantiles share `rank_for_quantile`, so they must
        // agree to the microsecond.
        let registry = Arc::new(Registry::new());
        let clock = Arc::new(ManualClock::new(0));
        let stats = ServeStats::with_recorder(clock, 1, registry.clone(), 8);
        let latencies = [10u64, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000];
        for l in latencies {
            stats.record_done(0, l, 1, 0.0);
        }
        let snap = stats.snapshot();
        let hist = registry
            .find_histogram("serve_request_latency_us", &[])
            .unwrap();
        assert_eq!(hist.quantile(0.50), snap.p50_us);
        assert_eq!(hist.quantile(0.95), snap.p95_us);
        assert_eq!(hist.quantile(0.99), snap.p99_us);
        assert_eq!(snap.p50_us, 200);
    }

    #[test]
    fn tenant_and_lifecycle_events_reach_snapshot_and_recorder() {
        let registry = Arc::new(Registry::new());
        let stats =
            ServeStats::with_recorder(Arc::new(ManualClock::new(0)), 1, registry.clone(), 8);
        stats.record_tenant_submit("acme");
        stats.record_tenant_submit("acme");
        stats.record_tenant_submit("beta");
        stats.record_tenant_reject("beta");
        stats.record_load(1_000);
        stats.record_load(500);
        stats.record_eviction(500);
        stats.record_unload(250);
        stats.record_canary_divergence("mlp");
        stats.record_canary_divergence("mlp");
        stats.record_canary_demotion();
        let snap = stats.snapshot();
        assert_eq!(
            snap.tenants,
            vec![("acme".to_string(), 2, 0), ("beta".to_string(), 1, 1)]
        );
        assert_eq!(snap.loaded_models, 0);
        // 1000 + 500 loaded, 500 evicted, 250 unloaded.
        assert_eq!(snap.resident_bytes, 750);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.canary_divergences, 2);
        assert_eq!(snap.canary_demotions, 1);

        let acme = registry
            .find_counter("serve_tenant_requests_total", &[("tenant", "acme")])
            .unwrap();
        assert_eq!(acme.get(), 2);
        let beta_rej = registry
            .find_counter("serve_tenant_rejected_total", &[("tenant", "beta")])
            .unwrap();
        assert_eq!(beta_rej.get(), 1);
        let div = registry
            .find_counter("serve_canary_divergences_total", &[("model", "mlp")])
            .unwrap();
        assert_eq!(div.get(), 2);
        let resident = registry.find_gauge("serve_resident_bytes", &[]).unwrap();
        assert_eq!(resident.get(), 750);
        assert_eq!(
            registry
                .find_counter("serve_model_evictions_total", &[])
                .unwrap()
                .get(),
            1
        );
    }

    #[test]
    fn hw_breakdown_and_worker_lane_accounting_reach_the_recorder() {
        let registry = Arc::new(Registry::new());
        let stats =
            ServeStats::with_recorder(Arc::new(ManualClock::new(0)), 1, registry.clone(), 8);
        let sim = SimStats {
            cycles: 100,
            compute_busy_cycles: 80,
            dram_stall_cycles: 20,
            nbin_peak_bytes: 4_096,
            ..SimStats::default()
        };
        stats.record_request_hw(&sim);
        stats.record_worker_lane(0, 30, 70);
        stats.record_worker_lane(0, 10, 90);
        // Out-of-range workers are ignored, not a panic.
        stats.record_worker_lane(7, 1, 1);

        let compute = registry
            .find_histogram("serve_request_compute_cycles", &[])
            .unwrap();
        let stall = registry
            .find_histogram("serve_request_dram_stall_cycles", &[])
            .unwrap();
        assert_eq!(compute.sum() + stall.sum(), sim.cycles);
        let nbin = registry.find_gauge("serve_nbin_peak_bytes", &[]).unwrap();
        assert_eq!(nbin.max(), 4_096);
        let idle = registry
            .find_counter("serve_worker_idle_us", &[("worker", "0")])
            .unwrap();
        let busy = registry
            .find_counter("serve_worker_busy_us", &[("worker", "0")])
            .unwrap();
        assert_eq!(idle.get(), 40);
        assert_eq!(busy.get(), 160);
    }
}
