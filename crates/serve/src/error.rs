//! Typed errors for the serving runtime.
//!
//! Everything a client can observe — admission rejection, bad request
//! shape, a worker-side hardware-model failure — is a value on this
//! enum. The server never panics on the request path; worker threads
//! convert [`AccelError`]s into responses instead of unwinding.

use std::fmt;

use cs_accel::AccelError;
use cs_compress::CompressError;

/// Error raised by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a model the registry does not hold.
    UnknownModel(String),
    /// The request's input length does not match the model's input width.
    ShapeMismatch {
        /// Model the request addressed.
        model: String,
        /// Input width the model expects.
        expected: usize,
        /// Input length the request carried.
        actual: usize,
    },
    /// The bounded admission queue is full; the client should back off.
    Overloaded {
        /// Capacity that was exhausted: the global queue depth, or the
        /// tenant's quota when that is what rejected the request.
        capacity: usize,
        /// Tenant the rejected request belonged to.
        tenant: String,
    },
    /// A lifecycle operation addressed a `(model, version)` that is not
    /// resident.
    ModelNotFound {
        /// Model name.
        model: String,
        /// Version addressed.
        version: u32,
    },
    /// A lifecycle operation is inconsistent with the versions resident
    /// for the model (e.g. unloading the primary, canarying the
    /// primary, or loading a version with a different shape).
    VersionMismatch {
        /// Model name.
        model: String,
        /// Version addressed.
        version: u32,
        /// What about the version was inconsistent.
        detail: String,
    },
    /// Loading the model would exceed the resident-memory budget even
    /// after evicting everything evictable.
    RegistryFull {
        /// Model whose load was refused.
        model: String,
        /// Bytes the load needed resident.
        needed_bytes: u64,
        /// Configured budget.
        budget_bytes: u64,
    },
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The worker processing this request died before responding.
    WorkerLost,
    /// A configuration parameter is out of range.
    InvalidConfig(String),
    /// The accelerator model rejected the request.
    Accel(AccelError),
    /// Building a servable model from a network spec failed.
    Compress(CompressError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            ServeError::ShapeMismatch {
                model,
                expected,
                actual,
            } => write!(
                f,
                "model {model:?} expects {expected} inputs, request carried {actual}"
            ),
            ServeError::Overloaded { capacity, tenant } => {
                write!(
                    f,
                    "admission queue full ({capacity} slots) for tenant {tenant:?}"
                )
            }
            ServeError::ModelNotFound { model, version } => {
                write!(f, "model {model}@v{version} is not loaded")
            }
            ServeError::VersionMismatch {
                model,
                version,
                detail,
            } => write!(f, "model {model}@v{version}: {detail}"),
            ServeError::RegistryFull {
                model,
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "registry full: loading {model} needs {needed_bytes} bytes over the \
                 {budget_bytes}-byte budget"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerLost => write!(f, "worker exited before responding"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            ServeError::Accel(e) => write!(f, "accelerator error: {e}"),
            ServeError::Compress(e) => write!(f, "compression error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Accel(e) => Some(e),
            ServeError::Compress(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AccelError> for ServeError {
    fn from(e: AccelError) -> Self {
        ServeError::Accel(e)
    }
}

impl From<CompressError> for ServeError {
    fn from(e: CompressError) -> Self {
        ServeError::Compress(e)
    }
}
