//! The batched multi-worker inference server.
//!
//! Request flow:
//!
//! ```text
//! clients ──try_push──▶ tenant-fair queue ──▶ batcher thread ──▶ per-worker
//!    ▲                   (admission)           (size/deadline)      lanes
//!    │                                                          (round-robin)
//!    └──── per-request response channel ◀── worker pool ◀──────────┘
//!                                            (one Accelerator each)
//! ```
//!
//! Admission is a `try_push` on the bounded [`crate::admission`] queue:
//! a full queue (global depth or the tenant's quota) rejects with
//! [`ServeError::Overloaded`] instead of blocking the client, which is
//! the backpressure contract. The batcher drains tenants weighted-fair
//! and groups requests by the resolved model *load* (two loads of one
//! name never share a batch) under the [`BatchPolicy`]; workers execute
//! whole batches on their own [`Accelerator`] and answer each request
//! on its private channel.
//!
//! Models are live: the server may start empty and be populated through
//! [`Server::load_servable`] / [`Server::load_artifact`], with versions
//! promoted, canaried, unloaded and evicted at runtime (see
//! [`crate::lifecycle`]). A request always completes on the version it
//! was admitted against — eviction drains per-version in-flight latches
//! outside the registry lock.
//!
//! Shutdown is graceful: [`Server::shutdown`] stops admitting, drains
//! the queue through the batcher, lets workers finish in-flight batches
//! and joins every thread before returning the final stats snapshot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cs_accel::exec::Accelerator;
use cs_accel::AccelConfig;
use cs_energy::energy::energy_cambricon_s;
use cs_energy::EnergyModel;
use cs_registry::ModelArtifact;
use cs_telemetry::{NoopRecorder, Recorder};

use crate::admission::{AdmissionQueue, AdmitError, Popped};
use crate::batch::{Batch, BatchPolicy, Batcher};
use crate::clock::{Clock, MonotonicClock};
use crate::error::ServeError;
use crate::lifecycle::{
    outputs_equivalent, run_lane, CanaryReport, CanaryState, InflightGuard, LiveRegistry,
    LoadContext, LoadedModel, ModelExec, ModelStatus,
};
use crate::model::{ModelRegistry, ServableModel};
use crate::stats::{ServeSnapshot, ServeStats};

/// Which execution engine worker lanes run.
///
/// The simulator is the default and preserves the original contract:
/// cycle-accurate hardware modeling with per-request cycle and energy
/// figures. The engine backends trade the hardware model for real
/// host-native kernels from [`cs_compress::engine`]; they report
/// `cycles = 0` / `energy_pj = 0.0` and instead time every layer into
/// the `serve_layer_kernel_us{model, layer, kernel}` histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Cycle-accurate accelerator simulator (cycles + energy modeled).
    #[default]
    Simulator,
    /// Compiled block-CSR sparse engine (host-native kernels).
    Sparse,
    /// The sparse engine behind the activation gate: inputs are
    /// prescanned for all-zero blocks and the matching weight runs are
    /// skipped. Bit-identical to [`ExecBackend::Sparse`] and
    /// [`ExecBackend::Dense`] on every input; additionally reports
    /// per-layer gate hit/skip block counts through the
    /// `serve_gate_blocks_total{model, layer, outcome}` counters.
    Gated,
    /// Dense reference kernels over the decoded twin weights — the
    /// ground-truth lane the sparse engine must match bit-for-bit.
    Dense,
}

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads, each owning one simulated accelerator.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_depth: usize,
    /// Maximum requests per batch.
    pub max_batch: usize,
    /// Microseconds a partial batch waits before closing anyway.
    pub max_wait_us: u64,
    /// When true, workers sleep out each batch's simulated service time
    /// (`cycles / freq`), so wall-clock latency and saturation behave
    /// like a real multi-accelerator deployment even on few host cores.
    pub emulate_hw_time: bool,
    /// Accelerator clock in GHz (service-time emulation and the
    /// hardware-side throughput figures).
    pub freq_ghz: f64,
    /// Execution engine worker lanes run (default: the simulator).
    pub backend: ExecBackend,
    /// Identity of this serving node, stamped on every response
    /// (`"local"` for a standalone server). Cluster workers set their
    /// registered worker name here so routed responses attribute to
    /// the replica that executed them.
    pub node: String,
    /// Resident-memory budget in compact weight bytes; loading past it
    /// evicts least-recently-used non-primary versions. `0` disables
    /// eviction (unlimited residency).
    pub memory_budget_bytes: u64,
    /// Maximum queued requests per tenant; a tenant at its quota is
    /// rejected with [`ServeError::Overloaded`] even while the global
    /// queue has room. `0` disables per-tenant quotas.
    pub tenant_quota: usize,
    /// Weighted-fair dequeue weights by tenant name; unlisted tenants
    /// (including the `"default"` tenant) weigh 1.
    pub tenant_weights: Vec<(String, u32)>,
    /// Shadow-comparison divergences at which a canary auto-demotes.
    pub canary_divergence_threshold: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_batch: 8,
            max_wait_us: 200,
            emulate_hw_time: false,
            freq_ghz: 1.0,
            backend: ExecBackend::Simulator,
            node: "local".to_string(),
            memory_budget_bytes: 0,
            tenant_quota: 0,
            tenant_weights: Vec::new(),
            canary_divergence_threshold: 1,
        }
    }
}

impl ServeConfig {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "workers must be at least 1".to_string(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_depth must be at least 1".to_string(),
            ));
        }
        if !self.freq_ghz.is_finite() || self.freq_ghz <= 0.0 {
            return Err(ServeError::InvalidConfig(format!(
                "freq_ghz must be finite and positive, got {}",
                self.freq_ghz
            )));
        }
        if let Some((tenant, _)) = self.tenant_weights.iter().find(|(_, w)| *w == 0) {
            return Err(ServeError::InvalidConfig(format!(
                "tenant weight for {tenant:?} must be at least 1"
            )));
        }
        if self.canary_divergence_threshold == 0 {
            return Err(ServeError::InvalidConfig(
                "canary_divergence_threshold must be at least 1".to_string(),
            ));
        }
        self.policy().validate()
    }

    fn policy(&self) -> BatchPolicy {
        BatchPolicy {
            max_batch: self.max_batch,
            max_wait_us: self.max_wait_us,
        }
    }
}

/// One inference request: a model name, its input vector, and the
/// tenant it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Registry name of the model to run.
    pub model: String,
    /// Input activations (length must equal the model's input width).
    pub input: Vec<f32>,
    /// Tenant this request belongs to; empty means the `"default"`
    /// tenant. Admission quotas, fair dequeue and the per-tenant
    /// telemetry key on this.
    pub tenant: String,
}

impl InferRequest {
    /// Convenience constructor (default tenant).
    pub fn new(model: impl Into<String>, input: Vec<f32>) -> Self {
        InferRequest {
            model: model.into(),
            input,
            tenant: String::new(),
        }
    }

    /// Attributes the request to a tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// The tenant label admission accounts this request under
    /// (`"default"` when none was set).
    pub fn tenant_label(&self) -> &str {
        if self.tenant.is_empty() {
            "default"
        } else {
            &self.tenant
        }
    }
}

/// One completed inference with its simulated hardware cost.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Model that produced the outputs.
    pub model: String,
    /// Output neuron values (post-activation) of the final layer.
    pub outputs: Vec<f32>,
    /// Simulated accelerator cycles this request consumed.
    pub cycles: u64,
    /// Simulated energy this request consumed (picojoules).
    pub energy_pj: f64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// Worker (accelerator) that executed it.
    pub worker: usize,
    /// End-to-end latency on the server's clock (µs).
    pub latency_us: u64,
    /// Identity of the serving node that executed the request (from
    /// [`ServeConfig::node`]).
    pub node: String,
}

/// A queued request: the resolved model load (pinned by an in-flight
/// guard, so eviction waits for it), the optional canary shadow,
/// input, admission timestamp and the private response channel.
struct Job {
    loaded: Arc<LoadedModel>,
    /// When this request was routed to a canary: the primary to
    /// shadow-compare against and the shared canary state to score.
    shadow: Option<(Arc<LoadedModel>, Arc<CanaryState>)>,
    input: Vec<f32>,
    submit_us: u64,
    reply: SyncSender<Result<InferResponse, ServeError>>,
    /// In-flight registrations (target, plus the shadow primary when
    /// canaried); released when the job is dropped after its reply.
    _guards: Vec<InflightGuard>,
}

/// Handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<InferResponse, ServeError>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the worker-side error for this request, or
    /// [`ServeError::WorkerLost`] if the worker died before answering.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(ServeError::WorkerLost),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<InferResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }

    /// Blocks up to `timeout` for the response; `None` if it has not
    /// arrived yet. Unlike [`Ticket::wait`] the ticket stays usable, so
    /// a completion pump can interleave deadline waits with shutdown
    /// checks instead of parking forever on one request.
    pub fn wait_deadline(
        &self,
        timeout: std::time::Duration,
    ) -> Option<Result<InferResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

/// Counts live worker threads; [`DrainHandle::shutdown_and_drain`]
/// blocks on it until every in-flight batch has been answered.
#[derive(Debug)]
struct WorkerLatch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl WorkerLatch {
    fn new(count: usize) -> Self {
        WorkerLatch {
            remaining: Mutex::new(count),
            zero: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self
            .remaining
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *remaining > 0 {
            remaining = self
                .zero
                .wait(remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// A cloneable handle that can shut the server down from any thread.
///
/// [`Server::shutdown`] consumes the owning handle, which a component
/// embedding the server (e.g. a network frontend reacting to a control
/// frame on a connection thread) cannot do. A `DrainHandle` performs
/// the same graceful sequence — stop admitting, drain the queue, wait
/// for workers to answer every in-flight request — without ownership;
/// the final [`Server::shutdown`] (or drop) then merely joins the
/// already-exited threads.
#[derive(Clone)]
pub struct DrainHandle {
    shutting_down: Arc<AtomicBool>,
    queue: Arc<AdmissionQueue<Job>>,
    latch: Arc<WorkerLatch>,
}

impl std::fmt::Debug for DrainHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrainHandle")
            .field("shutting_down", &self.is_shutting_down())
            .finish_non_exhaustive()
    }
}

impl DrainHandle {
    /// Stops admission, drains queued work through the batcher, and
    /// blocks until every worker thread has answered its in-flight
    /// batches and exited. Idempotent: concurrent calls all return
    /// once the drain completes.
    pub fn shutdown_and_drain(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Closing the queue lets buffered jobs drain through the
        // batcher, which then observes Closed, flushes, and drops the
        // dispatch lanes — stopping the workers after their in-flight
        // batches.
        self.queue.close();
        self.latch.wait();
    }

    /// Whether a shutdown (from any handle) has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }
}

/// The running server. Shareable across client threads by reference;
/// dropped or [`Server::shutdown`] joins all internal threads.
pub struct Server {
    live: Arc<LiveRegistry>,
    cfg: ServeConfig,
    stats: Arc<ServeStats>,
    recorder: Arc<dyn Recorder>,
    queue: Arc<AdmissionQueue<Job>>,
    shutting_down: Arc<AtomicBool>,
    latch: Arc<WorkerLatch>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("models", &self.live.names())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the server on the wall clock, preloading every model of
    /// `registry` as version 1. The registry may be empty: models can
    /// be hot-loaded later through [`Server::load_servable`].
    ///
    /// # Errors
    ///
    /// Rejects invalid configs and models that fail validation.
    pub fn start(registry: ModelRegistry, cfg: ServeConfig) -> Result<Server, ServeError> {
        Server::start_with_clock(registry, cfg, Arc::new(MonotonicClock::new()))
    }

    /// Starts the server with an injected clock (tests use
    /// [`crate::clock::ManualClock`] to pin latency figures).
    ///
    /// # Errors
    ///
    /// Rejects invalid configs and models that fail validation.
    pub fn start_with_clock(
        registry: ModelRegistry,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Server, ServeError> {
        Server::start_with_recorder(registry, cfg, clock, Arc::new(NoopRecorder))
    }

    /// Starts the server with an injected clock and telemetry recorder.
    /// Every request-path event (admission, queue wait, batch close,
    /// worker busy/idle, per-request hardware breakdown, model
    /// lifecycle) registers and feeds metrics on `recorder`; pass a
    /// [`cs_telemetry::Registry`] and read them back via
    /// [`Server::metrics_text`] / [`Server::metrics_jsonl`].
    ///
    /// # Errors
    ///
    /// Rejects invalid configs and models that fail validation.
    pub fn start_with_recorder(
        registry: ModelRegistry,
        cfg: ServeConfig,
        clock: Arc<dyn Clock>,
        recorder: Arc<dyn Recorder>,
    ) -> Result<Server, ServeError> {
        cfg.validate()?;
        let stats = Arc::new(ServeStats::with_recorder(
            Arc::clone(&clock),
            cfg.workers,
            Arc::clone(&recorder),
            cfg.max_batch,
        ));
        let live = Arc::new(LiveRegistry::new(cfg.memory_budget_bytes));
        let shutting_down = Arc::new(AtomicBool::new(false));
        let latch = Arc::new(WorkerLatch::new(cfg.workers));
        let queue = Arc::new(AdmissionQueue::new(
            cfg.queue_depth,
            cfg.tenant_quota,
            &cfg.tenant_weights,
        ));

        // One bounded dispatch lane per worker, filled round-robin by
        // the batcher. Deterministic assignment keeps the accelerators
        // evenly loaded regardless of how the host schedules threads
        // (this simulator often runs on a single core, where a shared
        // work-stealing queue would let one worker starve the rest).
        let mut batch_txs = Vec::with_capacity(cfg.workers);
        let mut threads = Vec::with_capacity(cfg.workers + 1);
        let mut worker_rxs = Vec::with_capacity(cfg.workers);
        for _ in 0..cfg.workers {
            let (tx, rx) = mpsc::sync_channel::<Batch<Job>>(1);
            batch_txs.push(tx);
            worker_rxs.push(rx);
        }
        threads.push(Server::spawn_batcher(
            Arc::clone(&queue),
            batch_txs,
            cfg.policy(),
            Arc::clone(&stats),
        ));
        for (worker_id, rx) in worker_rxs.into_iter().enumerate() {
            threads.push(Server::spawn_worker(
                worker_id,
                rx,
                &cfg,
                Arc::clone(&stats),
                Arc::clone(&clock),
                Arc::clone(&latch),
            ));
        }

        let server = Server {
            live,
            cfg,
            stats,
            recorder,
            queue,
            shutting_down,
            latch,
            threads,
        };
        for model in registry.models() {
            server.load_servable((**model).clone(), 1, 0)?;
        }
        Ok(server)
    }

    fn spawn_batcher(
        queue: Arc<AdmissionQueue<Job>>,
        batch_txs: Vec<SyncSender<Batch<Job>>>,
        policy: BatchPolicy,
        stats: Arc<ServeStats>,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("cs-serve-batcher".to_string())
            .spawn(move || {
                let mut batcher: Batcher<Job> = Batcher::new(policy);
                let mut next_worker = 0usize;
                let mut dispatch = |batch: Batch<Job>| {
                    let now = stats.now_us();
                    stats.record_batch(
                        batch.items.len(),
                        now.saturating_sub(batch.opened_us),
                        batch.reason,
                    );
                    for job in &batch.items {
                        stats.record_dequeue(now.saturating_sub(job.submit_us));
                    }
                    // Round-robin assignment; a send error means that
                    // worker is gone, so its jobs are dropped and the
                    // clients observe WorkerLost.
                    let _ = batch_txs[next_worker % batch_txs.len()].send(batch);
                    next_worker = next_worker.wrapping_add(1);
                };
                loop {
                    // Wait until the open batch's deadline (or idle
                    // indefinitely when nothing is pending). Deadlines
                    // advance on the injected clock but `pop_timeout`
                    // parks in wall time, so while a batch is open the
                    // park is capped at 1 ms: on an otherwise idle
                    // server the batcher keeps re-reading the clock and
                    // a lone request closes within `max_wait_us` plus
                    // one cap instead of sleeping until the next
                    // arrival.
                    let wait = match batcher.deadline_us() {
                        Some(d) => {
                            let remaining = d.saturating_sub(stats.now_us());
                            Duration::from_micros(remaining.clamp(1, 1_000))
                        }
                        None => Duration::from_secs(3600),
                    };
                    match queue.pop_timeout(wait) {
                        Popped::Item(job) => {
                            let now = stats.now_us();
                            // Batches key on the load's slot, not the
                            // model name: two loads of one name (e.g.
                            // across an evict and re-load, or a canary
                            // vs its primary) never share a batch.
                            for batch in batcher.offer(job.loaded.slot, job, now) {
                                dispatch(batch);
                            }
                            // The deadline may already have passed while
                            // the queue was busy.
                            if let Some(batch) = batcher.poll(stats.now_us()) {
                                dispatch(batch);
                            }
                        }
                        Popped::TimedOut => {
                            if let Some(batch) = batcher.poll(stats.now_us()) {
                                dispatch(batch);
                            }
                        }
                        Popped::Closed => {
                            // Shutdown: the queue is closed and fully
                            // drained — flush.
                            if let Some(batch) = batcher.flush() {
                                dispatch(batch);
                            }
                            break;
                        }
                    }
                }
            })
            .unwrap_or_else(|e| panic!("spawning batcher thread failed: {e}"))
    }

    fn spawn_worker(
        worker_id: usize,
        batch_rx: Receiver<Batch<Job>>,
        cfg: &ServeConfig,
        stats: Arc<ServeStats>,
        clock: Arc<dyn Clock>,
        latch: Arc<WorkerLatch>,
    ) -> JoinHandle<()> {
        // Each worker owns its accelerator; the executors themselves
        // ride in on every job (built once at load time, shared via
        // Arc), so the hot path never touches the registry lock.
        let accel = Accelerator::new(AccelConfig {
            freq_ghz: cfg.freq_ghz,
            ..AccelConfig::paper_default()
        });
        let energy_model = EnergyModel::default_65nm();
        let emulate = cfg.emulate_hw_time;
        let freq_ghz = cfg.freq_ghz;
        let node = cfg.node.clone();
        // Releases the latch even if the worker unwinds, so a drain
        // never deadlocks on a dead thread.
        struct LatchGuard(Arc<WorkerLatch>);
        impl Drop for LatchGuard {
            fn drop(&mut self) {
                self.0.count_down();
            }
        }
        std::thread::Builder::new()
            .name(format!("cs-serve-worker-{worker_id}"))
            .spawn(move || {
                let _latch_guard = LatchGuard(latch);
                // Lane accounting: time between batches is idle, time
                // spent executing one is busy; both accumulate into
                // the per-worker telemetry counters.
                let mut lane_mark = stats.now_us();
                loop {
                    let batch = match batch_rx.recv() {
                        Ok(batch) => batch,
                        Err(_) => break,
                    };
                    let busy_from = stats.now_us();
                    let batch_size = batch.items.len();
                    let mut results = Vec::with_capacity(batch_size);
                    let mut batch_cycles = 0u64;
                    for job in batch.items {
                        let outcome = match &job.loaded.exec {
                            ModelExec::Sim(layers) => match accel.run_network(layers, &job.input) {
                                Ok(run) => {
                                    let cycles = run.stats.cycles;
                                    let energy_pj =
                                        energy_cambricon_s(&run.stats, &energy_model).total_pj();
                                    batch_cycles += cycles;
                                    stats.record_request_hw(&run.stats);
                                    Ok((run.outputs, cycles, energy_pj))
                                }
                                Err(e) => Err(ServeError::Accel(e)),
                            },
                            ModelExec::Lane(lane, telemetry) => {
                                // Engine lanes run real host kernels: no
                                // simulated hardware cost to report, but
                                // every layer's wall time lands in its
                                // `serve_layer_kernel_us` histogram.
                                run_lane(lane, telemetry, &clock, &job.input)
                                    .map(|outputs| (outputs, 0u64, 0.0f64))
                            }
                        };
                        if let Ok((outputs, _, _)) = &outcome {
                            shadow_compare(&job, outputs, &accel, &stats);
                        }
                        results.push((job, outcome));
                    }
                    if emulate && batch_cycles > 0 {
                        // One accelerator serves the whole batch
                        // serially: sleep out its simulated busy time so
                        // wall-clock behaviour matches the modeled
                        // hardware.
                        let ns = batch_cycles as f64 / freq_ghz;
                        std::thread::sleep(Duration::from_nanos(ns as u64));
                    }
                    let done_us = stats.now_us();
                    stats.record_worker_lane(
                        worker_id,
                        busy_from.saturating_sub(lane_mark),
                        done_us.saturating_sub(busy_from),
                    );
                    lane_mark = done_us;
                    for (job, result) in results {
                        match result {
                            Ok((outputs, cycles, energy_pj)) => {
                                let latency_us = done_us.saturating_sub(job.submit_us);
                                stats.record_done(worker_id, latency_us, cycles, energy_pj);
                                // The client may have dropped its ticket;
                                // that is its prerogative, not an error.
                                let _ = job.reply.send(Ok(InferResponse {
                                    model: job.loaded.model.name.clone(),
                                    outputs,
                                    cycles,
                                    energy_pj,
                                    batch_size,
                                    worker: worker_id,
                                    latency_us,
                                    node: node.clone(),
                                }));
                            }
                            Err(e) => {
                                stats.record_failure();
                                let _ = job.reply.send(Err(e));
                            }
                        }
                        // The job (and its in-flight guards) drops here,
                        // after the reply — eviction drains observe the
                        // response as already sent.
                    }
                }
            })
            .unwrap_or_else(|e| panic!("spawning worker thread failed: {e}"))
    }

    /// Submits a request without blocking on execution; the returned
    /// [`Ticket`] resolves to the response.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] / [`ServeError::ShapeMismatch`] for
    /// malformed requests, [`ServeError::Overloaded`] when the queue
    /// (or the tenant's quota) is full, [`ServeError::ShuttingDown`]
    /// after shutdown began.
    pub fn submit(&self, req: InferRequest) -> Result<Ticket, ServeError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let tenant = req.tenant_label().to_string();
        let resolved = self
            .live
            .resolve(&req.model)
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        if req.input.len() != resolved.target.model.n_in {
            return Err(ServeError::ShapeMismatch {
                model: req.model,
                expected: resolved.target.model.n_in,
                actual: req.input.len(),
            });
        }
        let now = self.stats.now_us();
        let target = Arc::clone(&resolved.target);
        target.last_used_us.store(now, Ordering::SeqCst);
        // In-flight guards pin the target (and, for canaried requests,
        // the shadow primary) against eviction until the reply is sent.
        let mut guards = vec![target.inflight.acquire()];
        if let Some((primary, _)) = &resolved.shadow {
            guards.push(primary.inflight.acquire());
        }
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job {
            loaded: resolved.target,
            shadow: resolved.shadow,
            input: req.input,
            submit_us: now,
            reply: reply_tx,
            _guards: guards,
        };
        match self.queue.try_push(&tenant, job) {
            Ok(()) => {
                self.stats.record_submit();
                self.stats.record_tenant_submit(&tenant);
                target.requests.inc();
                Ok(Ticket { rx: reply_rx })
            }
            Err(AdmitError::Full { tenant_quota }) => {
                self.stats.record_reject();
                self.stats.record_tenant_reject(&tenant);
                Err(ServeError::Overloaded {
                    capacity: if tenant_quota {
                        self.cfg.tenant_quota
                    } else {
                        self.cfg.queue_depth
                    },
                    tenant,
                })
            }
            Err(AdmitError::Closed) => Err(ServeError::ShuttingDown),
        }
    }

    /// Synchronous inference: submit and wait.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::submit`] plus worker-side errors.
    pub fn infer(&self, req: InferRequest) -> Result<InferResponse, ServeError> {
        self.submit(req)?.wait()
    }

    fn load_ctx(&self) -> LoadContext<'_> {
        LoadContext {
            backend: self.cfg.backend,
            recorder: self.recorder.as_ref(),
            stats: &self.stats,
            canary_threshold: self.cfg.canary_divergence_threshold,
        }
    }

    /// Loads (or promotes) `model` as `version`.
    ///
    /// With `canary_pct == 0` the version becomes the primary its name
    /// serves. With `canary_pct` in `1..=100` the version becomes the
    /// name's canary: that percentage of traffic is routed to it, every
    /// routed request is shadow-compared against the primary, and
    /// crossing [`ServeConfig::canary_divergence_threshold`] divergences
    /// auto-demotes it. Re-loading an already-resident version only
    /// repoints routing. Loading past
    /// [`ServeConfig::memory_budget_bytes`] evicts least-recently-used
    /// non-primary versions, draining each victim's in-flight requests
    /// before its memory is considered reclaimed.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a bad percentage or a model
    /// failing validation, [`ServeError::VersionMismatch`] for shape
    /// or promotion inconsistencies, [`ServeError::RegistryFull`] when
    /// the budget cannot fit the load even after eviction.
    pub fn load_servable(
        &self,
        model: ServableModel,
        version: u32,
        canary_pct: u8,
    ) -> Result<(), ServeError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        self.live.load(model, version, canary_pct, &self.load_ctx())
    }

    /// Loads a compressed model artifact from a `CSMR` registry
    /// container (see [`cs_registry`]) — the hot-load path a
    /// `LoadModel` control frame takes. Same semantics as
    /// [`Server::load_servable`], with the version taken from the
    /// artifact.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::load_servable`].
    pub fn load_artifact(
        &self,
        artifact: &ModelArtifact,
        canary_pct: u8,
    ) -> Result<(), ServeError> {
        let model = ServableModel::from_layers(artifact.name.clone(), artifact.layers.clone())?;
        self.load_servable(model, artifact.version, canary_pct)
    }

    /// Unloads one resident version after its in-flight requests drain.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] when the version is not resident;
    /// [`ServeError::VersionMismatch`] when it is the primary and other
    /// versions still depend on it.
    pub fn unload_model(&self, name: &str, version: u32) -> Result<(), ServeError> {
        self.live.unload(name, version, &self.stats)
    }

    /// Every resident `(model, version)` with its routing role, sorted
    /// by name then version.
    pub fn list_models(&self) -> Vec<ModelStatus> {
        self.live.list()
    }

    /// Canary progress for `name`, if an experiment exists (live or
    /// demoted).
    pub fn canary_report(&self, name: &str) -> Option<CanaryReport> {
        self.live.canary_report(name)
    }

    /// The primary version's model for `name` (shape probes, conformance
    /// references).
    pub fn lookup(&self, name: &str) -> Option<Arc<ServableModel>> {
        self.live.lookup(name)
    }

    /// Sorted resident model names.
    pub fn model_names(&self) -> Vec<String> {
        self.live.names()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ServeSnapshot {
        self.stats.snapshot()
    }

    /// Prometheus text-format dump of the server's telemetry — the
    /// `/metrics`-page equivalent. `None` when the server was started
    /// without a retaining recorder (the no-op default).
    pub fn metrics_text(&self) -> Option<String> {
        self.recorder.prometheus_text()
    }

    /// JSONL dump of the server's telemetry (one series per line).
    /// `None` when the server was started without a retaining recorder.
    pub fn metrics_jsonl(&self) -> Option<String> {
        self.recorder.jsonl()
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// A cloneable handle that can gracefully shut this server down
    /// from any thread (see [`DrainHandle`]). The owning handle keeps
    /// working afterwards: [`Server::shutdown`] returns the final
    /// snapshot once the drain (wherever it was initiated) completes.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            shutting_down: Arc::clone(&self.shutting_down),
            queue: Arc::clone(&self.queue),
            latch: Arc::clone(&self.latch),
        }
    }

    /// Stops admitting, drains in-flight work, joins all threads and
    /// returns the final snapshot.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.stop_and_join();
        self.stats.snapshot()
    }

    fn stop_and_join(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Closing the queue drains buffered jobs through the batcher,
        // which then drops the dispatch lanes, stopping the workers
        // after in-flight batches.
        self.queue.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Scores one canary-routed request: re-runs the input on the shadow
/// primary and compares outputs under the differential rule. A
/// divergence (or a primary-side failure) increments the canary's
/// counter; crossing the threshold demotes it exactly once.
fn shadow_compare(job: &Job, outputs: &[f32], accel: &Accelerator, stats: &ServeStats) {
    let Some((primary, state)) = &job.shadow else {
        return;
    };
    if state.demoted.load(Ordering::SeqCst) {
        return;
    }
    let reference: Result<Vec<f32>, ServeError> = match &primary.exec {
        ModelExec::Sim(layers) => accel
            .run_network(layers, &job.input)
            .map(|run| run.outputs)
            .map_err(ServeError::Accel),
        // `forward` (not the telemetry path): shadow runs must not
        // pollute the primary's kernel histograms.
        ModelExec::Lane(lane, _) => lane.forward(&job.input),
    };
    let diverged = match &reference {
        Ok(expected) => !outputs_equivalent(outputs, expected),
        Err(_) => true,
    };
    if diverged {
        let seen = state.divergences.fetch_add(1, Ordering::SeqCst) + 1;
        stats.record_canary_divergence(&job.loaded.model.name);
        if seen >= state.threshold && !state.demoted.swap(true, Ordering::SeqCst) {
            stats.record_canary_demotion();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ServableModel;
    use cs_nn::spec::Scale;

    fn mlp_registry() -> (ModelRegistry, ServableModel) {
        let model = ServableModel::mlp(Scale::Reduced(8), 7).expect("mlp compiles");
        let mut reg = ModelRegistry::new();
        reg.register(model.clone()).expect("register");
        (reg, model)
    }

    fn input_for(model: &ServableModel, salt: u32) -> Vec<f32> {
        (0..model.n_in)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                if v.is_multiple_of(3) {
                    0.0
                } else {
                    (v % 17) as f32 * 0.07 - 0.5
                }
            })
            .collect()
    }

    #[test]
    fn serves_a_request_and_matches_direct_execution() {
        let (reg, model) = mlp_registry();
        let server = Server::start(reg, ServeConfig::default()).expect("start");
        let input = input_for(&model, 1);
        let resp = server
            .infer(InferRequest::new("mlp", input.clone()))
            .expect("infer");
        let accel = Accelerator::new(AccelConfig::paper_default());
        let direct = accel
            .run_network(&model.shared_layers(), &input)
            .expect("direct");
        assert_eq!(resp.outputs, direct.outputs);
        assert_eq!(resp.cycles, direct.stats.cycles);
        assert!(resp.energy_pj > 0.0);
        let snap = server.shutdown();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn unknown_model_and_bad_shape_are_rejected_at_admission() {
        let (reg, model) = mlp_registry();
        let server = Server::start(reg, ServeConfig::default()).expect("start");
        assert!(matches!(
            server.submit(InferRequest::new("nope", vec![0.0; model.n_in])),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(matches!(
            server.submit(InferRequest::new("mlp", vec![0.0; 3])),
            Err(ServeError::ShapeMismatch { expected, actual: 3, .. })
                if expected == model.n_in
        ));
        let snap = server.shutdown();
        assert_eq!(snap.submitted, 0);
    }

    #[test]
    fn batches_respect_max_batch_and_answer_every_ticket() {
        let (reg, model) = mlp_registry();
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_wait_us: 5_000,
            ..ServeConfig::default()
        };
        let server = Server::start(reg, cfg).expect("start");
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                server
                    .submit(InferRequest::new("mlp", input_for(&model, i)))
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            let resp = t.wait().expect("response");
            assert!(resp.batch_size >= 1 && resp.batch_size <= 4);
            assert_eq!(resp.outputs.len(), model.n_out);
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 8);
        assert!(snap.batch_hist.iter().all(|(size, _)| *size <= 4));
    }

    #[test]
    fn submit_after_shutdown_reports_shutting_down() {
        let (reg, model) = mlp_registry();
        let server = Server::start(reg, ServeConfig::default()).expect("start");
        let n_in = model.n_in;
        let snap = server.shutdown();
        assert_eq!(snap.completed, 0);
        // A fresh server is needed for further traffic; the old handle
        // is consumed. Start another to prove restartability.
        let (reg2, _) = mlp_registry();
        let server2 = Server::start(reg2, ServeConfig::default()).expect("restart");
        assert!(server2
            .infer(InferRequest::new("mlp", vec![0.1; n_in]))
            .is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let (reg, _) = mlp_registry();
        for cfg in [
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                freq_ghz: 0.0,
                ..ServeConfig::default()
            },
            ServeConfig {
                tenant_weights: vec![("acme".to_string(), 0)],
                ..ServeConfig::default()
            },
            ServeConfig {
                canary_divergence_threshold: 0,
                ..ServeConfig::default()
            },
        ] {
            let (reg_fresh, _) = mlp_registry();
            assert!(Server::start(reg_fresh, cfg).is_err());
        }
        assert!(Server::start(reg, ServeConfig::default()).is_ok());
    }

    #[test]
    fn recorder_metrics_reconcile_with_the_snapshot() {
        use crate::clock::ManualClock;
        use cs_telemetry::Registry;
        let (reg, model) = mlp_registry();
        let registry = Arc::new(Registry::new());
        let clock = Arc::new(ManualClock::new(0));
        let cfg = ServeConfig {
            workers: 2,
            max_batch: 4,
            // The manual clock never moves, so a zero deadline makes
            // every batch close promptly instead of waiting for time
            // that never passes.
            max_wait_us: 0,
            ..ServeConfig::default()
        };
        let server = Server::start_with_recorder(reg, cfg, clock, registry.clone()).expect("start");
        let tickets: Vec<Ticket> = (0..6)
            .map(|i| {
                server
                    .submit(InferRequest::new("mlp", input_for(&model, i)))
                    .expect("submit")
            })
            .collect();
        for t in tickets {
            t.wait().expect("response");
        }
        let text = server.metrics_text().expect("registry retains state");
        let jsonl = server.metrics_jsonl().expect("registry retains state");
        let snap = server.shutdown();

        let counter = |name| registry.find_counter(name, &[]).unwrap().get();
        assert_eq!(counter("serve_requests_submitted_total"), snap.submitted);
        assert_eq!(counter("serve_requests_completed_total"), snap.completed);
        assert_eq!(counter("serve_requests_failed_total"), 0);

        // The per-request hardware breakdown reconciles exactly with
        // the snapshot's cycle total: compute + DRAM stall = cycles.
        let compute = registry
            .find_histogram("serve_request_compute_cycles", &[])
            .unwrap();
        let stall = registry
            .find_histogram("serve_request_dram_stall_cycles", &[])
            .unwrap();
        assert_eq!(compute.sum() + stall.sum(), snap.total_cycles);

        // Same rank rule on both sides: quantiles agree (all-zero
        // latencies under the frozen clock make them trivially exact,
        // and the count reconciliation is the strong check).
        let lat = registry
            .find_histogram("serve_request_latency_us", &[])
            .unwrap();
        assert_eq!(lat.count(), snap.completed);
        assert_eq!(lat.quantile(0.50), snap.p50_us);
        assert_eq!(lat.quantile(0.95), snap.p95_us);
        assert_eq!(lat.quantile(0.99), snap.p99_us);

        // Batch-size histogram matches the snapshot's exactly.
        let bs = registry.find_histogram("serve_batch_size", &[]).unwrap();
        assert_eq!(
            bs.count(),
            snap.batch_hist.iter().map(|(_, n)| n).sum::<u64>()
        );
        assert_eq!(
            bs.sum(),
            snap.batch_hist
                .iter()
                .map(|(s, n)| *s as u64 * n)
                .sum::<u64>()
        );

        // Per-model lifecycle accounting: one primary resident, every
        // request attributed to it.
        assert_eq!(snap.loaded_models, 1);
        let per_model = registry
            .find_counter(
                "serve_model_requests_total",
                &[("model", "mlp"), ("version", "1")],
            )
            .expect("per-model counter registered");
        assert_eq!(per_model.get(), snap.submitted);

        assert!(text.contains("serve_requests_completed_total 6"));
        assert!(jsonl.contains("serve_request_latency_us"));
    }

    #[test]
    fn idle_batcher_closes_a_lone_request_at_the_deadline() {
        use crate::clock::ManualClock;
        use cs_telemetry::Registry;
        let (reg, model) = mlp_registry();
        let registry = Arc::new(Registry::new());
        let clock = Arc::new(ManualClock::new(0));
        // The deadline is far beyond the wall time this test runs for:
        // only the capped, deadline-aware park lets the batcher see the
        // manual clock pass it. Before the fix the batcher slept out
        // the whole remaining wait in wall time, so the lone request
        // sat until the next arrival.
        const MAX_WAIT_US: u64 = 60_000_000;
        let cfg = ServeConfig {
            workers: 1,
            max_batch: 64,
            max_wait_us: MAX_WAIT_US,
            ..ServeConfig::default()
        };
        let server =
            Server::start_with_recorder(reg, cfg, clock.clone(), registry.clone()).expect("start");
        let started = std::time::Instant::now();
        let ticket = server
            .submit(InferRequest::new("mlp", input_for(&model, 1)))
            .expect("submit");
        // Let the parked batcher pick the job up and open the batch,
        // then jump the clock just past the deadline with the queue
        // still idle.
        std::thread::sleep(Duration::from_millis(50));
        clock.advance(MAX_WAIT_US + 100);
        ticket.wait().expect("response");
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "lone request waited for the next arrival instead of its deadline"
        );
        let deadline_closes = registry
            .find_counter("serve_batch_close_total", &[("reason", "deadline")])
            .expect("close counter registered")
            .get();
        assert_eq!(deadline_closes, 1, "the batch must close on the deadline");
        // p99 queue wait stays pinned at max_wait_us plus the overshoot
        // slack the test itself introduced. With exactly one sample the
        // sum is the sample, so this reads the exact wait instead of a
        // coarse bucket bound.
        let wait = registry
            .find_histogram("serve_queue_wait_us", &[])
            .expect("wait histogram registered");
        assert_eq!(wait.count(), 1);
        assert!(
            wait.sum() <= MAX_WAIT_US + 1_000,
            "p99 queue wait {} exceeds max_wait_us {} + slack",
            wait.sum(),
            MAX_WAIT_US
        );
        server.shutdown();
    }

    #[test]
    fn engine_lanes_serve_bit_identical_outputs_across_backends() {
        let (_, model) = mlp_registry();
        let inputs: Vec<Vec<f32>> = (0..4).map(|i| input_for(&model, i)).collect();
        let run = |backend: ExecBackend| {
            let (reg, _) = mlp_registry();
            let cfg = ServeConfig {
                backend,
                workers: 1,
                ..ServeConfig::default()
            };
            let server = Server::start(reg, cfg).expect("start");
            let outs: Vec<Vec<f32>> = inputs
                .iter()
                .map(|input| {
                    let resp = server
                        .infer(InferRequest::new("mlp", input.clone()))
                        .expect("infer");
                    // Engine lanes run real kernels; there is no
                    // simulated hardware cost to report.
                    assert_eq!(resp.cycles, 0);
                    assert_eq!(resp.energy_pj, 0.0);
                    resp.outputs
                })
                .collect();
            server.shutdown();
            outs
        };
        let sparse = run(ExecBackend::Sparse);
        let gated = run(ExecBackend::Gated);
        let dense = run(ExecBackend::Dense);
        let bits = |outs: &[Vec<f32>]| {
            outs.iter()
                .flatten()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&sparse), bits(&dense));
        assert_eq!(bits(&gated), bits(&dense));
        // And both match direct lane execution outside the server.
        let direct = model.sparse_lane().forward(&inputs[0]).expect("forward");
        assert_eq!(bits(&sparse[..1]), bits(std::slice::from_ref(&direct)));
    }

    #[test]
    fn gated_backend_counts_gate_blocks_and_matches_dense_on_spikes() {
        use crate::clock::ManualClock;
        use cs_nn::data::lif_spike_train;
        use cs_nn::spec::Scale;
        use cs_telemetry::Registry;
        let model = ServableModel::spiking_mlp(Scale::Reduced(2), 7).expect("model");
        let name = model.name.clone();
        assert_eq!(name, "mlp-spiking");
        // LIF frames mix exact zeros with spike amplitudes; poison a few
        // positions so the never-skip rule is exercised end to end.
        let mut frames: Vec<Vec<f32>> = (0..3)
            .map(|i| {
                lif_spike_train(model.n_in, 20, 0.25, 11 + i)
                    .as_slice()
                    .to_vec()
            })
            .collect();
        frames[1][0] = -0.0;
        frames[2][0] = f32::NAN;
        frames[2][1] = f32::INFINITY;
        let mut reg = ModelRegistry::new();
        reg.register(model.clone()).expect("register");
        let registry = Arc::new(Registry::new());
        let clock = Arc::new(ManualClock::new(0));
        let cfg = ServeConfig {
            backend: ExecBackend::Gated,
            workers: 1,
            max_wait_us: 0,
            ..ServeConfig::default()
        };
        let server = Server::start_with_recorder(reg, cfg, clock, registry.clone()).expect("start");
        let sparse = model.sparse_lane();
        let dense = model.dense_lane();
        for (i, frame) in frames.iter().enumerate() {
            let resp = server
                .infer(InferRequest::new(&name, frame.clone()))
                .expect("infer");
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            // The gate never changes what the sparse engine computes.
            let want = sparse.forward(frame).expect("sparse forward");
            assert_eq!(bits(&resp.outputs), bits(&want), "frame {i} vs sparse");
            if frame.iter().all(|v| v.is_finite()) {
                // On finite inputs (exact zeros and -0.0 included) the
                // dense twin agrees bit-for-bit too. NaN/inf frames are
                // excluded by contract: the dense twin propagates
                // poison through pruned positions (NaN * 0.0 = NaN) the
                // sparse kernels never touch.
                let want = dense.forward(frame).expect("dense forward");
                assert_eq!(bits(&resp.outputs), bits(&want), "frame {i} vs dense");
            }
        }
        server.shutdown();
        // The gated backend registers hit/skip counters per gated layer
        // and the first layer must have skipped blocks on LIF frames.
        let gated_lane = model.gated_lane();
        let gated_layers: Vec<&str> = gated_lane
            .layers
            .iter()
            .filter(|l| l.kernel.kind() == "gated")
            .map(|l| l.name.as_str())
            .collect();
        assert!(
            !gated_layers.is_empty(),
            "benefit model gated no layer of the spiking MLP"
        );
        let mut total_skips = 0;
        for layer in &gated_layers {
            let hits = registry
                .find_counter(
                    "serve_gate_blocks_total",
                    &[("model", &name), ("layer", layer), ("outcome", "hit")],
                )
                .expect("hit counter registered");
            let skips = registry
                .find_counter(
                    "serve_gate_blocks_total",
                    &[("model", &name), ("layer", layer), ("outcome", "skip")],
                )
                .expect("skip counter registered");
            assert!(hits.get() > 0, "layer {layer} never computed a block");
            total_skips += skips.get();
        }
        assert!(total_skips > 0, "LIF frames produced no skipped blocks");
        // Histogram spans carry the gated kernel label.
        let h = registry
            .find_histogram(
                "serve_layer_kernel_us",
                &[
                    ("model", &name),
                    ("layer", gated_layers[0]),
                    ("kernel", "gated"),
                ],
            )
            .expect("gated per-layer histogram registered");
        assert_eq!(h.count(), frames.len() as u64);
    }

    #[test]
    fn structured_models_serve_with_mode_labeled_kernel_telemetry() {
        use crate::clock::ManualClock;
        use cs_nn::spec::Scale;
        use cs_sparsity::PruneMode;
        use cs_telemetry::Registry;
        for mode in [
            PruneMode::TwoFour,
            PruneMode::BankBalanced { bank: 8, k: 2 },
        ] {
            let model = ServableModel::mlp_with_mode(mode, Scale::Reduced(8), 7).expect("model");
            let name = model.name.clone();
            let mut reg = ModelRegistry::new();
            reg.register(model.clone()).expect("register");
            let registry = Arc::new(Registry::new());
            let clock = Arc::new(ManualClock::new(0));
            let cfg = ServeConfig {
                backend: ExecBackend::Sparse,
                workers: 1,
                max_wait_us: 0,
                ..ServeConfig::default()
            };
            let server =
                Server::start_with_recorder(reg, cfg, clock, registry.clone()).expect("start");
            let resp = server
                .infer(InferRequest::new(&name, input_for(&model, 3)))
                .expect("infer");
            assert_eq!(resp.outputs.len(), model.n_out);
            assert_eq!(resp.cycles, 0);
            server.shutdown();
            // Every layer's histogram carries the structured kernel label.
            for (format, _) in &model.layers {
                let h = registry
                    .find_histogram(
                        "serve_layer_kernel_us",
                        &[
                            ("model", &name),
                            ("layer", format.name()),
                            ("kernel", mode.name()),
                        ],
                    )
                    .expect("structured per-layer histogram registered");
                assert_eq!(h.count(), 1);
            }
        }
    }

    #[test]
    fn engine_lane_populates_per_layer_kernel_histograms() {
        use crate::clock::ManualClock;
        use cs_telemetry::Registry;
        let (reg, model) = mlp_registry();
        let registry = Arc::new(Registry::new());
        let clock = Arc::new(ManualClock::new(0));
        let cfg = ServeConfig {
            backend: ExecBackend::Sparse,
            workers: 1,
            max_wait_us: 0,
            ..ServeConfig::default()
        };
        let server = Server::start_with_recorder(reg, cfg, clock, registry.clone()).expect("start");
        for i in 0..4 {
            server
                .infer(InferRequest::new("mlp", input_for(&model, i)))
                .expect("infer");
        }
        server.shutdown();
        for (format, _) in &model.layers {
            let h = registry
                .find_histogram(
                    "serve_layer_kernel_us",
                    &[
                        ("model", "mlp"),
                        ("layer", format.name()),
                        ("kernel", "sparse"),
                    ],
                )
                .expect("per-layer histogram registered");
            assert_eq!(h.count(), 4);
        }
        // A sparse-backend server never registers dense-kernel series.
        assert!(registry
            .find_histogram(
                "serve_layer_kernel_us",
                &[
                    ("model", "mlp"),
                    ("layer", model.layers[0].0.name()),
                    ("kernel", "dense"),
                ],
            )
            .is_none());
    }

    #[test]
    fn drain_handle_shuts_down_from_another_thread() {
        let (reg, model) = mlp_registry();
        let cfg = ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait_us: 2_000,
            queue_depth: 64,
            ..ServeConfig::default()
        };
        let server = Server::start(reg, cfg).expect("start");
        let tickets: Vec<Ticket> = (0..10)
            .map(|i| {
                server
                    .submit(InferRequest::new("mlp", input_for(&model, i)))
                    .expect("submit")
            })
            .collect();
        let handle = server.drain_handle();
        assert!(!handle.is_shutting_down());
        let drainer = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.shutdown_and_drain())
        };
        drainer.join().expect("drain thread");
        assert!(handle.is_shutting_down());
        // The drain answered every in-flight request before returning.
        for t in tickets {
            t.wait().expect("in-flight request answered");
        }
        // Admission is closed from the owning handle's point of view too.
        assert!(matches!(
            server.submit(InferRequest::new("mlp", input_for(&model, 99))),
            Err(ServeError::ShuttingDown)
        ));
        // The owning handle still works and reports the final stats.
        let snap = server.shutdown();
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.failed, 0);
    }

    #[test]
    fn drain_handle_is_idempotent_across_threads() {
        let (reg, model) = mlp_registry();
        let server = Server::start(reg, ServeConfig::default()).expect("start");
        server
            .infer(InferRequest::new("mlp", input_for(&model, 0)))
            .expect("infer");
        let handle = server.drain_handle();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || h.shutdown_and_drain())
            })
            .collect();
        for t in threads {
            t.join().expect("concurrent drains all return");
        }
        let snap = server.shutdown();
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn default_server_has_no_metrics_dump() {
        let (reg, _) = mlp_registry();
        let server = Server::start(reg, ServeConfig::default()).expect("start");
        assert!(server.metrics_text().is_none());
        assert!(server.metrics_jsonl().is_none());
    }

    #[test]
    fn empty_registry_starts_and_serves_after_hot_load() {
        let server = Server::start(ModelRegistry::new(), ServeConfig::default()).expect("start");
        assert!(server.list_models().is_empty());
        let model = ServableModel::mlp(Scale::Reduced(8), 7).expect("mlp");
        let input = input_for(&model, 1);
        assert!(matches!(
            server.submit(InferRequest::new("mlp", input.clone())),
            Err(ServeError::UnknownModel(_))
        ));
        server.load_servable(model.clone(), 1, 0).expect("load");
        let resp = server
            .infer(InferRequest::new("mlp", input))
            .expect("infer after hot load");
        assert_eq!(resp.outputs.len(), model.n_out);
        let listed = server.list_models();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].name, "mlp");
        assert_eq!(listed[0].version, 1);
        assert!(listed[0].primary);
        assert!(listed[0].resident_bytes > 0);
        let snap = server.shutdown();
        assert_eq!(snap.loaded_models, 1);
        assert_eq!(snap.completed, 1);
    }

    #[test]
    fn tenant_quota_rejects_with_the_tenant_label() {
        let (reg, model) = mlp_registry();
        let cfg = ServeConfig {
            workers: 1,
            queue_depth: 64,
            tenant_quota: 2,
            // Single-request batches on a deliberately slow emulated
            // accelerator: the dispatch pipeline (one batch in the
            // worker, one buffered, one blocking the batcher) fills
            // within a few submissions, after which the tenant's lane
            // backs up and the quota must reject.
            max_batch: 1,
            emulate_hw_time: true,
            freq_ghz: 1e-3,
            ..ServeConfig::default()
        };
        let server = Server::start(reg, cfg).expect("start");
        let mut tickets = Vec::new();
        // Fill tenant "acme" to its quota. The batcher may drain some
        // jobs into an open batch, so push until a rejection arrives
        // (bounded by the quota plus the open batch).
        let mut rejected = None;
        for i in 0..200 {
            match server.submit(InferRequest::new("mlp", input_for(&model, i)).with_tenant("acme"))
            {
                Ok(t) => tickets.push(t),
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        match rejected.expect("quota eventually rejects") {
            ServeError::Overloaded { capacity, tenant } => {
                assert_eq!(capacity, 2);
                assert_eq!(tenant, "acme");
            }
            other => panic!("expected Overloaded, got {other}"),
        }
        // A different tenant still has room.
        tickets.push(
            server
                .submit(InferRequest::new("mlp", input_for(&model, 500)).with_tenant("beta"))
                .expect("other tenant admits"),
        );
        let snap = server.shutdown();
        for t in tickets {
            t.wait().expect("queued requests drain on shutdown");
        }
        let acme = snap.tenants.iter().find(|(t, _, _)| t == "acme").unwrap();
        assert_eq!(acme.2, 1, "exactly one acme rejection");
        let beta = snap.tenants.iter().find(|(t, _, _)| t == "beta").unwrap();
        assert_eq!(beta.1, 1);
        assert_eq!(beta.2, 0);
    }
}
