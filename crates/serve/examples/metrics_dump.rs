//! Runnable version of the README "Observability" snippet: start a
//! server with a retaining `Registry`, push a little traffic through
//! it, and print the Prometheus-style `/metrics` page.
//!
//! ```text
//! cargo run --release -p cs-serve --example metrics_dump
//! ```

use std::sync::Arc;

use cs_nn::spec::Scale;
use cs_serve::{
    InferRequest, ModelRegistry, MonotonicClock, Registry, ServableModel, ServeConfig, Server,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ServableModel::mlp(Scale::Reduced(8), 20181020)?;
    let n_in = model.n_in;
    let mut registry = ModelRegistry::new();
    registry.register(model)?;

    let metrics = Arc::new(Registry::new());
    let server = Server::start_with_recorder(
        registry,
        ServeConfig::default(),
        Arc::new(MonotonicClock::new()),
        metrics.clone(),
    )?;

    let tickets: Vec<_> = (0..16)
        .map(|i| server.submit(InferRequest::new("mlp", vec![0.25 * i as f32; n_in])))
        .collect::<Result<_, _>>()?;
    for t in tickets {
        t.wait()?;
    }
    let text = server
        .metrics_text()
        .expect("started with a retaining recorder");
    server.shutdown();

    print!("{text}");
    Ok(())
}
