//! Eviction-under-load and canary integration tests for the runtime
//! model lifecycle.
//!
//! The claims under test, end to end through the public [`Server`]
//! API:
//!
//! * LRU eviction under a memory budget removes exactly the
//!   least-recently-used non-primary, non-canary versions — never a
//!   primary, never a live canary — and a load that cannot fit even
//!   after eviction is rejected *before* anything is mutated.
//! * A request admitted before an eviction completes bit-identically
//!   on the version it was admitted against, and only then is the
//!   victim's memory considered reclaimed.
//! * An evicted version re-loaded from a registry artifact serves
//!   bit-identical outputs to its pre-evict self, on the Sparse and
//!   Gated lanes alike.

use std::sync::Arc;

use cs_nn::spec::Scale;
use cs_registry::{decode_model, encode_model, ModelArtifact};
use cs_serve::{
    ExecBackend, InferRequest, ManualClock, ModelRegistry, ServableModel, ServeConfig, ServeError,
    Server,
};

/// A seeded model renamed so several distinct names can share one
/// serving runtime.
fn model(name: &str, scale: usize, seed: u64) -> ServableModel {
    let mut m = ServableModel::mlp(Scale::Reduced(scale), seed).expect("build model");
    m.name = name.to_string();
    m
}

fn resident_bytes(m: &ServableModel) -> u64 {
    m.layers.iter().map(|(f, _)| f.weight_bytes() as u64).sum()
}

fn input_for(m: &ServableModel, salt: u64) -> Vec<f32> {
    (0..m.n_in)
        .map(|i| ((i as u64 * 37 + salt * 101) % 17) as f32 * 0.25 - 2.0)
        .collect()
}

#[test]
fn lru_eviction_is_ordered_by_last_use_and_spares_the_primary() {
    let one = resident_bytes(&model("m", 6, 1));
    let clock = Arc::new(ManualClock::new(1_000));
    let server = Server::start_with_clock(
        ModelRegistry::new(),
        ServeConfig {
            workers: 1,
            backend: ExecBackend::Sparse,
            memory_budget_bytes: 3 * one,
            ..ServeConfig::default()
        },
        clock.clone(),
    )
    .expect("start");

    // Three promotions of the same name at distinct clock readings:
    // v1 (t=1ms) and v2 (t=2ms) end up non-primary, v3 is primary.
    server.load_servable(model("m", 6, 1), 1, 0).expect("v1");
    clock.advance(1_000);
    server.load_servable(model("m", 6, 2), 2, 0).expect("v2");
    clock.advance(1_000);
    server.load_servable(model("m", 6, 3), 3, 0).expect("v3");
    assert_eq!(
        versions(&server, "m"),
        vec![1, 2, 3],
        "budget fits all three"
    );

    // A fourth version pushes over budget: the LRU victim is v1, the
    // oldest untouched non-primary — not v2, and never the primary v3.
    clock.advance(1_000);
    server.load_servable(model("m", 6, 4), 4, 0).expect("v4");
    assert_eq!(versions(&server, "m"), vec![2, 3, 4], "v1 evicted first");
    assert_eq!(server.stats().evictions, 1);

    // Again: now v2 is the oldest evictable.
    clock.advance(1_000);
    server.load_servable(model("m", 6, 5), 5, 0).expect("v5");
    assert_eq!(versions(&server, "m"), vec![3, 4, 5], "v2 evicted second");
    assert_eq!(server.stats().evictions, 2);
    server.shutdown();
}

#[test]
fn infeasible_load_is_rejected_before_touching_residency() {
    let one = resident_bytes(&model("m", 6, 1));
    let server = Server::start(
        ModelRegistry::new(),
        ServeConfig {
            workers: 1,
            backend: ExecBackend::Sparse,
            memory_budget_bytes: one,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    server.load_servable(model("m", 6, 1), 1, 0).expect("v1");

    // A canary pins both the primary and itself; together they exceed
    // the budget, so the load must fail closed with RegistryFull and
    // leave v1 untouched.
    let err = server
        .load_servable(model("m", 6, 2), 2, 25)
        .expect_err("canary cannot fit");
    assert!(
        matches!(err, ServeError::RegistryFull { .. }),
        "expected RegistryFull, got {err:?}"
    );
    assert_eq!(versions(&server, "m"), vec![1], "v1 still resident");
    assert_eq!(server.stats().evictions, 0);
    server.shutdown();
}

/// The drain-correctness core, parameterized over the execution lane:
/// admit a request against v1, then — while its in-flight guard pins
/// v1 — promote v2 and load a second model so the budget evicts v1.
/// The pre-evict request must complete bit-identically to a reference
/// run of v1, and re-loading v1 from its encoded registry artifact
/// must serve bit-identical outputs again.
fn evict_under_load_completes_and_reloads(backend: ExecBackend) {
    let v1 = model("m", 6, 11);
    let one = resident_bytes(&v1);
    let input = input_for(&v1, 5);

    // Reference: v1 alone on an idle server.
    let reference = {
        let server = Server::start(
            ModelRegistry::new(),
            ServeConfig {
                workers: 1,
                backend,
                ..ServeConfig::default()
            },
        )
        .expect("start reference");
        server.load_servable(v1.clone(), 1, 0).expect("load v1");
        let out = server
            .infer(InferRequest::new("m", input.clone()))
            .expect("reference infer")
            .outputs;
        server.shutdown();
        out
    };

    // Byte-exact registry round trip of v1 — the artifact the re-load
    // below serves from.
    let artifact = ModelArtifact {
        name: "m".to_string(),
        version: 1,
        layers: v1.layers.clone(),
    };
    let bytes = encode_model(&artifact).expect("encode");
    let decoded = decode_model(&bytes).expect("decode");
    assert_eq!(decoded, artifact, "registry round trip is exact");
    assert_eq!(
        encode_model(&decoded).expect("re-encode"),
        bytes,
        "encoding is canonical"
    );

    // The budget holds the three pinned primaries (v2, other, other2)
    // with headroom smaller than v1 — so the final load forces exactly
    // one eviction, and v1 is the only candidate. The deliberately
    // slow emulated accelerator keeps the admitted request in flight
    // while the loads land.
    let v2 = model("m", 6, 12);
    let other = model("other", 6, 13);
    let other2 = model("other2", 6, 14);
    let budget = resident_bytes(&v2) + resident_bytes(&other) + resident_bytes(&other2) + one / 2;
    let server = Arc::new(
        Server::start(
            ModelRegistry::new(),
            ServeConfig {
                workers: 1,
                max_batch: 1,
                backend,
                memory_budget_bytes: budget,
                emulate_hw_time: true,
                freq_ghz: 1e-3,
                ..ServeConfig::default()
            },
        )
        .expect("start"),
    );
    server.load_servable(v1.clone(), 1, 0).expect("load v1");
    let ticket = server
        .submit(InferRequest::new("m", input.clone()))
        .expect("submit against v1");

    // Promote v2 (different seed — different weights) and push the
    // budget over with an unrelated model. v1 is now the only
    // evictable version; load() returns only after v1's in-flight
    // requests drained.
    let loader = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            server.load_servable(v2, 2, 0).expect("promote v2");
            server.load_servable(other, 1, 0).expect("load other");
            server.load_servable(other2, 1, 0).expect("load other2");
        })
    };

    let response = ticket.wait().expect("pre-evict request completes");
    assert_eq!(
        bits(&response.outputs),
        bits(&reference),
        "request admitted before the eviction completed on v1, bit-identically"
    );
    loader.join().expect("loader thread");

    let snap = server.stats();
    assert_eq!(snap.evictions, 1, "exactly v1 was evicted");
    assert_eq!(versions(&server, "m"), vec![2], "only v2 remains for m");

    // Re-load v1 from the registry artifact and promote it: outputs
    // must be bit-identical to the pre-evict serving of v1.
    let reloaded =
        ServableModel::from_layers(decoded.name.clone(), decoded.layers.clone()).expect("rebuild");
    server
        .load_servable(reloaded, decoded.version, 0)
        .expect("re-load v1");
    let again = server
        .infer(InferRequest::new("m", input))
        .expect("infer on re-loaded v1");
    assert_eq!(
        bits(&again.outputs),
        bits(&reference),
        "re-loaded artifact serves bit-identical outputs"
    );
    match Arc::try_unwrap(server) {
        Ok(s) => {
            s.shutdown();
        }
        Err(_) => panic!("loader thread still holds the server"),
    }
}

#[test]
fn evict_under_load_completes_bit_identically_on_the_sparse_lane() {
    evict_under_load_completes_and_reloads(ExecBackend::Sparse);
}

#[test]
fn evict_under_load_completes_bit_identically_on_the_gated_lane() {
    evict_under_load_completes_and_reloads(ExecBackend::Gated);
}

fn versions(server: &Server, name: &str) -> Vec<u32> {
    server
        .list_models()
        .into_iter()
        .filter(|s| s.name == name)
        .map(|s| s.version)
        .collect()
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}
