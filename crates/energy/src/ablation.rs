//! Design-choice ablations from the paper's discussion section.

use crate::model::{cambricon_s_modules, AreaPower};

/// Cost delta of a design alternative relative to the shipped design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationCost {
    /// Additional area in mm² (positive = alternative is bigger).
    pub area_mm2: f64,
    /// Additional power in mW.
    pub power_mw: f64,
    /// Additional SRAM in KB.
    pub sram_kb: f64,
}

fn module(name: &str) -> AreaPower {
    cambricon_s_modules()
        .into_iter()
        .find(|m| m.name == name)
        .expect("module exists in Table VI")
}

/// Distributed NSMs (one per PE, 16 total) instead of the shared NSM:
/// the reduced irregularity is what makes sharing possible. The paper
/// reports 10.35 mm² and 1821.9 mW saved — i.e. 15 extra NSM instances.
pub fn distributed_nsm() -> AblationCost {
    let nsm = module("NSM");
    AblationCost {
        area_mm2: 15.0 * nsm.area_mm2,
        power_mw: 15.0 * nsm.power_mw,
        sram_kb: 0.0,
    }
}

/// Sixteen private SIBs instead of the shared one: 15 KB extra SRAM.
pub fn distributed_sib() -> AblationCost {
    AblationCost {
        area_mm2: 15.0 * module("SIB").area_mm2,
        power_mw: 15.0 * module("SIB").power_mw,
        sram_kb: 15.0,
    }
}

/// A WDM supporting arbitrary bit-widths instead of the 4-bit aliased
/// design: the paper measures 5.14× area and 4.27× power for the
/// flexible decoder.
pub fn flexible_wdm() -> AblationCost {
    let wdm = module("WDM");
    AblationCost {
        area_mm2: (5.14 - 1.0) * wdm.area_mm2,
        power_mw: (4.27 - 1.0) * wdm.power_mw,
        sram_kb: 0.0,
    }
}

/// On-accelerator entropy (Huffman) decoding: one sequential decoder is
/// 6.781e-3 mm²; sustaining the SBs' supply rate needs `T_m × 4` decoders
/// per PE = 1024 total, costing 6.94 mm² and 971.37 mW — which is why the
/// paper leaves entropy coding off-chip.
pub fn entropy_decoders(tn: usize, tm: usize) -> AblationCost {
    let per_decoder_mm2 = 6.781e-3;
    let count = (tn * tm * 4) as f64;
    AblationCost {
        area_mm2: per_decoder_mm2 * count,
        power_mw: 971.37 * count / 1024.0,
        sram_kb: 0.0,
    }
}

/// Relative performance gain entropy decoding would buy (paper: none in
/// conv layers, 1.18× in FC layers) — far too little for a 2.03× area and
/// 2.22× power increase.
pub fn entropy_decoding_fc_speedup() -> f64 {
    1.18
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{total_area_mm2, total_power_mw, Platform};

    #[test]
    fn distributed_nsm_matches_paper_savings() {
        let c = distributed_nsm();
        assert!((c.area_mm2 - 10.35).abs() < 0.01);
        assert!((c.power_mw - 1821.9).abs() < 0.01);
    }

    #[test]
    fn distributed_sib_adds_15kb() {
        assert_eq!(distributed_sib().sram_kb, 15.0);
    }

    #[test]
    fn entropy_decoders_match_paper_costs() {
        let c = entropy_decoders(16, 16);
        assert!((c.area_mm2 - 6.94).abs() < 0.05);
        assert!((c.power_mw - 971.37).abs() < 0.01);
        // Total chip would be ~2x bigger and hotter.
        let area_factor = (total_area_mm2(Platform::CambriconS) + c.area_mm2)
            / total_area_mm2(Platform::CambriconS);
        let power_factor = (total_power_mw(Platform::CambriconS) + c.power_mw)
            / total_power_mw(Platform::CambriconS);
        assert!((area_factor - 2.03).abs() < 0.02);
        assert!((power_factor - 2.22).abs() < 0.02);
    }

    #[test]
    fn flexible_wdm_is_much_bigger() {
        let c = flexible_wdm();
        assert!(c.area_mm2 > 6.0);
        assert!(c.power_mw > 50.0);
    }
}
