//! Activity-based energy accounting.
//!
//! Simulated activity counters are converted to picojoules with
//! per-event constants representative of TSMC 65 nm (16-bit datapath,
//! small SRAM macros) and a CACTI-class DRAM access cost. The same
//! constants apply to every accelerator, so cross-platform energy ratios
//! come purely from simulated activity — Cambricon-X pays for its per-PE
//! IM selections and 16-bit weight traffic, DianNao for dense everything.

use cs_sim::SimStats;

/// Per-event energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// SRAM access energy per byte (NBin/NBout/SB/SIB macros).
    pub pj_per_sram_byte: f64,
    /// One 16-bit multiply-accumulate.
    pub pj_per_mac: f64,
    /// One NSM neuron selection (shared module).
    pub pj_per_nsm_selection: f64,
    /// One SSM synapse selection (per-PE MUX).
    pub pj_per_ssm_selection: f64,
    /// One WDM LUT decode.
    pub pj_per_wdm_decode: f64,
    /// One Cambricon-X IM selection (per-PE fine-grained indexing —
    /// costlier than the shared NSM per the IM's 34.8% power share).
    pub pj_per_im_selection: f64,
    /// Control-processor energy per cycle (always-on).
    pub cp_pj_per_cycle: f64,
    /// DRAM access energy per byte (CACTI-class DDR).
    pub dram_pj_per_byte: f64,
}

impl EnergyModel {
    /// 65 nm defaults calibrated so that (a) main-memory accesses
    /// dominate total energy (>85%, Fig. 19) and (b) on-chip SRAM
    /// dominates on-chip energy (~70%, Fig. 20).
    pub fn default_65nm() -> Self {
        EnergyModel {
            pj_per_sram_byte: 1.2,
            pj_per_mac: 1.0,
            pj_per_nsm_selection: 2.0,
            pj_per_ssm_selection: 0.4,
            pj_per_wdm_decode: 0.1,
            pj_per_im_selection: 4.0,
            cp_pj_per_cycle: 75.0,
            dram_pj_per_byte: 500.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_65nm()
    }
}

/// Per-component energy of one run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// NBin SRAM.
    pub nbin_pj: f64,
    /// NBout SRAM.
    pub nbout_pj: f64,
    /// Synapse buffers.
    pub sb_pj: f64,
    /// Synapse index buffer.
    pub sib_pj: f64,
    /// Neuron selector (or IM for Cambricon-X).
    pub selector_pj: f64,
    /// Synapse selectors.
    pub ssm_pj: f64,
    /// Weight decoders.
    pub wdm_pj: f64,
    /// Arithmetic (PEFU).
    pub pefu_pj: f64,
    /// Control processor.
    pub cp_pj: f64,
    /// Main memory.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// On-chip energy (everything except DRAM).
    pub fn onchip_pj(&self) -> f64 {
        self.nbin_pj
            + self.nbout_pj
            + self.sb_pj
            + self.sib_pj
            + self.selector_pj
            + self.ssm_pj
            + self.wdm_pj
            + self.pefu_pj
            + self.cp_pj
    }

    /// On-chip SRAM energy.
    pub fn onchip_sram_pj(&self) -> f64 {
        self.nbin_pj + self.nbout_pj + self.sb_pj + self.sib_pj
    }

    /// Total energy including DRAM.
    pub fn total_pj(&self) -> f64 {
        self.onchip_pj() + self.dram_pj
    }

    /// DRAM share of the total (Fig. 19's headline: >90%).
    pub fn dram_fraction(&self) -> f64 {
        if self.total_pj() == 0.0 {
            return 0.0;
        }
        self.dram_pj / self.total_pj()
    }
}

/// Converts Cambricon-S activity into energy.
pub fn energy_cambricon_s(stats: &SimStats, m: &EnergyModel) -> EnergyBreakdown {
    EnergyBreakdown {
        nbin_pj: stats.nbin_bytes as f64 * m.pj_per_sram_byte,
        nbout_pj: stats.nbout_bytes as f64 * m.pj_per_sram_byte,
        sb_pj: stats.sb_bytes as f64 * m.pj_per_sram_byte,
        sib_pj: stats.sib_bytes as f64 * m.pj_per_sram_byte,
        selector_pj: stats.nsm_selections as f64 * m.pj_per_nsm_selection,
        ssm_pj: stats.ssm_selections as f64 * m.pj_per_ssm_selection,
        wdm_pj: stats.wdm_decodes as f64 * m.pj_per_wdm_decode,
        pefu_pj: stats.macs as f64 * m.pj_per_mac,
        cp_pj: stats.cycles as f64 * m.cp_pj_per_cycle,
        dram_pj: stats.dram_bytes() as f64 * m.dram_pj_per_byte,
    }
}

/// Converts Cambricon-X activity into energy (per-PE IM selections,
/// no SSM/WDM).
pub fn energy_cambricon_x(stats: &SimStats, m: &EnergyModel) -> EnergyBreakdown {
    EnergyBreakdown {
        nbin_pj: stats.nbin_bytes as f64 * m.pj_per_sram_byte,
        nbout_pj: stats.nbout_bytes as f64 * m.pj_per_sram_byte,
        sb_pj: stats.sb_bytes as f64 * m.pj_per_sram_byte,
        sib_pj: stats.sib_bytes as f64 * m.pj_per_sram_byte,
        selector_pj: stats.nsm_selections as f64 * m.pj_per_im_selection,
        ssm_pj: 0.0,
        wdm_pj: 0.0,
        pefu_pj: stats.macs as f64 * m.pj_per_mac,
        cp_pj: stats.cycles as f64 * m.cp_pj_per_cycle,
        dram_pj: stats.dram_bytes() as f64 * m.dram_pj_per_byte,
    }
}

/// Converts DianNao activity into energy (no selection logic at all).
pub fn energy_diannao(stats: &SimStats, m: &EnergyModel) -> EnergyBreakdown {
    EnergyBreakdown {
        nbin_pj: stats.nbin_bytes as f64 * m.pj_per_sram_byte,
        nbout_pj: stats.nbout_bytes as f64 * m.pj_per_sram_byte,
        sb_pj: stats.sb_bytes as f64 * m.pj_per_sram_byte,
        sib_pj: 0.0,
        selector_pj: 0.0,
        ssm_pj: 0.0,
        wdm_pj: 0.0,
        pefu_pj: stats.macs as f64 * m.pj_per_mac,
        cp_pj: stats.cycles as f64 * m.cp_pj_per_cycle,
        dram_pj: stats.dram_bytes() as f64 * m.dram_pj_per_byte,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_accel::timing::{simulate_layer, LayerTiming};
    use cs_accel::AccelConfig;
    use cs_baselines::{cambricon_x_layer, diannao_layer};

    fn conv_layer() -> LayerTiming {
        LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 0.35, 0.55, 8)
    }

    #[test]
    fn dram_dominates_total_energy() {
        let run = simulate_layer(&AccelConfig::paper_default(), &conv_layer());
        let e = energy_cambricon_s(&run.stats, &EnergyModel::default_65nm());
        assert!(
            e.dram_fraction() > 0.5,
            "DRAM fraction {}",
            e.dram_fraction()
        );
    }

    #[test]
    fn sram_dominates_onchip_energy() {
        let run = simulate_layer(&AccelConfig::paper_default(), &conv_layer());
        let e = energy_cambricon_s(&run.stats, &EnergyModel::default_65nm());
        let frac = e.onchip_sram_pj() / e.onchip_pj();
        assert!((0.4..0.95).contains(&frac), "on-chip SRAM fraction {frac}");
    }

    #[test]
    fn ours_more_efficient_than_x_and_diannao() {
        let l = conv_layer();
        let m = EnergyModel::default_65nm();
        let ours = energy_cambricon_s(&simulate_layer(&AccelConfig::paper_default(), &l).stats, &m);
        let x = energy_cambricon_x(&cambricon_x_layer(&l).stats, &m);
        let dn = energy_diannao(&diannao_layer(&l).stats, &m);
        assert!(ours.total_pj() < x.total_pj());
        assert!(x.total_pj() < dn.total_pj());
        let vs_x = x.total_pj() / ours.total_pj();
        let vs_dn = dn.total_pj() / ours.total_pj();
        assert!((1.05..4.0).contains(&vs_x), "vs X: {vs_x}");
        assert!(vs_dn > 2.0, "vs DianNao: {vs_dn}");
    }

    #[test]
    fn breakdown_sums() {
        let e = EnergyBreakdown {
            nbin_pj: 1.0,
            nbout_pj: 2.0,
            sb_pj: 3.0,
            sib_pj: 4.0,
            selector_pj: 5.0,
            ssm_pj: 6.0,
            wdm_pj: 7.0,
            pefu_pj: 8.0,
            cp_pj: 9.0,
            dram_pj: 55.0,
        };
        assert_eq!(e.onchip_pj(), 45.0);
        assert_eq!(e.total_pj(), 100.0);
        assert_eq!(e.dram_fraction(), 0.55);
        assert_eq!(e.onchip_sram_pj(), 10.0);
    }

    #[test]
    fn quantization_cuts_dram_energy() {
        let m = EnergyModel::default_65nm();
        let cfg = AccelConfig::paper_default();
        let q4 = simulate_layer(&cfg, &LayerTiming::fc(9216, 4096, 0.1, 0.6, 4));
        let q16 = simulate_layer(&cfg, &LayerTiming::fc(9216, 4096, 0.1, 0.6, 16));
        let e4 = energy_cambricon_s(&q4.stats, &m);
        let e16 = energy_cambricon_s(&q16.stats, &m);
        assert!(e4.dram_pj < e16.dram_pj / 2.0);
    }
}
