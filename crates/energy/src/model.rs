//! Area/power tables at TSMC 65 nm (the paper's Table VI).

/// Area and power of one hardware module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaPower {
    /// Module name.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Which accelerator a table describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Cambricon-S (this paper).
    CambriconS,
    /// Cambricon-X (MICRO'16).
    CambriconX,
    /// DianNao (ASPLOS'14).
    DianNao,
}

/// Cambricon-S per-module breakdown (Table VI). The NFU row aggregates
/// SB + SSM + WDM + PEFU, which are also listed individually.
pub fn cambricon_s_modules() -> Vec<AreaPower> {
    vec![
        AreaPower {
            name: "NBin",
            area_mm2: 0.55,
            power_mw: 93.32,
        },
        AreaPower {
            name: "NBout",
            area_mm2: 0.55,
            power_mw: 93.32,
        },
        AreaPower {
            name: "SIB",
            area_mm2: 0.05,
            power_mw: 6.89,
        },
        AreaPower {
            name: "NSM",
            area_mm2: 0.69,
            power_mw: 121.46,
        },
        AreaPower {
            name: "CP",
            area_mm2: 0.16,
            power_mw: 75.06,
        },
        AreaPower {
            name: "SB",
            area_mm2: 1.05,
            power_mw: 151.91,
        },
        AreaPower {
            name: "SSM",
            area_mm2: 0.25,
            power_mw: 56.80,
        },
        AreaPower {
            name: "WDM",
            area_mm2: 1.54,
            power_mw: 16.25,
        },
        AreaPower {
            name: "PEFU",
            area_mm2: 1.89,
            power_mw: 183.54,
        },
    ]
}

/// Total area in mm² for a platform (published numbers).
pub fn total_area_mm2(p: Platform) -> f64 {
    match p {
        Platform::CambriconS => 6.73,
        Platform::CambriconX => 6.38,
        Platform::DianNao => 3.02,
    }
}

/// Total power in mW for a platform (published numbers).
pub fn total_power_mw(p: Platform) -> f64 {
    match p {
        Platform::CambriconS => 798.55,
        Platform::CambriconX => 954.0,
        Platform::DianNao => 485.0,
    }
}

/// Cambricon-X's Indexing Module cost (per-PE indexing, 31.07% of area
/// and 34.83% of power per the Cambricon-X paper).
pub fn cambricon_x_im() -> AreaPower {
    AreaPower {
        name: "IM",
        area_mm2: 1.98,
        power_mw: 332.62,
    }
}

/// The Cambricon-S modules replacing the IM's function (shared NSM +
/// per-PE SSMs).
pub fn indexing_modules_s() -> AreaPower {
    AreaPower {
        name: "NSM+SSM",
        area_mm2: 0.69 + 0.25,
        power_mw: 121.46 + 56.80,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_sums_are_consistent_with_totals() {
        let mods = cambricon_s_modules();
        let area: f64 = mods.iter().map(|m| m.area_mm2).sum();
        let power: f64 = mods.iter().map(|m| m.power_mw).sum();
        // Module rows cover the whole chip within rounding.
        assert!((area - total_area_mm2(Platform::CambriconS)).abs() < 0.1);
        assert!((power - total_power_mw(Platform::CambriconS)).abs() < 5.0);
    }

    #[test]
    fn indexing_cost_improvement_matches_paper() {
        // Paper: NSM+SSM vs IM = 1.87x power, 2.11x area.
        let ours = indexing_modules_s();
        let im = cambricon_x_im();
        assert!((im.power_mw / ours.power_mw - 1.87).abs() < 0.02);
        assert!((im.area_mm2 / ours.area_mm2 - 2.11).abs() < 0.02);
    }

    #[test]
    fn relative_chip_sizes() {
        // Ours is 1.05x Cambricon-X and 2.22x DianNao.
        let s = total_area_mm2(Platform::CambriconS);
        assert!((s / total_area_mm2(Platform::CambriconX) - 1.05).abs() < 0.01);
        assert!((s / total_area_mm2(Platform::DianNao) - 2.22).abs() < 0.01);
    }
}
