//! Area, power and energy models (the paper's Table VI and Figs. 18–20).
//!
//! The paper obtains silicon numbers from RTL synthesis at TSMC 65 nm and
//! DRAM energy from CACTI 6.0. Here those numbers are *model inputs*
//! (DESIGN.md substitution #3):
//!
//! * [`model`] reproduces Table VI's per-module area/power breakdown for
//!   Cambricon-S and the published totals for DianNao and Cambricon-X;
//! * [`energy`] converts simulated activity counters (`cs_sim::SimStats`)
//!   into per-component energy with 65 nm-class per-event constants,
//!   yielding the Fig. 19/20 breakdowns and the Fig. 18 efficiency
//!   comparison;
//! * [`ablation`] quantifies the discussion-section design choices:
//!   shared vs. distributed NSM/SIB, the fixed-alias WDM, and the
//!   rejected entropy-decoder option.

pub mod ablation;
pub mod energy;
pub mod model;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use model::{AreaPower, Platform};
