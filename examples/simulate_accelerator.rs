//! Architecture-exploration scenario: compare Cambricon-S against
//! DianNao and Cambricon-X on one workload, at both the timing and the
//! functional level.
//!
//! ```text
//! cargo run --release --example simulate_accelerator
//! ```

use cambricon_s::prelude::*;
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_baselines::{cambricon_x_layer, diannao_layer};
use cs_energy::energy::{energy_cambricon_s, energy_cambricon_x, energy_diannao, EnergyModel};
use cs_nn::init::{self, ConvergenceProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = AccelConfig::paper_default();

    // --- Timing: AlexNet conv3 with the paper's sparsities. ---
    let layer = LayerTiming::conv(256, 384, 3, 13, 13, 13, 13, 0.3525, 0.6237, 8);
    let ours = simulate_layer(&cfg, &layer);
    let dense = simulate_layer_dense(&cfg, &layer);
    let dn = diannao_layer(&layer);
    let x = cambricon_x_layer(&layer);
    println!("AlexNet conv3 (35% synapses kept, 62% neurons non-zero):");
    println!(
        "  Cambricon-S  {:>9} cycles ({:.1} us)   1.00x",
        ours.stats.cycles,
        ours.micros(cfg.freq_ghz)
    );
    for (name, run) in [("ACC-dense", &dense), ("Cambricon-X", &x), ("DianNao", &dn)] {
        println!(
            "  {name:<12} {:>9} cycles ({:.1} us)  {:.2}x slower",
            run.stats.cycles,
            run.micros(cfg.freq_ghz),
            run.stats.cycles as f64 / ours.stats.cycles as f64
        );
    }

    // --- Energy for the same layer. ---
    let em = EnergyModel::default_65nm();
    let e_ours = energy_cambricon_s(&ours.stats, &em);
    let e_x = energy_cambricon_x(&x.stats, &em);
    let e_dn = energy_diannao(&dn.stats, &em);
    println!(
        "\n  energy: ours {:.1} uJ (DRAM {:.0}%), Cambricon-X {:.1} uJ, DianNao {:.1} uJ",
        e_ours.total_pj() / 1e6,
        100.0 * e_ours.dram_fraction(),
        e_x.total_pj() / 1e6,
        e_dn.total_pj() / 1e6,
    );

    // --- Functional: compile + execute a pruned FC layer and check the
    //     datapath bit-logic end to end. ---
    let n_in = 512;
    let n_out = 64;
    let density = 0.15;
    let w = init::local_convergence(
        cs_tensor::Shape::d2(n_in, n_out),
        &ConvergenceProfile::with_target_density(density).with_block(16),
        5,
    );
    let coarse = CoarseConfig::fc(16, 16, PruneMetric::Average);
    let mask = cs_sparsity::coarse::prune_to_density(&w, &coarse, density)?;
    let sil = SharedIndexLayer::from_fc("fc_demo", &w, &mask, 16, 4)?;
    let accel = Accelerator::new(cfg);
    let input: Vec<f32> = (0..n_in)
        .map(|i| if i % 2 == 0 { 0.0 } else { 0.01 * (i as f32) })
        .collect();
    let run = accel.run_layer(&sil, &input, Activation::Relu)?;
    let reference: Vec<f32> = sil.output(&input).iter().map(|v| v.max(0.0)).collect();
    let max_err = run
        .outputs
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "\nfunctional check on a {n_in}x{n_out} FC layer ({:.0}% kept, half the inputs zero):",
        100.0 * density
    );
    println!(
        "  {} MACs executed vs {} dense; {} cycles; max |err| vs reference {max_err:.2e}",
        run.stats.macs,
        n_in * n_out,
        run.stats.cycles
    );
    assert!(max_err < 1e-4);
    println!("  NSM/SSM/WDM datapath agrees with the reference. done.");
    Ok(())
}
