//! Quickstart: compress a network with the paper's settings and run a
//! pruned layer on the Cambricon-S simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cambricon_s::prelude::*;
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_nn::init::{self, ConvergenceProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compress the 3-layer MLP with the paper's coarse-grained
    //    pruning + local quantization + entropy coding.
    let spec = NetworkSpec::model(Model::Mlp, Scale::Full);
    let cfg = ModelCompressionConfig::paper(Model::Mlp);
    let report = compress_model(&spec, &cfg, 42)?;
    println!(
        "MLP: {:.1}x from pruning, {:.0}x with local quantization, {:.0}x overall; R(Irr) {:.1}x",
        report.pruning_ratio(),
        report.quantized_ratio(),
        report.overall_ratio(),
        report.reduced_irregularity(),
    );

    // 2. Build the accelerator's compact shared-index format for the
    //    first FC layer and execute it functionally.
    let layer = spec.weighted_layers().next().expect("mlp has layers");
    let lc = cfg.for_layer(layer);
    let profile = ConvergenceProfile::with_target_density(lc.target_density);
    let weights = init::materialize(layer, &profile, 42);
    let (_, mask, _) = compress_layer(layer, &weights, lc)?;
    let sil = SharedIndexLayer::from_fc(layer.name(), &weights, &mask, 16, lc.quant_bits)?;

    let accel = Accelerator::new(AccelConfig::paper_default());
    let input: Vec<f32> = (0..sil.n_in)
        .map(|i| {
            if i % 3 == 0 {
                0.0
            } else {
                (i % 13) as f32 * 0.05
            }
        })
        .collect();
    let run = accel.run_layer(&sil, &input, Activation::Relu)?;

    // 3. Check the accelerator's outputs against the reference compute.
    let reference: Vec<f32> = sil.output(&input).iter().map(|v| v.max(0.0)).collect();
    let max_err = run
        .outputs
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "layer {}: {} outputs in {} cycles, {} MACs ({} dense), max |err| = {max_err:.2e}",
        layer.name(),
        run.outputs.len(),
        run.stats.cycles,
        run.stats.macs,
        sil.n_in * sil.n_out,
    );
    assert!(max_err < 1e-3, "accelerator disagrees with reference");
    println!("accelerator output matches the dense reference. done.");
    Ok(())
}
