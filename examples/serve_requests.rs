//! Serving: run batched inference against a pool of simulated
//! Cambricon-S accelerators.
//!
//! Compresses the paper's MLP into the shared-index format, registers
//! it with the serving runtime, submits a burst of concurrent requests
//! through the dynamic batcher, and prints the latency/throughput/
//! energy statistics the server collected.
//!
//! ```text
//! cargo run --release --example serve_requests
//! ```

use cambricon_s::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compress the MLP (784-300-100-10 at 1/4 scale) with the
    //    paper's per-layer settings and register it.
    let model = ServableModel::mlp(Scale::Reduced(4), 42)?;
    let n_in = model.n_in;
    let mut registry = ModelRegistry::new();
    registry.register(model)?;

    // 2. Start two workers — two simulated accelerators — behind a
    //    dynamic batcher (close at 8 requests or 200 µs).
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait_us: 200,
            ..ServeConfig::default()
        },
    )?;

    // 3. Submit a burst of requests, then wait for every response.
    let tickets: Vec<_> = (0..32)
        .map(|i| {
            let input: Vec<f32> = (0..n_in)
                .map(|j| {
                    if (i + j) % 3 == 0 {
                        0.0
                    } else {
                        0.1 * ((j % 7) as f32)
                    }
                })
                .collect();
            server.submit(InferRequest::new("mlp", input))
        })
        .collect::<Result<_, _>>()?;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let resp = ticket.wait()?;
        if i == 0 {
            println!(
                "first response: {} outputs, {} cycles, {:.1} nJ, batch of {}, worker {}",
                resp.outputs.len(),
                resp.cycles,
                resp.energy_pj / 1e3,
                resp.batch_size,
                resp.worker
            );
        }
    }

    // 4. Shut down gracefully and print the collected statistics.
    let stats = server.shutdown();
    println!("{}", stats.render());
    Ok(())
}
