//! Software-pipeline scenario: iterative coarse-grained pruning with
//! fine-tuning, the paper's Section III-A training loop.
//!
//! Trains a small MLP on synthetic data, prunes it in steps of
//! decreasing density (re-training between steps so the network adapts
//! to the sparse topology), and shows that accuracy survives pruning
//! that would destroy it without fine-tuning.
//!
//! ```text
//! cargo run --release --example prune_and_finetune
//! ```

use cambricon_s::prelude::*;
use cs_nn::data;
use cs_nn::train::{accuracy, LayerMasks, TrainConfig, Trainer};
use cs_sparsity::coarse;

fn prune_step(net: &mut Network, density: f64) -> LayerMasks {
    let cfg = CoarseConfig::fc(8, 8, PruneMetric::Average);
    net.layers_mut()
        .iter_mut()
        .map(|layer| match layer.weights_mut() {
            Some(w) => {
                let mask = coarse::prune_to_density(w, &cfg, density).expect("valid density");
                mask.apply(w);
                Some(mask.bits().to_vec())
            }
            None => None,
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = data::blobs(400, 16, 4, 0.35, 3);
    let mut net = Network::mlp("pruneme", &[16, 64, 32, 4], 9);
    let mut trainer = Trainer::new(&net, TrainConfig::default());

    for _ in 0..25 {
        trainer.epoch(&mut net, &ds, None)?;
    }
    let base = accuracy(&net, &ds)?;
    println!("dense baseline accuracy: {base:.3}");

    // Iterative pruning: 60% -> 35% -> 20% -> 12% kept, fine-tuning at
    // each step (the paper prunes iteratively "to achieve better
    // sparsity and avoid the accuracy loss").
    let mut iterative = net.clone();
    let mut it_trainer = Trainer::new(&iterative, TrainConfig::default());
    for density in [0.60, 0.35, 0.20, 0.12] {
        let masks = prune_step(&mut iterative, density);
        let before = accuracy(&iterative, &ds)?;
        for _ in 0..10 {
            it_trainer.epoch(&mut iterative, &ds, Some(&masks))?;
        }
        let after = accuracy(&iterative, &ds)?;
        println!(
            "  kept {:>4.0}%: accuracy {before:.3} right after pruning, {after:.3} after fine-tune",
            100.0 * density
        );
    }
    let iterative_acc = accuracy(&iterative, &ds)?;

    // One-shot pruning to 12% with no fine-tuning, for contrast.
    let mut oneshot = net.clone();
    let _ = prune_step(&mut oneshot, 0.12);
    let oneshot_acc = accuracy(&oneshot, &ds)?;

    println!(
        "\nat 12% weights kept: iterative+fine-tuned {iterative_acc:.3} vs one-shot unrecovered {oneshot_acc:.3}"
    );
    assert!(iterative_acc > oneshot_acc);
    assert!(iterative_acc > base - 0.15, "fine-tuning failed to recover");
    println!("iterative prune-and-finetune recovers the accuracy. done.");
    Ok(())
}
