//! Deployment-compression scenario: shrink a network for an edge device.
//!
//! Compresses any of the paper's seven networks with the published
//! settings and prints the per-layer and total size accounting, plus the
//! irregularity reduction that makes the indexes hardware-friendly.
//!
//! ```text
//! cargo run --release --example compress_network -- alexnet --scale 4
//! ```

use cambricon_s::prelude::*;

fn parse_args() -> (Model, Scale) {
    let args: Vec<String> = std::env::args().collect();
    let model = args
        .iter()
        .skip(1)
        .find_map(|a| Model::all().into_iter().find(|m| m.name() == a))
        .unwrap_or(Model::AlexNet);
    let mut scale = Scale::Reduced(4);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            if let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                scale = if n <= 1 {
                    Scale::Full
                } else {
                    Scale::Reduced(n)
                };
            }
        }
    }
    (model, scale)
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (model, scale) = parse_args();
    let spec = NetworkSpec::model(model, scale);
    let cfg = ModelCompressionConfig::paper(model);
    println!(
        "compressing {model} at {scale:?}: {} weighted layers, {:.2} MB dense",
        spec.weighted_layers().count(),
        mb(spec.total_weights() * 4),
    );
    let report = compress_model(&spec, &cfg, 7)?;

    println!("\nper-layer:");
    println!(
        "{:<18} {:>7} {:>9} {:>9} {:>9} {:>7}",
        "layer", "kept%", "Wp(MB)", "Wq(MB)", "Wc(MB)", "bits"
    );
    for l in &report.layers {
        println!(
            "{:<18} {:>6.2}% {:>9.3} {:>9.3} {:>9.3} {:>7}",
            l.name,
            100.0 * l.density,
            mb(l.wp_bytes),
            mb(l.wq_bytes),
            mb(l.wc_bytes),
            l.quant_bits,
        );
    }
    println!(
        "\ntotals: dense {:.2} MB -> pruned {:.2} MB (r_p {:.1}x) -> quantized {:.2} MB \
         (r_q {:.0}x) -> coded {:.2} MB (r_c {:.0}x)",
        mb(report.dense_bytes()),
        mb(report.wp_bytes()),
        report.pruning_ratio(),
        mb(report.wq_bytes()),
        report.quantized_ratio(),
        mb(report.wc_bytes()),
        report.overall_ratio(),
    );
    println!(
        "indexes: {:.1} KB coarse ({:.1} KB after coding) vs {:.1} KB fine-grained; \
         R(Irr) = {:.2}x",
        report.index_bytes() as f64 / 1e3,
        report.ic_bytes() as f64 / 1e3,
        report
            .layers
            .iter()
            .map(|l| l.fine_index_bits)
            .sum::<usize>() as f64
            / 8e3,
        report.reduced_irregularity(),
    );
    Ok(())
}
