//! Compression-parameter tuning scenario: the paper's "long-tuning
//! process" as a runnable search.
//!
//! Sweeps pruning block size and dictionary widths over representative
//! AlexNet layers, scoring each configuration by compressed size under a
//! reconstruction-error (accuracy-proxy) bound, then prints the ranked
//! design points and compares the winner with the paper's chosen design.
//!
//! ```text
//! cargo run --release --example design_space_exploration -- --scale 8
//! ```

use cambricon_s::experiments::ext_dse;
use cambricon_s::prelude::Scale;

fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            if let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) {
                return if n <= 1 {
                    Scale::Full
                } else {
                    Scale::Reduced(n)
                };
            }
        }
    }
    Scale::Reduced(8)
}

fn main() {
    let scale = scale_from_args();
    println!("exploring block sizes x dictionary widths on AlexNet probe layers ({scale:?})...\n");
    let result = ext_dse::run(scale, 7);
    println!("{}", result.render());

    let best = result.best().expect("at least one feasible design");
    println!(
        "\nbest feasible design: N={} conv {}b / fc {}b -> {:.1} KB (nmse {:.4})",
        best.n,
        best.conv_bits,
        best.fc_bits,
        best.compressed_bytes as f64 / 1e3,
        best.nmse,
    );
    let paper = result
        .points
        .iter()
        .find(|p| p.n == 16 && p.conv_bits == 8 && p.fc_bits == 4)
        .expect("the paper design point was evaluated");
    println!(
        "paper design (N=16, conv 8b, fc 4b): {:.1} KB (nmse {:.4}) — within {:.0}% of the best",
        paper.compressed_bytes as f64 / 1e3,
        paper.nmse,
        100.0 * (paper.compressed_bytes as f64 / best.compressed_bytes as f64 - 1.0).abs(),
    );
}
