//! Property-based tests over the core invariants, spanning crates.

use cambricon_s::prelude::*;
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_coding::bilevel::{self, BiLevelImage};
use cs_coding::huffman;
use cs_quant::quantize_local;
use cs_sparsity::coarse;
use cs_tensor::Shape;
use proptest::prelude::*;

proptest! {
    /// Huffman coding round-trips any non-empty symbol stream.
    #[test]
    fn huffman_roundtrip(symbols in proptest::collection::vec(0u16..512, 1..2000)) {
        let enc = huffman::encode(&symbols).unwrap();
        prop_assert_eq!(huffman::decode(&enc).unwrap(), symbols);
    }

    /// Huffman payload never beats the entropy bound.
    #[test]
    fn huffman_respects_entropy(symbols in proptest::collection::vec(0u16..16, 2..1000)) {
        let enc = huffman::encode(&symbols).unwrap();
        let h = huffman::entropy_bits(&symbols);
        prop_assert!(enc.payload_bits as f64 >= h - 1e-6);
    }

    /// The bilevel codec round-trips any bitmap.
    #[test]
    fn bilevel_roundtrip(bits in proptest::collection::vec(any::<bool>(), 1..4096),
                         width in 1usize..64) {
        let len = (bits.len() / width).max(1) * width;
        let img = BiLevelImage::from_bits(&bits[..len.min(bits.len()) / width * width], width);
        if let Ok(img) = img {
            let c = bilevel::compress(&img);
            prop_assert_eq!(bilevel::decompress(&c).unwrap(), img);
        }
    }

    /// Coarse pruning always yields a block-aligned mask whose density is
    /// within one block of the target, and never prunes everything.
    #[test]
    fn coarse_pruning_invariants(rows in 4usize..48, cols in 4usize..48,
                                 block in 1usize..12,
                                 density in 0.05f64..1.0,
                                 seed in 0u64..1000) {
        let w = cs_nn::init::gaussian(Shape::d2(rows, cols), 0.1, seed);
        let cfg = CoarseConfig::fc(block, block, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        prop_assert!(coarse::is_block_aligned(&mask, &cfg));
        prop_assert!(mask.ones() > 0, "everything pruned");
        let max_block = block.min(rows) * block.min(cols);
        let slack = max_block as f64 / (rows * cols) as f64;
        prop_assert!(mask.density() <= density + slack + 1e-9,
                     "density {} vs target {}", mask.density(), density);
    }

    /// Coarse pruning with a block larger than the matrix degenerates to
    /// all-or-one: the block clamps to the whole tensor, so the mask is
    /// either full or exactly the single guaranteed block.
    #[test]
    fn oversized_block_keeps_all_or_one(rows in 2usize..24, cols in 2usize..24,
                                        block in 50usize..200,
                                        density in 0.05f64..1.0,
                                        seed in 0u64..1000) {
        let w = cs_nn::init::gaussian(Shape::d2(rows, cols), 0.1, seed);
        let cfg = CoarseConfig::fc(block, block, PruneMetric::Max);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        // One clamped block covers everything, and the best block is
        // never pruned — so the mask must be completely full.
        prop_assert_eq!(mask.ones(), rows * cols);
        prop_assert!(coarse::is_block_aligned(&mask, &cfg));
    }

    /// Non-divisible blocks: ragged edge blocks are still legal, the
    /// mask stays block-aligned, and the compiled engine stays
    /// bit-identical to its own dense rendering.
    #[test]
    fn ragged_blocks_compile_and_match_dense(n_in in 5usize..40, n_out in 5usize..40,
                                             block_in in 2usize..7, block_out in 2usize..7,
                                             density in 0.1f64..1.0,
                                             seed in 0u64..500) {
        // Force the blocks to NOT divide the shape.
        prop_assume!(n_in % block_in != 0 || n_out % block_out != 0);
        let w = cs_nn::init::gaussian(Shape::d2(n_in, n_out), 0.1, seed);
        let cfg = CoarseConfig::fc(block_in, block_out, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        prop_assert!(coarse::is_block_aligned(&mask, &cfg));
        let group = block_out.min(n_out).max(1);
        let sil = SharedIndexLayer::from_fc("ragged", &w, &mask, group, 8).unwrap();
        let engine = cs_compress::engine::CompiledFcLayer::from_shared(&sil);
        let dense = engine.to_dense();
        let input: Vec<f32> = (0..n_in)
            .map(|i| ((seed as usize + i * 7) % 13) as f32 * 0.1 - 0.6)
            .collect();
        let got = engine.forward_alloc(&input);
        let xt = cs_tensor::Tensor::from_vec(Shape::d2(1, n_in), input.clone()).unwrap();
        let want = cs_tensor::ops::matmul(&xt, &dense).unwrap();
        let want = want.as_slice();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            prop_assert_eq!(g.to_bits(), w.to_bits(),
                            "engine not bit-identical to dense: {} vs {}", g, w);
        }
    }

    /// An all-zero layer survives the whole compressed pipeline: the
    /// pruner still keeps its guaranteed block, the codebook collapses,
    /// and the engine output is exactly zero everywhere.
    #[test]
    fn all_zero_layer_compresses_to_zero_outputs(n_in in 4usize..32, n_out in 4usize..32,
                                                 block in 1usize..8,
                                                 density in 0.05f64..1.0) {
        let w = cs_tensor::Tensor::zeros(Shape::d2(n_in, n_out));
        let cfg = CoarseConfig::fc(block, block, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        prop_assert!(mask.ones() > 0, "everything pruned");
        let group = block.min(n_out).max(1);
        let sil = SharedIndexLayer::from_fc("zeros", &w, &mask, group, 4).unwrap();
        let engine = cs_compress::engine::CompiledFcLayer::from_shared(&sil);
        let input: Vec<f32> = (0..n_in).map(|i| i as f32 * 0.25 - 1.0).collect();
        for v in engine.forward_alloc(&input) {
            prop_assert_eq!(v.to_bits(), 0.0f32.to_bits());
        }
    }

    /// Fine-grained pruning keeps exactly the requested count and always
    /// keeps a superset of larger magnitudes.
    #[test]
    fn fine_pruning_keeps_top_magnitudes(n in 4usize..256, density in 0.05f64..1.0,
                                         seed in 0u64..1000) {
        let w = cs_nn::init::gaussian(Shape::d1(n), 0.1, seed);
        let mask = cs_sparsity::fine::prune_to_density(&w, density).unwrap();
        let keep = ((density * n as f64).round() as usize).clamp(1, n);
        prop_assert_eq!(mask.ones(), keep);
        // Every kept magnitude >= every dropped magnitude.
        let kept_min = w.as_slice().iter().zip(mask.bits())
            .filter(|(_, b)| **b).map(|(v, _)| v.abs())
            .fold(f32::INFINITY, f32::min);
        let dropped_max = w.as_slice().iter().zip(mask.bits())
            .filter(|(_, b)| !**b).map(|(v, _)| v.abs())
            .fold(0.0f32, f32::max);
        prop_assert!(kept_min >= dropped_max);
    }

    /// Local quantization preserves the value count and its error is
    /// bounded by the value range.
    #[test]
    fn quantization_error_bounded(values in proptest::collection::vec(-10.0f32..10.0, 2..500),
                                  bits in 2u8..8, regions in 1usize..8) {
        let q = quantize_local(&values, bits, regions).unwrap();
        prop_assert_eq!(q.len(), values.len());
        let decoded = q.decode();
        let range = values.iter().fold(0.0f32, |m, v| m.max(v.abs())) * 2.0;
        for (a, b) in values.iter().zip(&decoded) {
            prop_assert!((a - b).abs() <= range + 1e-6);
        }
    }

    /// The NSM's bit logic matches a naive filter on any input.
    #[test]
    fn nsm_matches_naive_selection(pairs in proptest::collection::vec(
        (any::<bool>(), -1.0f32..1.0), 1..200)) {
        let index: Vec<bool> = pairs.iter().map(|(b, _)| *b).collect();
        let neurons: Vec<f32> = pairs.iter().map(|(_, v)| *v).collect();
        let sel = cs_accel::nsm::select(&neurons, &index);
        let naive: Vec<f32> = neurons.iter().zip(&index)
            .filter(|(v, b)| **b && **v != 0.0)
            .map(|(v, _)| *v)
            .collect();
        prop_assert_eq!(sel.neurons, naive);
        prop_assert_eq!(sel.static_survivors,
                        index.iter().filter(|b| **b).count());
        // Indexing positions are strictly increasing and in range.
        for w in sel.indexing.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for p in &sel.indexing {
            prop_assert!(*p < sel.static_survivors);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full functional equivalence: a randomly pruned layer executed on
    /// the accelerator matches the shared-index reference.
    #[test]
    fn accelerator_matches_reference(n_in_blocks in 2usize..8,
                                     n_out_blocks in 1usize..3,
                                     density in 0.1f64..0.9,
                                     zero_every in 2usize..6,
                                     seed in 0u64..100) {
        let n_in = 16 * n_in_blocks;
        let n_out = 16 * n_out_blocks;
        let w = cs_nn::init::local_convergence(
            Shape::d2(n_in, n_out),
            &cs_nn::init::ConvergenceProfile::with_target_density(density),
            seed,
        );
        let cfg = CoarseConfig::fc(16, 16, PruneMetric::Average);
        let mask = coarse::prune_to_density(&w, &cfg, density).unwrap();
        let sil = SharedIndexLayer::from_fc("p", &w, &mask, 16, 8).unwrap();
        let accel = Accelerator::new(AccelConfig::paper_default());
        let input: Vec<f32> = (0..n_in)
            .map(|i| if i % zero_every == 0 { 0.0 } else { (i % 11) as f32 * 0.1 - 0.5 })
            .collect();
        let run = accel.run_layer(&sil, &input, Activation::None).unwrap();
        let want = sil.output(&input);
        for (got, want) in run.outputs.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-3, "{} vs {}", got, want);
        }
        // MAC count equals the exact selected-synapse count.
        let expected_macs: u64 = sil.groups.iter().map(|g| {
            let selected = g.index.iter().enumerate()
                .filter(|(i, b)| **b && input[*i] != 0.0)
                .count() as u64;
            selected * g.weights.len() as u64
        }).sum();
        prop_assert_eq!(run.stats.macs, expected_macs);
    }

    /// Compression sizes are monotone in density: keeping fewer weights
    /// never makes the compressed network bigger.
    #[test]
    fn compression_monotone_in_density(seed in 0u64..20) {
        let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(8));
        let mut sizes = Vec::new();
        for density in [0.4, 0.2, 0.1] {
            let mut cfg = ModelCompressionConfig::paper(Model::Mlp);
            cfg.fc.target_density = density;
            let report = compress_model(&spec, &cfg, seed).unwrap();
            sizes.push(report.wc_bytes() + report.ic_bytes());
        }
        prop_assert!(sizes[0] >= sizes[1]);
        prop_assert!(sizes[1] >= sizes[2]);
    }
}
