//! Cross-platform consistency: the orderings the paper's evaluation
//! rests on must hold across the whole benchmark suite, not just on
//! single layers.

use cambricon_s::prelude::*;
use cambricon_s::workload::paper_workload;
use cs_baselines::{cambricon_x_layer, diannao_layer};
use cs_energy::energy::{energy_cambricon_s, energy_cambricon_x, energy_diannao, EnergyModel};

fn ours_cycles(wl: &cambricon_s::workload::NetworkWorkload) -> u64 {
    let cfg = AccelConfig::paper_default();
    wl.run_ours(&cfg).iter().map(|r| r.stats.cycles).sum()
}

/// Performance ordering per network: ours <= Cambricon-X <= DianNao.
#[test]
fn performance_ordering_holds_for_every_network() {
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        let ours = ours_cycles(&wl);
        let x: u64 = wl
            .layers
            .iter()
            .map(|l| cambricon_x_layer(&l.timing).stats.cycles)
            .sum();
        let dn: u64 = wl
            .layers
            .iter()
            .map(|l| diannao_layer(&l.timing).stats.cycles)
            .sum();
        assert!(ours <= x, "{model}: ours {ours} vs X {x}");
        assert!(x <= dn, "{model}: X {x} vs DianNao {dn}");
    }
}

/// Energy ordering per network: ours <= Cambricon-X <= DianNao.
#[test]
fn energy_ordering_holds_for_every_network() {
    let em = EnergyModel::default_65nm();
    let cfg = AccelConfig::paper_default();
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        let mut ours = 0.0;
        let mut x = 0.0;
        let mut dn = 0.0;
        for l in &wl.layers {
            ours += energy_cambricon_s(&simulate_layer(&cfg, &l.timing).stats, &em).total_pj();
            x += energy_cambricon_x(&cambricon_x_layer(&l.timing).stats, &em).total_pj();
            dn += energy_diannao(&diannao_layer(&l.timing).stats, &em).total_pj();
        }
        assert!(ours < x, "{model}: ours {ours} vs X {x}");
        assert!(x < dn, "{model}: X {x} vs DianNao {dn}");
    }
}

/// Our accelerator never moves more DRAM bytes than Cambricon-X (weight
/// quantization + shared indexes), and Cambricon-X never more than
/// DianNao (sparse vs dense weights).
#[test]
fn dram_traffic_ordering() {
    let cfg = AccelConfig::paper_default();
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        for l in &wl.layers {
            let ours = simulate_layer(&cfg, &l.timing).stats.dram_bytes();
            let x = cambricon_x_layer(&l.timing).stats.dram_bytes();
            let dn = diannao_layer(&l.timing).stats.dram_bytes();
            // Tiny layers may pay a codebook-LUT overhead of up to a few
            // hundred bytes that Cambricon-X (no WDM) does not carry.
            assert!(
                ours <= x + 2048,
                "{model}/{}: ours {ours} vs X {x}",
                l.timing.name
            );
            // On *unpruned* layers (ResNet's dense FC) Cambricon-X pays
            // its fine-grained index on top of the dense weights, so it
            // legitimately exceeds DianNao there.
            if l.timing.static_density < 1.0 {
                assert!(x <= dn, "{model}/{}: X {x} vs DianNao {dn}", l.timing.name);
            }
        }
    }
}

/// ACC-dense (our hardware on dense data) is slower than ACC-sparse on
/// every network but faster than DianNao (better buffers/overlap).
#[test]
fn acc_dense_sits_between_sparse_and_diannao() {
    let cfg = AccelConfig::paper_default();
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        let sparse = ours_cycles(&wl);
        let dense: u64 = wl.run_ours_dense(&cfg).iter().map(|r| r.stats.cycles).sum();
        let dn: u64 = wl
            .layers
            .iter()
            .map(|l| diannao_layer(&l.timing).stats.cycles)
            .sum();
        assert!(sparse < dense, "{model}");
        assert!(dense <= dn, "{model}: ACC-dense {dense} vs DianNao {dn}");
    }
}

/// Cycle counts scale sub-linearly but monotonically with model size:
/// the biggest network (VGG16) takes the longest on every platform.
#[test]
fn vgg16_is_the_heaviest_workload() {
    let models = [Model::LeNet5, Model::AlexNet, Model::Vgg16];
    let cycles: Vec<u64> = models
        .iter()
        .map(|m| ours_cycles(&paper_workload(*m, Scale::Full)))
        .collect();
    assert!(cycles[0] < cycles[1]);
    assert!(cycles[1] < cycles[2]);
}

/// The accelerator's peak-rate sanity bound: no layer executes its MACs
/// faster than 256 per cycle.
#[test]
fn no_layer_exceeds_peak_throughput() {
    let cfg = AccelConfig::paper_default();
    for model in Model::all() {
        let wl = paper_workload(model, Scale::Full);
        for l in &wl.layers {
            let run = simulate_layer(&cfg, &l.timing);
            let macs_per_cycle = run.stats.macs as f64 / run.stats.cycles.max(1) as f64;
            assert!(
                macs_per_cycle <= cfg.peak_macs_per_cycle() as f64 + 1e-9,
                "{model}/{}: {macs_per_cycle} MACs/cycle",
                l.timing.name
            );
        }
    }
}
