//! End-to-end integration: network spec → synthetic weights →
//! coarse-grained compression → compact shared-index format →
//! accelerator functional execution, validated against the dense
//! reference at every step.

use cambricon_s::prelude::*;
use cs_accel::exec::Accelerator;
use cs_accel::pe::Activation;
use cs_nn::init::{self, ConvergenceProfile};

/// Compress every FC layer of the MLP and execute each on the
/// accelerator; outputs must match the shared-index reference exactly
/// and the masked-dense reference within quantization error.
#[test]
fn mlp_layers_execute_correctly_on_the_accelerator() {
    let spec = NetworkSpec::model(Model::Mlp, Scale::Reduced(4));
    let cfg = ModelCompressionConfig::paper(Model::Mlp);
    let accel = Accelerator::new(AccelConfig::paper_default());

    for layer in spec.weighted_layers() {
        let lc = cfg.for_layer(layer);
        let profile = ConvergenceProfile::with_target_density(lc.target_density);
        let weights = init::materialize(layer, &profile, 11);
        let (report, mask, _) = compress_layer(layer, &weights, lc).expect("compression");
        // The tiny output layer keeps at least one block, so only check
        // the density target on layers with room to prune.
        if report.weight_count >= 1024 {
            assert!(report.density <= 0.35, "layer {} too dense", layer.name());
        }

        let sil = SharedIndexLayer::from_fc(layer.name(), &weights, &mask, 16, lc.quant_bits)
            .expect("block-aligned mask");
        let input: Vec<f32> = (0..sil.n_in)
            .map(|i| match i % 4 {
                0 => 0.0,
                r => r as f32 * 0.1,
            })
            .collect();
        let run = accel
            .run_layer(&sil, &input, Activation::None)
            .expect("execution");
        let want = sil.output(&input);
        for (o, (got, want)) in run.outputs.iter().zip(&want).enumerate() {
            assert!(
                (got - want).abs() < 1e-4,
                "layer {} output {o}: {got} vs {want}",
                layer.name()
            );
        }

        // Quantization error against the masked dense compute is bounded.
        let mut pruned = weights.clone();
        mask.apply(&mut pruned);
        let n_out = sil.n_out;
        for o in 0..n_out {
            let mut dense = 0.0f32;
            for (i, x) in input.iter().enumerate() {
                dense += pruned.as_slice()[i * n_out + o] * x;
            }
            let err = (run.outputs[o] - dense).abs();
            assert!(
                err <= 0.15 * dense.abs().max(0.5),
                "layer {} output {o}: quantized {} vs dense {dense}",
                layer.name(),
                run.outputs[o]
            );
        }
    }
}

/// The whole-network compression report is consistent: per-layer sizes
/// sum to the totals and ratios are ordered r_p < r_q.
#[test]
fn compression_report_is_internally_consistent() {
    let spec = NetworkSpec::model(Model::LeNet5, Scale::Full);
    let cfg = ModelCompressionConfig::paper(Model::LeNet5);
    let report = compress_model(&spec, &cfg, 3).expect("pipeline");
    let wp: usize = report.layers.iter().map(|l| l.wp_bytes).sum();
    assert_eq!(wp, report.wp_bytes());
    assert!(report.pruning_ratio() < report.quantized_ratio());
    for l in &report.layers {
        assert!(l.surviving <= l.weight_count);
        assert!(l.wq_bytes <= l.wp_bytes);
        assert!(l.coarse_index_bits <= l.fine_index_bits);
    }
}

/// Conv layers lower into the same shared-index format and execute
/// correctly (one spatial position = one FC-like evaluation).
#[test]
fn conv_layer_lowering_executes_correctly() {
    let w = init::local_convergence(
        cs_tensor::Shape::d4(8, 32, 3, 3),
        &ConvergenceProfile::with_target_density(0.3),
        5,
    );
    let coarse = CoarseConfig::conv(1, 16, 1, 1, PruneMetric::Average);
    let mask = cs_sparsity::coarse::prune_to_density(&w, &coarse, 0.3).expect("prune");
    let sil = SharedIndexLayer::from_conv("conv", &w, &mask, 16, 8).expect("format");
    assert_eq!(sil.n_in, 8 * 9);

    let accel = Accelerator::new(AccelConfig::paper_default());
    // Three different im2col windows (spatial positions).
    for seed in 0..3u64 {
        let input: Vec<f32> = (0..sil.n_in)
            .map(|i| {
                let v = ((i as u64 + seed * 31) % 7) as f32 * 0.2 - 0.3;
                if v < 0.0 {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        let run = accel
            .run_layer(&sil, &input, Activation::Relu)
            .expect("execution");
        let want: Vec<f32> = sil.output(&input).iter().map(|v| v.max(0.0)).collect();
        for (got, want) in run.outputs.iter().zip(&want) {
            assert!((got - want).abs() < 1e-4, "{got} vs {want}");
        }
    }
}

/// Dynamic sparsity end to end: feeding the same layer a sparser input
/// reduces both MACs and cycles without changing correctness.
#[test]
fn dynamic_sparsity_saves_work_end_to_end() {
    let w = init::local_convergence(
        cs_tensor::Shape::d2(2048, 64),
        &ConvergenceProfile::with_target_density(0.2).with_block(16),
        9,
    );
    let coarse = CoarseConfig::fc(16, 16, PruneMetric::Average);
    let mask = cs_sparsity::coarse::prune_to_density(&w, &coarse, 0.2).expect("prune");
    let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 4).expect("format");
    let accel = Accelerator::new(AccelConfig::paper_default());

    let dense_in: Vec<f32> = (0..2048).map(|i| (i % 9 + 1) as f32 * 0.05).collect();
    let sparse_in: Vec<f32> = dense_in
        .iter()
        .enumerate()
        .map(|(i, v)| if i % 3 == 0 { *v } else { 0.0 })
        .collect();
    let run_dense = accel
        .run_layer(&sil, &dense_in, Activation::None)
        .expect("dense run");
    let run_sparse = accel
        .run_layer(&sil, &sparse_in, Activation::None)
        .expect("sparse run");
    assert!(run_sparse.stats.macs * 2 < run_dense.stats.macs);
    assert!(run_sparse.stats.cycles <= run_dense.stats.cycles);
    // And the sparse run is still correct.
    let want = sil.output(&sparse_in);
    for (got, want) in run_sparse.outputs.iter().zip(&want) {
        assert!((got - want).abs() < 1e-4);
    }
}

/// The VLIW program compiled for a layer covers all inputs and outputs,
/// and re-running the same program is deterministic.
#[test]
fn compiled_programs_are_deterministic() {
    let w = init::local_convergence(
        cs_tensor::Shape::d2(4096, 32),
        &ConvergenceProfile::with_target_density(0.25).with_block(16),
        2,
    );
    let coarse = CoarseConfig::fc(16, 16, PruneMetric::Average);
    let mask = cs_sparsity::coarse::prune_to_density(&w, &coarse, 0.25).expect("prune");
    let sil = SharedIndexLayer::from_fc("fc", &w, &mask, 16, 4).expect("format");
    let cfg = AccelConfig::paper_default();
    let program = cs_accel::compiler::compile_layer(&sil, &cfg, Activation::None);
    assert_eq!(program.n_in, 4096);
    assert_eq!(program.n_out, 32);
    let accel = Accelerator::new(cfg);
    let input: Vec<f32> = (0..4096).map(|i| (i % 5) as f32 * 0.1).collect();
    let a = accel.run_program(&program, &sil, &input).expect("run 1");
    let b = accel.run_program(&program, &sil, &input).expect("run 2");
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.stats, b.stats);
}
