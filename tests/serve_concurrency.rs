//! Concurrency contract of the serving runtime: many client threads
//! against a 2-worker server must each get exactly one response whose
//! outputs are bit-identical to single-threaded execution, and a full
//! admission queue must reject with `Overloaded` instead of blocking.

use cambricon_s::prelude::*;
use cs_accel::exec::Accelerator;
use cs_serve::batch::{BatchPolicy, Batcher, CloseReason};
use proptest::prelude::*;

const SEED: u64 = 20181020;

fn deterministic_input(n_in: usize, request_id: u64) -> Vec<f32> {
    (0..n_in)
        .map(|i| {
            let v = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(request_id.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            if v.is_multiple_of(3) {
                0.0
            } else {
                ((v >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            }
        })
        .collect()
}

#[test]
fn concurrent_clients_get_exactly_one_bit_identical_response_each() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 12;

    let model = ServableModel::mlp(Scale::Reduced(8), SEED).expect("mlp compiles");
    let layers = model.shared_layers();
    let n_in = model.n_in;
    let mut registry = ModelRegistry::new();
    registry.register(model).expect("register");
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait_us: 500,
            queue_depth: CLIENTS * PER_CLIENT,
            ..ServeConfig::default()
        },
    )
    .expect("start");

    // Reference outputs from a single-threaded Accelerator, computed
    // outside the server.
    let reference = Accelerator::new(AccelConfig::paper_default());

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            let server = &server;
            let layers = &layers;
            let reference = &reference;
            handles.push(scope.spawn(move || {
                for i in 0..PER_CLIENT {
                    let rid = (client * PER_CLIENT + i) as u64;
                    let input = deterministic_input(n_in, rid);
                    let resp = server
                        .infer(InferRequest::new("mlp", input.clone()))
                        .expect("request completes");
                    let direct = reference
                        .run_network(layers, &input)
                        .expect("direct execution");
                    // Bit-identical: batching and threading must not
                    // change a single output bit.
                    assert_eq!(
                        resp.outputs, direct.outputs,
                        "client {client} request {i} diverged from single-threaded run"
                    );
                    assert_eq!(resp.cycles, direct.stats.cycles);
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });

    let snap = server.shutdown();
    // Exactly one response per request: every submission completed,
    // none failed, none were double-counted.
    assert_eq!(snap.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.rejected, 0);
    let batched: u64 = snap.batch_hist.iter().map(|(s, n)| *s as u64 * n).sum();
    assert_eq!(
        batched, snap.completed,
        "every request rode exactly one batch"
    );
    assert!(snap.batch_hist.iter().all(|(size, _)| *size <= 4));
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let model = ServableModel::mlp(Scale::Reduced(16), SEED).expect("mlp compiles");
    let n_in = model.n_in;
    let mut registry = ModelRegistry::new();
    registry.register(model).expect("register");
    // One worker that sleeps out its simulated service time at a clock
    // slowed 1000x (1 MHz), so each request occupies the pipeline for
    // milliseconds while a burst of submissions arrives in microseconds:
    // the bounded queue must overflow deterministically.
    let metrics = std::sync::Arc::new(cs_serve::Registry::new());
    let server = Server::start_with_recorder(
        registry,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait_us: 0,
            queue_depth: 2,
            emulate_hw_time: true,
            freq_ghz: 0.001,
            ..ServeConfig::default()
        },
        std::sync::Arc::new(cs_serve::MonotonicClock::new()),
        metrics.clone(),
    )
    .expect("start");

    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for rid in 0..32 {
        match server.submit(InferRequest::new("mlp", deterministic_input(n_in, rid))) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity, .. }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    assert!(
        rejected > 0,
        "a 2-deep queue cannot absorb a 32-request burst"
    );
    let admitted = tickets.len() as u64;
    // Every admitted request still completes (graceful backpressure,
    // not dropped work).
    for t in tickets {
        t.wait().expect("admitted request completes");
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed, admitted);
    assert_eq!(snap.rejected, rejected);
    assert_eq!(admitted + rejected, 32);
    // The telemetry reject counter counts the same backpressure events
    // as the snapshot — neither side misses an Overloaded.
    let reject_counter = metrics
        .find_counter("serve_requests_rejected_total", &[])
        .expect("reject counter registered");
    assert_eq!(reject_counter.get(), rejected);
    assert_eq!(
        metrics
            .find_counter("serve_requests_completed_total", &[])
            .expect("completed counter registered")
            .get(),
        admitted
    );
}

#[test]
fn multi_model_batches_route_responses_to_the_right_client() {
    let mlp_a = ServableModel::mlp(Scale::Reduced(8), SEED).expect("mlp a");
    let mut spec_b = ServableModel::mlp(Scale::Reduced(8), SEED ^ 0xABCD).expect("mlp b");
    spec_b.name = "mlp-b".to_string();
    let layers_a = mlp_a.shared_layers();
    let layers_b = spec_b.shared_layers();
    let n_in = mlp_a.n_in;
    let mut registry = ModelRegistry::new();
    registry.register(mlp_a).expect("register a");
    registry.register(spec_b).expect("register b");
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            max_wait_us: 300,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let reference = Accelerator::new(AccelConfig::paper_default());

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..4usize {
            let server = &server;
            let (name, layers) = if client % 2 == 0 {
                ("mlp", &layers_a)
            } else {
                ("mlp-b", &layers_b)
            };
            let reference = &reference;
            handles.push(scope.spawn(move || {
                for i in 0..8u64 {
                    let input = deterministic_input(n_in, client as u64 * 100 + i);
                    let resp = server
                        .infer(InferRequest::new(name, input.clone()))
                        .expect("request completes");
                    assert_eq!(resp.model, name, "response routed to wrong model");
                    let direct = reference.run_network(layers, &input).expect("direct");
                    assert_eq!(resp.outputs, direct.outputs);
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let snap = server.shutdown();
    assert_eq!(snap.completed, 32);
    assert_eq!(snap.failed, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batching invariants over arbitrary arrival sequences, driven
    /// against the pure `Batcher` state machine with hand-fed
    /// timestamps: no batch exceeds `max_batch`, every admitted request
    /// lands in exactly one batch, and requests for the same model stay
    /// FIFO.
    #[test]
    fn batcher_invariants_hold_for_any_arrival_sequence(
        arrivals in proptest::collection::vec((0usize..3, 0u64..300), 1..200),
        max_batch in 1usize..9,
        max_wait_us in 0u64..400,
    ) {
        let mut b: Batcher<(usize, usize)> =
            Batcher::new(BatchPolicy { max_batch, max_wait_us });
        let mut now = 0u64;
        let mut closed = Vec::new();
        for (id, (model, gap)) in arrivals.iter().enumerate() {
            now += gap;
            // The server's batcher thread polls the deadline before
            // folding in the next arrival; mirror that order.
            closed.extend(b.poll(now));
            closed.extend(b.offer(*model, (id, *model), now));
        }
        closed.extend(b.flush());

        for batch in &closed {
            // No batch exceeds the size limit, none is empty.
            prop_assert!(!batch.items.is_empty());
            prop_assert!(batch.items.len() <= max_batch);
            // Single-model batches: every item targets the batch model.
            prop_assert!(batch.items.iter().all(|(_, m)| *m == batch.model));
            // The size rule only fires on exactly-full batches.
            if batch.reason == CloseReason::Size {
                prop_assert_eq!(batch.items.len(), max_batch);
            }
        }

        // Every admitted request rides exactly one batch: ids across
        // all closed batches are a permutation of the arrivals.
        let ids: Vec<usize> = closed
            .iter()
            .flat_map(|b| b.items.iter().map(|(id, _)| *id))
            .collect();
        let mut deduped = ids.clone();
        deduped.sort_unstable();
        deduped.dedup();
        prop_assert_eq!(ids.len(), arrivals.len(), "dropped or duplicated requests");
        prop_assert_eq!(deduped.len(), arrivals.len());

        // FIFO within a lane: for each model, ids appear in strictly
        // increasing arrival order across the closed batches.
        for model in 0..3usize {
            let order: Vec<usize> = closed
                .iter()
                .flat_map(|b| b.items.iter().filter(|(_, m)| *m == model))
                .map(|(id, _)| *id)
                .collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "model {} served out of order: {:?}", model, order
            );
        }
    }

    /// The batcher never holds a batch past its deadline: polling at
    /// the reported deadline always closes the open batch.
    #[test]
    fn batcher_deadline_is_tight(
        gaps in proptest::collection::vec(0u64..100, 1..50),
        max_wait_us in 1u64..500,
    ) {
        let mut b: Batcher<u64> = Batcher::new(BatchPolicy { max_batch: usize::MAX, max_wait_us });
        let mut now = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            prop_assert!(b.offer(0, i as u64, now).is_empty());
            let deadline = b.deadline_us().expect("batch open");
            // Strictly before the deadline: still open.
            prop_assert!(b.poll(deadline - 1).is_none());
            prop_assert!(b.pending() == i + 1);
        }
        let deadline = b.deadline_us().expect("batch open");
        let batch = b.poll(deadline).expect("deadline closes");
        prop_assert_eq!(batch.reason, CloseReason::Deadline);
        prop_assert_eq!(batch.items.len(), gaps.len());
    }
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let model = ServableModel::mlp(Scale::Reduced(16), SEED).expect("mlp compiles");
    let n_in = model.n_in;
    let mut registry = ModelRegistry::new();
    registry.register(model).expect("register");
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait_us: 1_000,
            queue_depth: 32,
            ..ServeConfig::default()
        },
    )
    .expect("start");
    let tickets: Vec<_> = (0..16)
        .map(|rid| {
            server
                .submit(InferRequest::new("mlp", deterministic_input(n_in, rid)))
                .expect("submit")
        })
        .collect();
    // Shut down immediately: queued and batching requests must still be
    // answered, not dropped.
    let snap = server.shutdown();
    assert_eq!(snap.completed, 16);
    for t in tickets {
        t.wait()
            .expect("in-flight request answered during shutdown");
    }
}
