//! Smoke tests: every experiment driver runs at reduced scale and
//! produces the artifact it claims to.

use cambricon_s::experiments::*;
use cambricon_s::prelude::{LayerClass, Scale};

const SEED: u64 = 77;

#[test]
fn fig01_runs() {
    let r = fig01::run(128, SEED);
    assert!(r.render().contains("trained layer"));
}

#[test]
fn fig04_runs() {
    let r = fig04::run(Scale::Reduced(16), SEED);
    assert_eq!(r.curves.len(), 6);
    assert!(r.render().lines().count() >= 8);
}

#[test]
fn tab02_runs() {
    let r = tab02::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert_eq!(r.points.len(), 7);
    assert!(r.render().contains("r_c"));
}

#[test]
fn tab03_runs() {
    let r = tab03::run(Scale::Reduced(16), SEED);
    assert_eq!(r.rows.len(), 7);
    assert!(r.render().contains("DNS%"));
}

#[test]
fn fig08_smoke_runs() {
    let r = fig08::run(&fig08::Fig08Params::smoke()).expect("training");
    assert_eq!(r.points.len(), 2);
}

#[test]
fn tab04_runs() {
    let r = tab04::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert_eq!(r.reports.len(), 7);
    assert!(r.render().contains("R(Irr)"));
}

#[test]
fn tab05_runs() {
    let r = tab05::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert_eq!(r.measured_ratio.len(), 7);
}

#[test]
fn tab06_runs() {
    assert!(tab06::run().render().contains("NSM"));
}

#[test]
fn fig15_16_17_run() {
    assert_eq!(fig15::run(None).rows.len(), 7);
    assert_eq!(fig15::run(Some(LayerClass::Convolutional)).rows.len(), 5);
    assert!(!fig15::run(Some(LayerClass::FullyConnected)).rows.is_empty());
}

#[test]
fn fig18_19_20_run() {
    let r = fig18::run();
    assert_eq!(r.rows.len(), 7);
    assert!(r.render_fig19().contains("DRAM%"));
    assert!(r.render_fig20().contains("PEFU%"));
}

#[test]
fn fig21_runs() {
    let r = fig21::run();
    assert_eq!(r.curves.len(), 4);
}

#[test]
fn tab07_runs() {
    let r = tab07::run();
    assert_eq!(r.rows.len(), 6);
    assert!(r.geomean_speedup() > 1.0);
}

#[test]
fn disc_runs() {
    let r = disc::run();
    assert!(r.render().contains("entropy"));
}

#[test]
fn ext_dse_runs() {
    let r = ext_dse::run(Scale::Reduced(16), SEED);
    assert!(!r.points.is_empty());
    assert!(r.render().lines().count() >= 3);
}

#[test]
fn ext_entropy_runs() {
    let r = ext_entropy::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert!(!r.rows.is_empty());
    assert!(!r.render().is_empty());
}

#[test]
fn ext_scaling_runs() {
    let r = ext_scaling::run();
    assert_eq!(r.points.len(), 4);
    assert!(!r.render().is_empty());
}

#[test]
fn ext_table1_runs() {
    let r = ext_table1::run();
    assert!(!r.rows.is_empty());
    assert!(!r.render().is_empty());
}

#[test]
fn serve_load_sweep_runs_at_tiny_scale() {
    // The same path `exp_serve_load` drives, shrunk to smoke size.
    use cambricon_s::prelude::{run_sweep, SweepConfig};
    let r = run_sweep(&SweepConfig {
        scale: Scale::Reduced(16),
        requests: 16,
        clients: vec![4],
        workers: vec![1, 4],
        max_batches: vec![4],
        emulate_hw_time: false,
        ..SweepConfig::default()
    })
    .expect("sweep");
    assert_eq!(r.points.len(), 2);
    assert!(r.points.iter().all(|p| p.completed == 16));
    assert!(r.render().contains("hw req/s"));
    // The acceptance floor: 1 -> 4 workers must scale the simulated
    // hardware throughput by at least 1.5x at saturation.
    let scaling = r.scaling(1, 4).expect("scaling computable");
    assert!(scaling >= 1.5, "1->4 worker scaling {scaling:.2}x");
}
