//! Smoke tests: every experiment driver runs at reduced scale and
//! produces the artifact it claims to.

use cambricon_s::experiments::*;
use cambricon_s::prelude::{LayerClass, Scale};

const SEED: u64 = 77;

#[test]
fn fig01_runs() {
    let r = fig01::run(128, SEED);
    assert!(r.render().contains("trained layer"));
}

#[test]
fn fig04_runs() {
    let r = fig04::run(Scale::Reduced(16), SEED);
    assert_eq!(r.curves.len(), 6);
    assert!(r.render().lines().count() >= 8);
}

#[test]
fn tab02_runs() {
    let r = tab02::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert_eq!(r.points.len(), 7);
    assert!(r.render().contains("r_c"));
}

#[test]
fn tab03_runs() {
    let r = tab03::run(Scale::Reduced(16), SEED);
    assert_eq!(r.rows.len(), 7);
    assert!(r.render().contains("DNS%"));
}

#[test]
fn fig08_smoke_runs() {
    let r = fig08::run(&fig08::Fig08Params::smoke()).expect("training");
    assert_eq!(r.points.len(), 2);
}

#[test]
fn tab04_runs() {
    let r = tab04::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert_eq!(r.reports.len(), 7);
    assert!(r.render().contains("R(Irr)"));
}

#[test]
fn tab05_runs() {
    let r = tab05::run(Scale::Reduced(16), SEED).expect("pipeline");
    assert_eq!(r.measured_ratio.len(), 7);
}

#[test]
fn tab06_runs() {
    assert!(tab06::run().render().contains("NSM"));
}

#[test]
fn fig15_16_17_run() {
    assert_eq!(fig15::run(None).rows.len(), 7);
    assert_eq!(fig15::run(Some(LayerClass::Convolutional)).rows.len(), 5);
    assert!(!fig15::run(Some(LayerClass::FullyConnected)).rows.is_empty());
}

#[test]
fn fig18_19_20_run() {
    let r = fig18::run();
    assert_eq!(r.rows.len(), 7);
    assert!(r.render_fig19().contains("DRAM%"));
    assert!(r.render_fig20().contains("PEFU%"));
}

#[test]
fn fig21_runs() {
    let r = fig21::run();
    assert_eq!(r.curves.len(), 4);
}

#[test]
fn tab07_runs() {
    let r = tab07::run();
    assert_eq!(r.rows.len(), 6);
    assert!(r.geomean_speedup() > 1.0);
}

#[test]
fn disc_runs() {
    let r = disc::run();
    assert!(r.render().contains("entropy"));
}
